//! Figure 11: IB link flash cuts over a year — the paper's daily data
//! (Table VIII) and a generated year, both showing the same "random
//! throughout the operational period" pattern.

use ff_bench::{bar, compare};
use ff_failures::data::TABLE_VIII_FLASH_CUTS;
use ff_failures::generator::{FailureGenerator, YEAR_S};
use ff_failures::report::daily_flash_cuts;

fn monthly_sums_paper() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for &(date, count) in TABLE_VIII_FLASH_CUTS {
        let month = date[..7].to_string();
        match out.last_mut() {
            Some((m, c)) if *m == month => *c += count,
            _ => out.push((month, count)),
        }
    }
    out
}

fn main() {
    println!("Figure 11 — IB link flash cuts (paper data, monthly totals):");
    let paper = monthly_sums_paper();
    let max = paper.iter().map(|&(_, c)| c).max().unwrap_or(1) as f64;
    for (m, c) in &paper {
        println!("{}", bar(m, *c as f64, max, 40));
    }
    let paper_total: u64 = paper.iter().map(|&(_, c)| c).sum();

    let mut gen = FailureGenerator::paper_calibrated(11, 1250);
    let events = gen.generate(YEAR_S);
    let days = daily_flash_cuts(&events, 365);
    println!("\nGenerated year (monthly totals at calibrated rates):");
    let gen_monthly: Vec<u64> = (0..12)
        .map(|m| days[m * 30..((m + 1) * 30).min(365)].iter().sum())
        .collect();
    let gmax = *gen_monthly.iter().max().unwrap_or(&1) as f64;
    for (m, c) in gen_monthly.iter().enumerate() {
        println!(
            "{}",
            bar(&format!("month {:02}", m + 1), *c as f64, gmax, 40)
        );
    }

    println!();
    let gen_total: u64 = days.iter().sum();
    compare(
        "Flash cuts per year",
        &paper_total.to_string(),
        &gen_total.to_string(),
    );
    let active = days.iter().filter(|&&c| c > 0).count();
    compare(
        "Days with at least one event",
        "spread over the whole year",
        &format!("{active}/365"),
    );
}
