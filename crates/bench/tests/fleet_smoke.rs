//! Release-mode smoke test for the Monte-Carlo fleet sweeper: the CI
//! grid must reproduce its golden digest — on multiple worker lanes, so
//! every CI run re-proves thread-count invariance against a baseline
//! recorded from a serial sweep — stay consistent with the committed
//! `BENCH_fleet.json`, and fit the 120 s budget.
//!
//! Runs only under `--release`; the CI job invokes
//! `cargo test --release -p ff-bench --test fleet_smoke`.

use ff_bench::fleet::{aggregate_json, sweep, FleetConfig};
use std::time::Instant;

/// Digest of `FleetConfig::small_grid()` — 24 cells, 32 nodes, 900 s.
/// Recorded from a serial (`--workers 1`) run; any worker count must
/// reproduce it. If a deliberate model change moves it, regenerate with
/// `fleet --small` and update `BENCH_fleet.json` with `fleet --write`.
const GOLDEN_SMALL_DIGEST: &str = "7e29e1ef76967e43";

#[test]
#[cfg_attr(debug_assertions, ignore = "24-cell fluid sweep: run with --release")]
fn small_grid_sweep_matches_golden_digest_within_budget() {
    let start = Instant::now();
    let mut cfg = FleetConfig::small_grid();
    cfg.workers = 2; // a parallel run must reproduce the serial golden
    let r = sweep(&cfg);
    assert_eq!(r.outcomes.len(), 24);
    assert_eq!(
        r.digest, GOLDEN_SMALL_DIGEST,
        "small-grid sweep digest moved — scenario outcomes changed; \
         regenerate the goldens (fleet --write) and justify the change"
    );

    // The committed artifact embeds the same digest, so the repo's JSON
    // and the code cannot drift apart silently.
    let committed = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json"),
    )
    .expect("BENCH_fleet.json is committed");
    assert!(
        committed.contains(&format!("\"small_grid_digest\": \"{GOLDEN_SMALL_DIGEST}\"")),
        "BENCH_fleet.json small_grid_digest disagrees with the code's golden"
    );

    // Baseline cells really are baselines, and the aggregate embeds the
    // digest it claims.
    for c in r.outcomes.iter().filter(|c| c.rate_scale == 0.0) {
        assert_eq!(c.lost_node_steps, 0);
        assert_eq!(c.failures, 0);
    }
    assert!(aggregate_json(&cfg, &r).contains(GOLDEN_SMALL_DIGEST));

    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        elapsed < 120.0,
        "fleet smoke took {elapsed:.1} s (budget 120 s)"
    );
}
