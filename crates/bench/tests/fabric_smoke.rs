//! Release-only fabric smoke: a small TCP world must reproduce the
//! in-memory fabric's golden communication schedule, within a bounded
//! wall-clock budget. The CI teeth behind the pluggable-transport
//! redesign: real sockets, same collective, same trace.

use ff_bench::fabric::{trace_digest, FabricBenchConfig};
use ff_reduce::kernels::reference_sum;
use ff_reduce::{run_allreduce, Algo, InMemProvider, TcpProvider};
use std::time::Instant;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing-sensitive smoke; run with --release"
)]
fn tcp_world_matches_inmem_golden_digest() {
    let t0 = Instant::now();
    let cfg = FabricBenchConfig::small();
    let mem = trace_digest(&InMemProvider, &cfg);
    let tcp = trace_digest(&TcpProvider, &cfg);
    assert_eq!(mem, tcp, "TCP schedule drifted from the in-memory golden");

    // And the numbers riding that schedule are right.
    let inputs: Vec<Vec<f32>> = (0..4)
        .map(|r| (0..257).map(|i| ((r * 11 + i) % 23) as f32).collect())
        .collect();
    let want = reference_sum(&inputs);
    let out = run_allreduce(inputs, Algo::DbTree { chunks: 3 }, &TcpProvider, None);
    for buf in &out {
        assert_eq!(buf, &want);
    }

    let wall = t0.elapsed();
    assert!(
        wall.as_secs() < 60,
        "fabric smoke must stay bounded, took {wall:?}"
    );
}
