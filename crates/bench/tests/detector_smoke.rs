//! Release-mode smoke test for the gray-failure detector sweep: the
//! smoke grid must reproduce its golden digest at 1, 2 and 4 solver
//! threads — every CI run re-proves that detection latencies and
//! false-positive counts are a pure function of (seed, grid), not of
//! the solver's parallelism — and fit the 120 s budget.
//!
//! Runs only under `--release`; the CI job invokes
//! `cargo test --release -p ff-bench --test detector_smoke`.

use ff_bench::detector::{aggregate_json, sweep, DetectorBenchConfig};
use std::time::Instant;

/// Digest of `DetectorBenchConfig::smoke_grid()` — 4 straggler cells +
/// 2 calm twins, 8 nodes, 420 s horizon. Recorded from a serial run;
/// any thread count must reproduce it. If a deliberate detector or
/// solver change moves it, regenerate `BENCH_detector.json` with
/// `detector_bench --write` and update this constant from a fresh run.
const GOLDEN_SMOKE_DIGEST: &str = "24da73a71d842bfe";

#[test]
#[cfg_attr(debug_assertions, ignore = "fluid detector sweep: run with --release")]
fn smoke_grid_digest_is_golden_and_thread_invariant() {
    let start = Instant::now();
    let mut cfg = DetectorBenchConfig::smoke_grid();
    let serial = sweep(&cfg);
    assert_eq!(serial.cells.len(), 4);
    assert_eq!(serial.calm.len(), 2);
    assert_eq!(
        serial.digest, GOLDEN_SMOKE_DIGEST,
        "detector smoke digest moved — verdict streams or detection \
         latencies changed; regenerate BENCH_detector.json with --write \
         and justify the change"
    );

    // The sweep is a pure function of the grid: more solver threads may
    // change wall-clock, never the result.
    for threads in [2usize, 4] {
        cfg.solver_threads = threads;
        let r = sweep(&cfg);
        assert_eq!(
            r.digest, serial.digest,
            "detector sweep digest diverged at {threads} solver threads"
        );
    }

    // The sluggish end of the smoke grid still detects a hard 4x
    // straggler, and the aggregate embeds the digest it claims.
    assert!(
        serial
            .cells
            .iter()
            .filter(|c| c.slowdown == 4.0)
            .all(|c| c.detected > 0),
        "a 4x straggler went entirely undetected in the smoke grid"
    );
    assert!(aggregate_json(&cfg, &serial).contains(GOLDEN_SMOKE_DIGEST));

    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        elapsed < 120.0,
        "detector smoke took {elapsed:.1} s (budget 120 s)"
    );
}
