//! Scale smoke tests: the paper-scale simulation points must stay both
//! *correct* (inside the bands Figure 7a and §VI report) and *tractable*
//! (the incremental max-min solver keeps them to seconds; the old global
//! recompute made them minutes-to-hours).
//!
//! These run only under `--release` — the CI scale-smoke job invokes
//! `cargo test --release -p ff-bench --test scale_smoke`; the debug-mode
//! workspace test run skips them via the `ignore` attribute.

use std::time::Instant;

use ff_net::experiments::{congestion_spread_with, SpreadConfig};
use ff_reduce::model::{hfreduce_steady, HfReduceOptions};
use ff_reduce::ClusterConfig;
use ff_topo::routing::RoutePolicy;

/// The headline acceptance point: the 10,000-GPU Figure 7a row — all
/// 1,250 nodes of the two-zone cluster — simulates in well under two
/// minutes and lands in the paper's flat 6–10 GB/s HFReduce band.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "1,250-node cluster simulation: run with --release"
)]
fn fig7a_10000_gpu_point_is_in_band_and_under_budget() {
    let start = Instant::now();
    let bytes = 186.0 * 1024.0 * 1024.0;
    let hf = hfreduce_steady(
        &ClusterConfig::fire_flyer_full(),
        bytes,
        &HfReduceOptions::default(),
    );
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(hf.gpus, 10_000);
    let gbps = hf.algbw_bps / 1e9;
    assert!(
        (6.0..=10.0).contains(&gbps),
        "10,000-GPU HFReduce bandwidth {gbps:.2} GB/s outside the paper's 6-10 GB/s band"
    );
    assert!(
        elapsed < 120.0,
        "10,000-GPU Fig 7a point took {elapsed:.1} s (budget 120 s)"
    );
}

/// The zone-scale congestion-spread experiment (600 compute + 180 storage
/// hosts, §VI-A2) completes in seconds and keeps the reported effect:
/// adaptive routing slows the compute straggler.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "zone-scale congestion experiment: run with --release"
)]
fn paper_zone_congestion_spread_is_tractable() {
    let start = Instant::now();
    let st = congestion_spread_with(
        RoutePolicy::StaticByDestination,
        &SpreadConfig::paper_zone(48),
    );
    let ad = congestion_spread_with(RoutePolicy::Adaptive, &SpreadConfig::paper_zone(48));
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(st.compute_bw.count(), 600);
    assert!(
        ad.worst_compute_bw < st.worst_compute_bw,
        "adaptive straggler {} should be slower than static {}",
        ad.worst_compute_bw,
        st.worst_compute_bw
    );
    assert!(
        elapsed < 60.0,
        "zone-scale spread took {elapsed:.1} s (budget 60 s)"
    );
}
