//! Distributional property suite for the Monte-Carlo fleet sweeper.
//!
//! Three pillars, per the sweep's contract:
//!
//! 1. **Thread-count invariance** — the committed aggregate (digest *and*
//!    every byte of the JSON) is identical whether the grid runs on 1, 2
//!    or 4 worker lanes. This is the property that makes `BENCH_fleet.json`
//!    trustworthy on any CI box.
//! 2. **Purity / permutation invariance** — a sweep is exactly the
//!    multiset of its per-cell runs: executing cells one-by-one in
//!    reverse order reproduces the same canonical lines, and the sweep
//!    returns them in grid order regardless of completion order.
//! 3. **Monotonicity spot-checks** over a 64-cell small-cluster grid —
//!    the physics the planner's conclusions rest on: no failures ⇒ no
//!    lost work, more failure rate ⇒ more failures and more lost work,
//!    more serving share ⇒ less training banked.

use ff_bench::fleet::{
    aggregate_json, cell_specs, digest, run_cell, sweep, CellSpec, FleetConfig, ScenarioOutcome,
    AXIS_CKPT, AXIS_DETECT, AXIS_RATE, AXIS_REPL, AXIS_SHARE,
};
use ff_util::scengen::SweepGrid;

/// A 16-cell debug-affordable grid exercising all four axes.
fn tiny_grid(workers: usize) -> FleetConfig {
    FleetConfig {
        seed: 11,
        nodes: 16,
        horizon_s: 300,
        workers,
        grid: SweepGrid::new()
            .axis(AXIS_RATE, &[0.0, 256.0])
            .axis(AXIS_CKPT, &[5.0, 30.0])
            .axis(AXIS_SHARE, &[0.0, 0.25])
            .axis(AXIS_REPL, &[1.0, 2.0]),
    }
}

/// The 64-cell monotonicity grid: wider rate ladder, finer ckpt ladder.
fn mono_grid() -> FleetConfig {
    FleetConfig {
        seed: 23,
        nodes: 16,
        horizon_s: 300,
        workers: 4,
        grid: SweepGrid::new()
            .axis(AXIS_RATE, &[0.0, 16.0, 256.0, 1024.0])
            .axis(AXIS_CKPT, &[5.0, 10.0, 25.0, 50.0])
            .axis(AXIS_SHARE, &[0.0, 0.25])
            .axis(AXIS_REPL, &[1.0, 2.0]),
    }
}

#[test]
fn aggregate_bytes_are_identical_at_1_2_4_workers() {
    let cfg1 = tiny_grid(1);
    let r1 = sweep(&cfg1);
    let j1 = aggregate_json(&cfg1, &r1);
    assert!(j1.contains(&r1.digest), "aggregate embeds its digest");
    for w in [2usize, 4] {
        let cfg = tiny_grid(w);
        let r = sweep(&cfg);
        assert_eq!(r.digest, r1.digest, "digest diverged at {w} workers");
        assert_eq!(
            aggregate_json(&cfg, &r),
            j1,
            "aggregate JSON diverged at {w} workers"
        );
    }
}

#[test]
fn sweep_equals_serial_per_cell_runs_in_any_order() {
    let cfg = tiny_grid(3);
    let swept = sweep(&cfg);
    // Outcomes come back in grid order no matter how lanes interleaved.
    for (i, o) in swept.outcomes.iter().enumerate() {
        assert_eq!(o.index, i, "outcome out of grid order");
    }
    // Running the same cells serially, in reverse, yields the same
    // multiset of canonical lines (and, re-sorted, the same digest).
    let mut serial: Vec<ScenarioOutcome> =
        cell_specs(&cfg).into_iter().rev().map(run_cell).collect();
    serial.sort_by_key(|o| o.index);
    assert_eq!(
        serial, swept.outcomes,
        "sweep is not the multiset of its cells"
    );
    assert_eq!(digest(&serial), swept.digest);
}

#[test]
fn monotonicity_spot_checks_hold_across_64_cells() {
    let cfg = mono_grid();
    let r = sweep(&cfg);
    let o = &r.outcomes;
    assert_eq!(o.len(), 64);

    // Every cell is physically sane.
    for c in o {
        assert!(
            c.utilization > 0.0 && c.utilization <= 1.0,
            "cell {}: utilization {}",
            c.index,
            c.utilization
        );
        // A cell CAN bank nothing (1024x failures with a never-reached
        // checkpoint interval rolls every job back to step 0), so only
        // the upper bound is universal.
        assert!(
            c.goodput >= 0.0 && c.goodput < 1.5,
            "cell {}: goodput {}",
            c.index,
            c.goodput
        );
        // Effective cost-performance is Table II's ratio (~1.38) scaled
        // by delivered goodput.
        let table2 = ff_hw::NodeSpec::pcie_a100().cost_performance_ratio();
        assert!((c.cost_perf - table2 * c.goodput).abs() < 1e-12);
        if c.serve_share == 0.0 {
            assert_eq!(c.serve_completed, 0);
            assert_eq!(c.slo_misses, 0);
        } else {
            assert!(c.serve_completed > 0, "cell {}: serving idle", c.index);
        }
    }

    // Pillar: a failure-free fleet loses nothing and recovers from
    // nothing — the sweep's baseline cells really are baselines.
    for c in o.iter().filter(|c| c.rate_scale == 0.0) {
        assert_eq!(
            c.lost_node_steps, 0,
            "cell {}: lost work without failures",
            c.index
        );
        assert_eq!(c.failures, 0);
        assert_eq!(c.recoveries, 0);
        assert_eq!(c.recovery_p99_s, 0);
        assert!(
            c.goodput > 0.2,
            "cell {}: baseline goodput {}",
            c.index,
            c.goodput
        );
    }

    // Failure counts grow strictly along the rate ladder (means over the
    // 16 cells at each rung; the rungs are 16x apart, far beyond Poisson
    // noise).
    let mean = |f: &dyn Fn(&ScenarioOutcome) -> f64, pred: &dyn Fn(&ScenarioOutcome) -> bool| {
        let sel: Vec<f64> = o.iter().filter(|c| pred(c)).map(f).collect();
        assert!(!sel.is_empty());
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    let rates = [0.0, 16.0, 256.0, 1024.0];
    let fail_means: Vec<f64> = rates
        .iter()
        .map(|&s| mean(&|c| c.failures as f64, &|c| c.rate_scale == s))
        .collect();
    for w in fail_means.windows(2) {
        assert!(
            w[1] > w[0],
            "mean failures not increasing along the rate ladder: {fail_means:?}"
        );
    }

    // Lost work follows: zero at the baseline, strictly positive under
    // heavy fire, and the top rung loses more than the 16x rung.
    let lost_means: Vec<f64> = rates
        .iter()
        .map(|&s| mean(&|c| c.lost_node_steps as f64, &|c| c.rate_scale == s))
        .collect();
    assert_eq!(lost_means[0], 0.0);
    assert!(lost_means[3] > 0.0, "1024x lost nothing: {lost_means:?}");
    assert!(
        lost_means[3] > lost_means[1],
        "lost work did not grow 16x -> 1024x: {lost_means:?}"
    );

    // Serving share prices training — on the calm rungs, where capacity
    // dominates. (Under heavy fire the effect can invert: pinning nodes
    // shrinks the training jobs, and smaller jobs have a smaller
    // rollback blast radius per kill.)
    for &s in &rates[..2] {
        let train0 = mean(&|c| c.banked_node_steps as f64, &|c| {
            c.rate_scale == s && c.serve_share == 0.0
        });
        let train25 = mean(&|c| c.banked_node_steps as f64, &|c| {
            c.rate_scale == s && c.serve_share == 0.25
        });
        assert!(
            train25 < train0,
            "rate {s}: serving share did not cost training ({train25} >= {train0})"
        );
    }

    // Recoveries happen once failures do.
    assert!(
        o.iter().any(|c| c.rate_scale >= 256.0 && c.recoveries > 0),
        "no recovery cycles at >=256x"
    );
}

/// The detector axis is strictly opt-in: a `detect_sens: 0.0` cell emits
/// exactly the historical canonical line (no ` detect=` suffix, so every
/// committed grid digest is untouched), while a hot cell carries the
/// suffix, reproduces bit-for-bit, and runs the gray+detector loop.
#[test]
fn detect_axis_is_opt_in_and_reproducible() {
    let mut spec = CellSpec {
        index: 0,
        seed: 5,
        nodes: 16,
        horizon_s: 300,
        rate_scale: 16.0,
        ckpt_steps: 10,
        serve_share: 0.0,
        replication: 1,
        detect_sens: 0.0,
    };
    let cold = run_cell(spec);
    assert!(
        !cold.canonical().contains(" detect="),
        "detector-off cell leaked the detect suffix: {}",
        cold.canonical()
    );
    assert_eq!(cold.detector_quarantines, 0);

    spec.detect_sens = 0.8;
    let hot = run_cell(spec);
    assert!(
        hot.canonical().contains(" detect=0.80 det_q="),
        "detector-on cell missing the detect suffix: {}",
        hot.canonical()
    );
    assert_eq!(run_cell(spec), hot, "hot cell is not reproducible");

    // The axis parses through cell_specs like the other four.
    let cfg = FleetConfig {
        seed: 5,
        nodes: 16,
        horizon_s: 300,
        workers: 1,
        grid: SweepGrid::new()
            .axis(AXIS_RATE, &[16.0])
            .axis(AXIS_CKPT, &[10.0])
            .axis(AXIS_SHARE, &[0.0])
            .axis(AXIS_REPL, &[1.0])
            .axis(AXIS_DETECT, &[0.0, 0.8]),
    };
    let specs = cell_specs(&cfg);
    assert_eq!(specs.len(), 2);
    assert_eq!(specs[0].detect_sens, 0.0);
    assert_eq!(specs[1].detect_sens, 0.8);
}

/// The replication axis is wired through, not decorative: two cells that
/// agree on *everything* — seed included — except the chain replication
/// factor diverge once storage targets start dying. (Inside the grid the
/// twins would get different per-cell seeds, so this is the one check
/// that must run outside a sweep.)
#[test]
fn replication_factor_changes_outcomes_under_storage_fire() {
    // The twins only diverge when a storage-host death overlaps a
    // checkpoint (repl=1 cannot shed the dead member, so the save is not
    // durable) and a later kill rolls past it — so the rate must be hot
    // enough for storage deaths but calm enough that jobs still reach
    // checkpoints. A few seeds cover the remaining luck.
    let observable = |o: &ScenarioOutcome| {
        (
            o.banked_node_steps,
            o.lost_node_steps,
            o.recoveries,
            o.utilization.to_bits(),
        )
    };
    let mut diverged = false;
    for seed in [1u64, 2, 3] {
        let mut spec = CellSpec {
            index: 0,
            seed,
            nodes: 16,
            horizon_s: 3600,
            rate_scale: 256.0,
            ckpt_steps: 5,
            serve_share: 0.0,
            replication: 1,
            detect_sens: 0.0,
        };
        let unreplicated = run_cell(spec);
        spec.replication = 2;
        let mirrored = run_cell(spec);
        assert!(
            mirrored.banked_node_steps > 0,
            "seed {seed}: 256x twins banked nothing — the rung is too hot \
             for the divergence mechanism this test exercises"
        );
        // Each twin is individually reproducible (purity of run_cell).
        assert_eq!(run_cell(spec), mirrored);
        if observable(&unreplicated) != observable(&mirrored) {
            diverged = true;
            break;
        }
    }
    assert!(
        diverged,
        "head+mirror chains behaved exactly like unreplicated ones under \
         storage fire across every probed seed"
    );
}
