//! Release-mode smoke test for the `hai_platform` replay: the full
//! 1,250-node cluster must hit the §VI-C ≈99% utilization claim, keep
//! per-failure lost work within one checkpoint interval (§VII-A), and
//! produce a byte-identical trace digest for the same seed — the
//! seed-replay regression oracle.
//!
//! Runs only under `--release`; the CI job invokes
//! `cargo test --release -p ff-bench --test hai_platform_smoke`.

use ff_bench::hai::{run, HaiRun};

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "1,250-node fluid replay: run with --release"
)]
fn full_scale_replay_hits_utilization_and_is_deterministic() {
    let cfg = HaiRun {
        seed: 7,
        horizon_s: 12 * 60,
        failure_scale: 300.0, // compress months of failures into 12 minutes
        ..Default::default()
    };
    let a = run(&cfg);

    // §VI-C: time-sharing keeps the oversubscribed cluster busy.
    assert!(
        a.utilization > 0.95,
        "utilization {:.4} below the 0.95 floor",
        a.utilization
    );
    // The replay must actually exercise the failure path...
    assert!(a.failures >= 1, "no node failures injected");
    // ...and §VII-A bounds the damage: each failure costs at most one
    // checkpoint interval (300 steps) across the largest job (96 nodes).
    let bound = a.failures * 300 * 96;
    assert!(
        a.lost_work <= bound,
        "lost {} node-steps exceeds {} (one interval per failure)",
        a.lost_work,
        bound
    );
    // Preemption ran the interruption-signal protocol at least once.
    assert!(
        a.preemptions >= 1,
        "no preemptions in an oversubscribed mix"
    );
    // The cluster stays oversubscribed throughout, so idle time can only
    // come from scheduling, not from lack of demand.
    assert!(a.timeline.iter().all(|s| s.queue_depth > 0));

    // Same seed ⇒ byte-identical observability digest.
    let b = run(&cfg);
    assert_eq!(a.digest, b.digest, "same-seed replay diverged");
    assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
    assert_eq!(a.lost_work, b.lost_work);
}
