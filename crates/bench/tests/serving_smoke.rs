//! Release-mode smoke test for the `serving_bench` replay: a serving
//! fleet co-scheduled with a standing training mix in fluid mode must
//! serve every arrival inside the horizon's tail, never be preempted,
//! cost training a measurable-but-bounded slice of throughput, degrade
//! p99 (not availability) under the paper-calibrated failure generator,
//! and replay byte-identically for the same seed.
//!
//! Runs only under `--release`; the CI job invokes
//! `cargo test --release -p ff-bench --test serving_smoke`. Budget
//! well under 120 s.

use ff_bench::serving::{run, ServeRun};
use std::time::Instant;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "64-node fluid serve+train replay: run with --release"
)]
fn coscheduled_serving_replay_is_within_budget_and_deterministic() {
    let start = Instant::now();
    let base = ServeRun {
        seed: 7,
        horizon_s: 600,
        qps: 5.0,
        ..Default::default()
    };

    // Training-only baseline prices the serving fleet.
    let baseline = run(&ServeRun {
        qps: 0.0,
        ..base.clone()
    });
    let calm = run(&base);
    let stormy = run(&ServeRun {
        failure_scale: 200.0,
        ..base.clone()
    });

    // The serving tier actually serves: most arrivals complete within the
    // horizon (the rest are still decoding at the cutoff) and the SLO
    // holds in calm weather.
    assert!(
        calm.completed >= 1_000,
        "only {} requests completed",
        calm.completed
    );
    assert!(
        calm.attainment >= 0.99,
        "calm SLO attainment {:.4} below 0.99",
        calm.attainment
    );
    assert!(calm.p99_ms > 0.0 && calm.p99_ms < 30_000.0);

    // Serving costs training throughput, but the scheduler keeps the rest
    // of the cluster busy: the eight serving nodes of a 64-node cluster
    // cost at most ~20% of baseline node-steps.
    assert!(baseline.train_node_steps_per_s > 0.0);
    let frac = calm.train_node_steps_per_s / baseline.train_node_steps_per_s;
    assert!(
        (0.5..1.0).contains(&frac),
        "training kept {frac:.3} of baseline node-steps (want 0.5..1.0)"
    );

    // Serving is never preempted — preemptions happen *to training*; the
    // serving report shows no dropped requests in calm weather.
    assert_eq!(calm.failures, 0);

    // The failure run exercises the fault path and completes the same
    // request set (availability holds; only the tail moves).
    assert!(stormy.failures >= 1, "no failures injected at 200x rates");
    assert_eq!(
        stormy.completed, calm.completed,
        "failures must move latency, not drop requests"
    );
    assert!(
        stormy.p99_ms >= calm.p99_ms,
        "p99 did not degrade under failures ({:.1} < {:.1})",
        stormy.p99_ms,
        calm.p99_ms
    );

    // Same seed ⇒ byte-identical observability digest.
    let again = run(&ServeRun {
        failure_scale: 200.0,
        ..base.clone()
    });
    assert_eq!(stormy.digest, again.digest, "same-seed replay diverged");
    assert_eq!(stormy.p99_ms.to_bits(), again.p99_ms.to_bits());

    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        elapsed < 120.0,
        "serving smoke took {elapsed:.1} s (budget 120 s)"
    );
}
