//! Bench: the executable collectives — double binary tree vs ring, and
//! the full node-structured HFReduce path.

use ff_reduce::{allreduce_dbtree, allreduce_ring, hfreduce_exec};
use ff_util::bench::{black_box, Bench};

const LEN: usize = 1 << 14;

fn inputs(ranks: usize) -> Vec<Vec<f32>> {
    (0..ranks)
        .map(|r| (0..LEN).map(|i| ((r * 31 + i) % 17) as f32).collect())
        .collect()
}

fn main() {
    let b = Bench::new();
    let bytes = (8 * LEN * 4) as u64;
    b.run_bytes("allreduce_exec/dbtree_8ranks", bytes, || {
        black_box(allreduce_dbtree(inputs(8), 4));
    });
    b.run_bytes("allreduce_exec/ring_8ranks", bytes, || {
        black_box(allreduce_ring(inputs(8)));
    });
    b.run_bytes("allreduce_exec/hfreduce_4nodes_8gpus", bytes, || {
        let bufs: Vec<Vec<Vec<f32>>> = (0..4)
            .map(|v| {
                (0..8)
                    .map(|gpu| (0..LEN).map(|i| ((v * 8 + gpu + i) % 17) as f32).collect())
                    .collect()
            })
            .collect();
        black_box(hfreduce_exec(bufs, 4));
    });
}
