//! Criterion: the executable collectives — double binary tree vs ring,
//! and the full node-structured HFReduce path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ff_reduce::{allreduce_dbtree, allreduce_ring, hfreduce_exec};

const LEN: usize = 1 << 14;

fn inputs(ranks: usize) -> Vec<Vec<f32>> {
    (0..ranks)
        .map(|r| (0..LEN).map(|i| ((r * 31 + i) % 17) as f32).collect())
        .collect()
}

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_exec");
    g.sample_size(20);
    g.throughput(Throughput::Bytes((8 * LEN * 4) as u64));
    g.bench_function("dbtree_8ranks", |b| {
        b.iter_batched(
            || inputs(8),
            |bufs| allreduce_dbtree(bufs, 4),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("ring_8ranks", |b| {
        b.iter_batched(|| inputs(8), allreduce_ring, BatchSize::SmallInput)
    });
    g.bench_function("hfreduce_4nodes_8gpus", |b| {
        b.iter_batched(
            || {
                (0..4)
                    .map(|v| {
                        (0..8)
                            .map(|gpu| {
                                (0..LEN).map(|i| ((v * 8 + gpu + i) % 17) as f32).collect()
                            })
                            .collect()
                    })
                    .collect::<Vec<Vec<Vec<f32>>>>()
            },
            |bufs| hfreduce_exec(bufs, 4),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(allreduce, benches);
criterion_main!(allreduce);
