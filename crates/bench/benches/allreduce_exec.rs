//! Bench: the executable collectives — double binary tree vs ring, and
//! the full node-structured HFReduce path.
//!
//! With `--trace <path>`, one traced iteration of each collective is
//! recorded (per-rank send/recv spans on logical clocks) and written as
//! Chrome trace-event JSON — open it in <https://ui.perfetto.dev>.

use ff_obs::{chrome::export_chrome_json, summary::summary_text, Recorder};
use ff_reduce::{run_allreduce, run_hfreduce, Algo, InMemProvider, ObsCtx, TcpProvider};
use ff_util::bench::{black_box, Bench};

const LEN: usize = 1 << 14;

fn inputs(ranks: usize) -> Vec<Vec<f32>> {
    (0..ranks)
        .map(|r| (0..LEN).map(|i| ((r * 31 + i) % 17) as f32).collect())
        .collect()
}

fn write_trace(path: &str) {
    let rec = Recorder::new();
    black_box(run_allreduce(
        inputs(8),
        Algo::DbTree { chunks: 4 },
        &InMemProvider,
        Some(&ObsCtx::new(&rec, "reduce/dbtree", 0)),
    ));
    let hf_base = rec.last_ts_ns();
    let bufs: Vec<Vec<Vec<f32>>> = (0..4)
        .map(|v| {
            (0..8)
                .map(|gpu| (0..LEN).map(|i| ((v * 8 + gpu + i) % 17) as f32).collect())
                .collect()
        })
        .collect();
    black_box(run_hfreduce(
        bufs,
        4,
        &InMemProvider,
        Some(&ObsCtx::new(&rec, "reduce/hfreduce", hf_base)),
    ));
    std::fs::write(path, export_chrome_json(&rec)).expect("write trace file");
    println!("{}", summary_text(&rec));
    println!("trace digest : {}", rec.digest());
    println!("trace written: {path} (open in https://ui.perfetto.dev)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
    {
        write_trace(path);
        return;
    }
    let b = Bench::new();
    let bytes = (8 * LEN * 4) as u64;
    b.run_bytes("allreduce_exec/dbtree_8ranks", bytes, || {
        black_box(run_allreduce(
            inputs(8),
            Algo::DbTree { chunks: 4 },
            &InMemProvider,
            None,
        ));
    });
    b.run_bytes("allreduce_exec/ring_8ranks", bytes, || {
        black_box(run_allreduce(inputs(8), Algo::Ring, &InMemProvider, None));
    });
    b.run_bytes("allreduce_exec/dbtree_8ranks_tcp", bytes, || {
        black_box(run_allreduce(
            inputs(8),
            Algo::DbTree { chunks: 4 },
            &TcpProvider,
            None,
        ));
    });
    b.run_bytes("allreduce_exec/hfreduce_4nodes_8gpus", bytes, || {
        let bufs: Vec<Vec<Vec<f32>>> = (0..4)
            .map(|v| {
                (0..8)
                    .map(|gpu| (0..LEN).map(|i| ((v * 8 + gpu + i) % 17) as f32).collect())
                    .collect()
            })
            .collect();
        black_box(run_hfreduce(bufs, 4, &InMemProvider, None));
    });
}
