//! Bench: checkpoint save/load through the full 3FS stack (§VII-A).

use ff_3fs::chain::{Chain, ChainTable};
use ff_3fs::client::Fs3Client;
use ff_3fs::kvstore::KvStore;
use ff_3fs::meta::MetaService;
use ff_3fs::target::{Disk, StorageTarget};
use ff_platform::CheckpointManager;
use ff_util::bench::Bench;
use std::sync::Arc;

const STATE_BYTES: usize = 64 << 20;

fn manager() -> Arc<CheckpointManager> {
    let disks: Vec<_> = (0..4).map(|_| Disk::new(8 << 30)).collect();
    let chains: Vec<_> = (0..8)
        .map(|c| {
            let reps = (0..2)
                .map(|r| StorageTarget::new(format!("c{c}r{r}"), disks[(c + r) % 4].clone()))
                .collect();
            Chain::new(c, reps)
        })
        .collect();
    let table = Arc::new(ChainTable::new(chains));
    let meta = MetaService::new(KvStore::new(8, 2), table.len());
    let client = Fs3Client::new(meta, table, 16);
    CheckpointManager::new(client, "ckpt", 4 << 20).unwrap()
}

fn main() {
    let b = Bench::new();
    let tensors: Vec<(String, Vec<u8>)> = (0..16)
        .map(|i| (format!("t{i}"), vec![i as u8; STATE_BYTES / 16]))
        .collect();
    let mgr = manager();
    let mut step = 0u64;
    b.run_bytes("checkpoint/save_64MiB", STATE_BYTES as u64, || {
        step += 1;
        mgr.save(step, &tensors).unwrap();
    });
    mgr.save(u64::MAX - 1, &tensors).unwrap();
    b.run_bytes("checkpoint/load_64MiB", STATE_BYTES as u64, || {
        mgr.load(u64::MAX - 1).unwrap();
    });
}
