//! Criterion: checkpoint save/load through the full 3FS stack (§VII-A).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ff_3fs::chain::{Chain, ChainTable};
use ff_3fs::client::Fs3Client;
use ff_3fs::kvstore::KvStore;
use ff_3fs::meta::MetaService;
use ff_3fs::target::{Disk, StorageTarget};
use ff_platform::CheckpointManager;
use std::sync::Arc;

const STATE_BYTES: usize = 64 << 20;

fn manager() -> Arc<CheckpointManager> {
    let disks: Vec<_> = (0..4).map(|_| Disk::new(8 << 30)).collect();
    let chains: Vec<_> = (0..8)
        .map(|c| {
            let reps = (0..2)
                .map(|r| StorageTarget::new(format!("c{c}r{r}"), disks[(c + r) % 4].clone()))
                .collect();
            Chain::new(c, reps)
        })
        .collect();
    let table = Arc::new(ChainTable::new(chains));
    let meta = MetaService::new(KvStore::new(8, 2), table.len());
    let client = Fs3Client::new(meta, table, 16);
    CheckpointManager::new(client, "ckpt", 4 << 20).unwrap()
}

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(STATE_BYTES as u64));
    let tensors: Vec<(String, Vec<u8>)> = (0..16)
        .map(|i| (format!("t{i}"), vec![i as u8; STATE_BYTES / 16]))
        .collect();
    let mgr = manager();
    let mut step = 0u64;
    g.bench_function("save_64MiB", |b| {
        b.iter(|| {
            step += 1;
            mgr.save(step, &tensors).unwrap()
        })
    });
    mgr.save(u64::MAX - 1, &tensors).unwrap();
    g.bench_function("load_64MiB", |b| b.iter(|| mgr.load(u64::MAX - 1).unwrap()));
    g.finish();
}

criterion_group!(checkpoint, benches);
criterion_main!(checkpoint);
