//! Bench: the max-min fluid engine and DAG executor under load.

use ff_desim::{DagSim, FluidSim, Route, Work};
use ff_util::bench::{black_box, Bench};

fn fan_in_drain(flows: usize) {
    let mut sim = FluidSim::new();
    let sink = sim.add_resource("sink", 25e9);
    let links: Vec<_> = (0..flows)
        .map(|i| sim.add_resource(format!("l{i}"), 27e9))
        .collect();
    for l in links {
        sim.start_flow(1e6, &Route::unit([l, sink]));
    }
    while sim.advance_to_next_completion().is_some() {}
}

fn pipeline_dag(chunks: usize, stages: usize) {
    let mut fluid = FluidSim::new();
    let res: Vec<_> = (0..stages)
        .map(|i| fluid.add_resource(format!("s{i}"), 1e9))
        .collect();
    let mut dag = DagSim::new(fluid);
    let mut prev: Vec<Option<ff_desim::DagNodeId>> = vec![None; stages];
    for _ in 0..chunks {
        let mut upstream = None;
        for (s, &r) in res.iter().enumerate() {
            let mut deps = Vec::new();
            if let Some(p) = prev[s] {
                deps.push(p);
            }
            if let Some(u) = upstream {
                deps.push(u);
            }
            let id = dag.add(
                Work::Transfer {
                    work: 1e6,
                    route: Route::unit([r]),
                },
                &deps,
            );
            prev[s] = Some(id);
            upstream = Some(id);
        }
    }
    black_box(dag.run());
}

fn main() {
    let b = Bench::new();
    b.run("fluid_fanin_64", || fan_in_drain(64));
    b.run("fluid_fanin_512", || fan_in_drain(512));
    b.run("dag_pipeline_64x8", || pipeline_dag(64, 8));
    b.run("dag_pipeline_256x4", || pipeline_dag(256, 4));
}
