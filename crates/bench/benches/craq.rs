//! Criterion: CRAQ chain write/read paths (§VI-B3).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ff_3fs::chain::Chain;
use ff_3fs::target::{ChunkId, Disk, StorageTarget};

const CHUNK: usize = 256 << 10;

fn chain(replicas: usize) -> std::sync::Arc<Chain> {
    let targets = (0..replicas)
        .map(|i| StorageTarget::new(format!("t{i}"), Disk::new(4 << 30)))
        .collect();
    Chain::new(0, targets)
}

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("craq");
    g.throughput(Throughput::Bytes(CHUNK as u64));
    let data = Bytes::from(vec![7u8; CHUNK]);

    for reps in [1usize, 2, 3] {
        let ch = chain(reps);
        let mut idx = 0u64;
        g.bench_function(format!("write_{reps}rep"), |b| {
            b.iter(|| {
                idx += 1;
                ch.write(ChunkId { ino: 1, idx: idx % 1024 }, data.clone()).unwrap()
            })
        });
    }

    let ch = chain(2);
    for i in 0..1024 {
        ch.write(ChunkId { ino: 1, idx: i }, data.clone()).unwrap();
    }
    let mut i = 0u64;
    g.bench_function("read_any_2rep", |b| {
        b.iter(|| {
            i += 1;
            black_box(ch.read(ChunkId { ino: 1, idx: i % 1024 }).unwrap())
        })
    });
    g.finish();
}

criterion_group!(craq, benches);
criterion_main!(craq);
