//! Bench: CRAQ chain write/read paths (§VI-B3).

use ff_3fs::chain::Chain;
use ff_3fs::target::{ChunkId, Disk, StorageTarget};
use ff_util::bench::{black_box, Bench};
use ff_util::bytes::Bytes;

const CHUNK: usize = 256 << 10;

fn chain(replicas: usize) -> std::sync::Arc<Chain> {
    let targets = (0..replicas)
        .map(|i| StorageTarget::new(format!("t{i}"), Disk::new(4 << 30)))
        .collect();
    Chain::new(0, targets)
}

fn main() {
    let b = Bench::new();
    let data = Bytes::from(vec![7u8; CHUNK]);

    for reps in [1usize, 2, 3] {
        let ch = chain(reps);
        let mut idx = 0u64;
        b.run_bytes(&format!("craq/write_{reps}rep"), CHUNK as u64, || {
            idx += 1;
            ch.write(
                ChunkId {
                    ino: 1,
                    idx: idx % 1024,
                },
                data.clone(),
            )
            .unwrap();
        });
    }

    let ch = chain(2);
    for i in 0..1024 {
        ch.write(ChunkId { ino: 1, idx: i }, data.clone()).unwrap();
    }
    let mut i = 0u64;
    b.run_bytes("craq/read_any_2rep", CHUNK as u64, || {
        i += 1;
        black_box(
            ch.read(ChunkId {
                ino: 1,
                idx: i % 1024,
            })
            .unwrap(),
        );
    });
}
