//! Criterion: topology machinery — equal-cost path enumeration, route
//! selection policies, and double-binary-tree construction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_topo::dbtree::DoubleBinaryTree;
use ff_topo::fattree::{TwoZoneNetwork, TwoZoneSpec};
use ff_topo::routing::{RoutePolicy, Router};

fn benches(c: &mut Criterion) {
    let net = TwoZoneNetwork::build(&TwoZoneSpec::paper());
    let a = net.compute[0];
    let b = net.compute[599]; // same zone, far leaf
    let x = net.compute[600]; // other zone

    c.bench_function("shortest_paths_intra_zone", |bch| {
        bch.iter(|| black_box(net.topo.shortest_paths(a, b, 64).len()))
    });
    c.bench_function("shortest_paths_cross_zone", |bch| {
        bch.iter(|| black_box(net.topo.shortest_paths(a, x, 64).len()))
    });

    for (name, policy) in [
        ("static", RoutePolicy::StaticByDestination),
        ("ecmp", RoutePolicy::Ecmp),
        ("adaptive", RoutePolicy::Adaptive),
    ] {
        let router = Router::new(&net.topo, policy);
        let mut key = 0u64;
        c.bench_function(&format!("route_{name}"), |bch| {
            bch.iter(|| {
                key += 1;
                black_box(router.route(a, b, key, &|_| 0.0).len())
            })
        });
    }

    c.bench_function("dbtree_1250_nodes", |bch| {
        bch.iter(|| black_box(DoubleBinaryTree::new(1250).a.height()))
    });
}

criterion_group!(routing, benches);
criterion_main!(routing);
