//! Bench: topology machinery — equal-cost path enumeration, route
//! selection policies, and double-binary-tree construction.

use ff_topo::dbtree::DoubleBinaryTree;
use ff_topo::fattree::{TwoZoneNetwork, TwoZoneSpec};
use ff_topo::routing::{RoutePolicy, Router};
use ff_util::bench::{black_box, Bench};

fn main() {
    let b = Bench::new();
    let net = TwoZoneNetwork::build(&TwoZoneSpec::paper());
    let a = net.compute[0];
    let z = net.compute[599]; // same zone, far leaf
    let x = net.compute[600]; // other zone

    b.run("shortest_paths_intra_zone", || {
        black_box(net.topo.shortest_paths(a, z, 64).len());
    });
    b.run("shortest_paths_cross_zone", || {
        black_box(net.topo.shortest_paths(a, x, 64).len());
    });

    for (name, policy) in [
        ("static", RoutePolicy::StaticByDestination),
        ("ecmp", RoutePolicy::Ecmp),
        ("adaptive", RoutePolicy::Adaptive),
    ] {
        let router = Router::new(&net.topo, policy);
        let mut key = 0u64;
        b.run(&format!("route_{name}"), || {
            key += 1;
            black_box(router.route(a, z, key, &|_| 0.0).len());
        });
    }

    b.run("dbtree_1250_nodes", || {
        black_box(DoubleBinaryTree::new(1250).a.height());
    });
}
