//! Bench: the CPU reduction kernels per dtype (§IV-D1).

use ff_dtypes::{Bf16, Element, F16, F8E4M3};
use ff_reduce::kernels::{reduce_add_into, reduce_n_into};
use ff_util::bench::{black_box, Bench};

const N: usize = 1 << 16;

fn bench_add<E: Element>(b: &Bench, name: &str) {
    let src: Vec<E> = (0..N).map(|i| E::from_f32((i % 13) as f32)).collect();
    let mut dst: Vec<E> = (0..N).map(|i| E::from_f32((i % 7) as f32)).collect();
    b.run_bytes(
        &format!("reduce_add_into/{name}"),
        (N * std::mem::size_of::<E>()) as u64,
        || reduce_add_into(black_box(&mut dst), black_box(&src)),
    );
}

fn bench_nway<E: Element>(b: &Bench, name: &str) {
    let srcs: Vec<Vec<E>> = (0..8)
        .map(|s| (0..N).map(|i| E::from_f32(((s + i) % 13) as f32)).collect())
        .collect();
    let refs: Vec<&[E]> = srcs.iter().map(|v| v.as_slice()).collect();
    let mut dst = vec![E::ZERO; N];
    b.run_bytes(
        &format!("reduce_8way/{name}"),
        (8 * N * std::mem::size_of::<E>()) as u64,
        || reduce_n_into(black_box(&mut dst), black_box(&refs)),
    );
}

fn main() {
    let b = Bench::new();
    bench_add::<f32>(&b, "f32");
    bench_add::<F16>(&b, "f16");
    bench_add::<Bf16>(&b, "bf16");
    bench_add::<F8E4M3>(&b, "f8e4m3");
    bench_nway::<f32>(&b, "f32");
    bench_nway::<Bf16>(&b, "bf16");
}
