//! Criterion: the CPU reduction kernels per dtype (§IV-D1).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ff_dtypes::{Bf16, Element, F16, F8E4M3};
use ff_reduce::kernels::{reduce_add_into, reduce_n_into};

const N: usize = 1 << 16;

fn bench_add<E: Element>(c: &mut Criterion, name: &str) {
    let mut g = c.benchmark_group("reduce_add_into");
    g.throughput(Throughput::Bytes((N * std::mem::size_of::<E>()) as u64));
    let src: Vec<E> = (0..N).map(|i| E::from_f32((i % 13) as f32)).collect();
    let mut dst: Vec<E> = (0..N).map(|i| E::from_f32((i % 7) as f32)).collect();
    g.bench_function(name, |b| {
        b.iter(|| reduce_add_into(black_box(&mut dst), black_box(&src)))
    });
    g.finish();
}

fn bench_nway<E: Element>(c: &mut Criterion, name: &str) {
    let mut g = c.benchmark_group("reduce_8way");
    g.throughput(Throughput::Bytes((8 * N * std::mem::size_of::<E>()) as u64));
    let srcs: Vec<Vec<E>> = (0..8)
        .map(|s| (0..N).map(|i| E::from_f32(((s + i) % 13) as f32)).collect())
        .collect();
    let refs: Vec<&[E]> = srcs.iter().map(|v| v.as_slice()).collect();
    let mut dst = vec![E::ZERO; N];
    g.bench_function(name, |b| {
        b.iter(|| reduce_n_into(black_box(&mut dst), black_box(&refs)))
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_add::<f32>(c, "f32");
    bench_add::<F16>(c, "f16");
    bench_add::<Bf16>(c, "bf16");
    bench_add::<F8E4M3>(c, "f8e4m3");
    bench_nway::<f32>(c, "f32");
    bench_nway::<Bf16>(c, "bf16");
}

criterion_group!(kernels, benches);
criterion_main!(kernels);
