//! The Fire-Flyer 2 deployment description (§III).

use ff_hw::power::ClusterPower;
use ff_hw::{NodeSpec, StorageNodeSpec};
use ff_reduce::{ClusterConfig, ClusterModel};
use ff_topo::cost::{our_arch, ArchCost};
use ff_topo::fattree::{TwoZoneNetwork, TwoZoneSpec};

/// A Fire-Flyer-2-class deployment: node builds, counts, network shape.
#[derive(Debug, Clone)]
pub struct FireFlyer2 {
    /// Compute node build.
    pub node: NodeSpec,
    /// Storage node build.
    pub storage: StorageNodeSpec,
    /// Compute nodes.
    pub compute_nodes: usize,
    /// Storage nodes.
    pub storage_nodes: usize,
}

impl FireFlyer2 {
    /// The paper's deployment: 1,250 PCIe A100 nodes (10,000 GPUs), 180
    /// storage nodes, two 800-port fat-tree zones.
    pub fn paper() -> Self {
        FireFlyer2 {
            node: NodeSpec::pcie_a100_nvlink(),
            storage: StorageNodeSpec::paper(),
            compute_nodes: 1250,
            storage_nodes: 180,
        }
    }

    /// A scaled-down deployment with the same shape.
    pub fn scaled(compute_nodes: usize, storage_nodes: usize) -> Self {
        FireFlyer2 {
            compute_nodes,
            storage_nodes,
            ..Self::paper()
        }
    }

    /// Total GPUs.
    pub fn total_gpus(&self) -> usize {
        self.compute_nodes * self.node.gpus
    }

    /// Aggregate storage egress bandwidth, bytes/second (§VI-B2's 9 TB/s).
    pub fn storage_egress_bw(&self) -> f64 {
        self.storage_nodes as f64 * self.storage.outbound_bw()
    }

    /// The Table III cost row for this architecture.
    pub fn network_cost(&self) -> ArchCost {
        our_arch()
    }

    /// The cluster power envelope (§VIII-C2).
    pub fn power(&self) -> ClusterPower {
        ClusterPower {
            compute_nodes: self.compute_nodes,
            storage_nodes: self.storage_nodes,
            switches: self.network_cost().switches,
            node_watts: self.node.power_watts,
        }
    }

    /// Build the hardware+network simulation model for `nodes` of this
    /// deployment's compute nodes (the substrate of Figures 7–9).
    pub fn cluster_model(&self, nodes: usize) -> ClusterModel {
        assert!(nodes <= self.compute_nodes);
        ClusterModel::build(&ClusterConfig {
            nodes,
            node_spec: self.node.clone(),
            ..ClusterConfig::fire_flyer(nodes)
        })
    }

    /// Build the two-zone network graph at this deployment's scale.
    pub fn network(&self) -> TwoZoneNetwork {
        if self.compute_nodes >= 1200 {
            TwoZoneNetwork::build(&TwoZoneSpec::paper())
        } else {
            TwoZoneNetwork::build(&TwoZoneSpec::scaled(
                self.compute_nodes.div_ceil(2),
                self.storage_nodes,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deployment_shape() {
        let ff2 = FireFlyer2::paper();
        assert_eq!(ff2.total_gpus(), 10_000);
        assert_eq!(ff2.storage_nodes, 180);
        assert!((ff2.storage_egress_bw() - 9e12).abs() < 1e9);
    }

    #[test]
    fn cost_and_power_match_tables() {
        let ff2 = FireFlyer2::paper();
        assert_eq!(ff2.network_cost().switches, 122);
        let p = ff2.power().total_watts();
        assert!(p > 3e6 && p < 4e6, "{p}");
    }

    #[test]
    fn scaled_deployment_builds_models() {
        let ff2 = FireFlyer2::scaled(8, 3);
        let model = ff2.cluster_model(4);
        assert_eq!(model.gpus(), 32);
        let net = ff2.network();
        assert_eq!(net.storage.len(), 3);
    }
}
