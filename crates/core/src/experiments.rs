//! Programmatic access to the paper's experiment series — the same data
//! the `ff-bench` binaries print, as values, for downstream analysis.

use ff_haiscale::ddp::{ddp_step, DdpBackend};
use ff_haiscale::models::TrainModel;
use ff_haiscale::moe::{moe_step, MoeConfig};
use ff_haiscale::pipeline::{pipeline_step, PipelineConfig};
use ff_reduce::model::{hfreduce_steady, HfReduceOptions, HfReduceVariant};
use ff_reduce::ring::ring_analytic_bw;
use ff_reduce::ClusterConfig;

/// One point of the Figure 7a comparison.
#[derive(Debug, Clone)]
pub struct AllreducePoint {
    /// Participating GPUs.
    pub gpus: usize,
    /// HFReduce algorithm bandwidth, bytes/s (discrete-event simulation).
    pub hfreduce_bps: f64,
    /// NCCL-style ring bandwidth, bytes/s (calibrated model).
    pub nccl_bps: f64,
}

/// The Figure 7a sweep at `bytes` per GPU over `gpu_counts` (multiples of
/// 8). The large points simulate hundreds of nodes — run in release.
pub fn figure7a(bytes: f64, gpu_counts: &[usize]) -> Vec<AllreducePoint> {
    gpu_counts
        .iter()
        .map(|&gpus| {
            assert!(gpus % 8 == 0 && gpus >= 16);
            let hf = hfreduce_steady(
                &ClusterConfig::fire_flyer(gpus / 8),
                bytes,
                &HfReduceOptions::default(),
            );
            AllreducePoint {
                gpus,
                hfreduce_bps: hf.algbw_bps,
                nccl_bps: ring_analytic_bw(gpus, bytes),
            }
        })
        .collect()
}

/// One Figure 7b point: the NVLink variant, optionally cross-zone.
pub fn figure7b_point(gpus: usize, bytes: f64, cross_zone: bool) -> f64 {
    let cfg = ClusterConfig {
        two_zone: cross_zone,
        ..ClusterConfig::fire_flyer_nvlink(gpus / 8)
    };
    hfreduce_steady(
        &cfg,
        bytes,
        &HfReduceOptions {
            variant: HfReduceVariant::NvLink,
            ..Default::default()
        },
    )
    .algbw_bps
}

/// One point of a training-scaling series.
#[derive(Debug, Clone)]
pub struct TrainingPoint {
    /// Total GPUs.
    pub gpus: usize,
    /// Step time, seconds (the compared system).
    pub step_s: f64,
    /// Baseline step time, seconds (PyTorch / reference), when applicable.
    pub baseline_s: Option<f64>,
}

/// Figure 8a: VGG16 DDP weak scaling, HaiScale vs Torch.
pub fn figure8a(gpu_counts: &[usize], batch_per_gpu: usize) -> Vec<TrainingPoint> {
    let m = TrainModel::vgg16();
    gpu_counts
        .iter()
        .map(|&gpus| TrainingPoint {
            gpus,
            step_s: ddp_step(&m, gpus, batch_per_gpu, DdpBackend::HaiScale).total_s(),
            baseline_s: Some(ddp_step(&m, gpus, batch_per_gpu, DdpBackend::TorchNccl).total_s()),
        })
        .collect()
}

/// Figure 9a: LLaMa-13B pipeline strong scaling at the paper's config.
pub fn figure9a(gpu_counts: &[usize]) -> Vec<TrainingPoint> {
    let m = TrainModel::llama_13b();
    let cfg = PipelineConfig::llama_13b_paper();
    gpu_counts
        .iter()
        .map(|&gpus| TrainingPoint {
            gpus,
            step_s: pipeline_step(&m, &cfg, gpus).total_s(),
            baseline_s: None,
        })
        .collect()
}

/// Figure 9b: DeepSeekMoE-16B strong scaling at the paper's config.
pub fn figure9b(gpu_counts: &[usize]) -> Vec<TrainingPoint> {
    let m = TrainModel::deepseek_moe_16b();
    let cfg = MoeConfig::deepseek_moe_16b_paper();
    gpu_counts
        .iter()
        .map(|&gpus| TrainingPoint {
            gpus,
            step_s: moe_step(&m, &cfg, gpus).total_s(),
            baseline_s: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = 1024.0 * 1024.0;

    #[test]
    fn figure7a_series_shape() {
        let pts = figure7a(64.0 * MIB, &[16, 64, 128]);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.hfreduce_bps > p.nccl_bps, "{} GPUs", p.gpus);
        }
        // NCCL declines; HFReduce roughly flat.
        assert!(pts[2].nccl_bps < pts[0].nccl_bps);
        assert!(pts[2].hfreduce_bps > pts[0].hfreduce_bps * 0.8);
    }

    #[test]
    fn figure7b_cross_zone_still_above_plain() {
        let nvl = figure7b_point(32, 64.0 * MIB, true);
        let plain = figure7a(64.0 * MIB, &[32])[0].hfreduce_bps;
        assert!(nvl > plain, "{nvl} vs {plain}");
    }

    #[test]
    fn training_series_monotone() {
        let s9a = figure9a(&[64, 128, 256, 512]);
        assert!(s9a.windows(2).all(|w| w[1].step_s < w[0].step_s));
        let s9b = figure9b(&[40, 80, 320, 640]);
        assert!(s9b.windows(2).all(|w| w[1].step_s < w[0].step_s));
        let s8a = figure8a(&[32, 512], 32);
        assert!(s8a[0].baseline_s.unwrap() > s8a[0].step_s);
    }
}
