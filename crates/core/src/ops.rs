//! Operations simulation: the HAI platform under the paper's measured
//! failure rates (§VII).
//!
//! Drives the [`ff_platform::Platform`] scheduler with a failure trace
//! from [`ff_failures::FailureGenerator`]: Xids that need node action take
//! the node out (repaired after a configurable MTTR, as the operations
//! team would), tasks roll back to their last checkpoint and reschedule.
//! The report quantifies the §VII-A claim that with 5-minute checkpoints
//! "the overhead from disaster recovery is minimal".

use ff_failures::{FailureEvent, FailureGenerator, FailureKind};
use ff_platform::{JobSpec, PlatformConfig};

/// Configuration of an operations run.
#[derive(Debug, Clone)]
pub struct OpsSimulation {
    /// Nodes per zone.
    pub per_zone: [usize; 2],
    /// Checkpoint cadence, seconds (§VII-A: 300).
    pub ckpt_interval_s: u64,
    /// Days to simulate.
    pub days: u64,
    /// Mean time to repair a failed node, seconds.
    pub mttr_s: u64,
    /// Failure-rate scale (1.0 = the paper's measured rates, scaled to
    /// the simulated node count).
    pub failure_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OpsSimulation {
    fn default() -> Self {
        OpsSimulation {
            per_zone: [16, 16],
            ckpt_interval_s: 300,
            days: 30,
            mttr_s: 4 * 3600,
            failure_scale: 1.0,
            seed: 7,
        }
    }
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct OpsReport {
    /// Node-seconds of work lost to failures.
    pub lost_work_node_s: u64,
    /// Total productive node-seconds delivered.
    pub busy_node_s: u64,
    /// Scheduler utilization over healthy node-time.
    pub utilization: f64,
    /// Failures that required node action.
    pub node_failures: usize,
    /// Total failure events observed (including tolerated ones).
    pub total_events: usize,
}

impl OpsReport {
    /// Lost work as a fraction of delivered work — the §VII-A "minimal
    /// overhead" metric.
    pub fn loss_fraction(&self) -> f64 {
        if self.busy_node_s == 0 {
            0.0
        } else {
            self.lost_work_node_s as f64 / self.busy_node_s as f64
        }
    }
}

impl OpsSimulation {
    /// Run the simulation.
    pub fn run(&self) -> OpsReport {
        let nodes = self.per_zone[0] + self.per_zone[1];
        let mut platform = PlatformConfig::new()
            .zones(self.per_zone)
            .ckpt_interval(self.ckpt_interval_s)
            .build()
            .expect("ops simulation has nodes");
        // Keep the cluster saturated with week-long 4-node jobs.
        for i in 0..nodes {
            platform
                .submit(JobSpec::new(format!("train-{i}"), 4, 14 * 86_400))
                .expect("4-node job fits the cluster");
        }
        // Failure trace scaled from the paper's 1,250-node rates to ours.
        let mut gen = FailureGenerator::paper_calibrated(self.seed, nodes);
        gen.scale_rates(self.failure_scale * nodes as f64 / 1250.0);
        let horizon = (self.days * 86_400) as f64;
        let events = gen.generate(horizon);

        let mut node_failures = 0usize;
        let mut repairs: Vec<(u64, usize)> = Vec::new(); // (due time, node)
        let mut now = 0u64;
        let step = 60u64; // 1-minute scheduler ticks
        let mut ei = 0usize;
        while now < self.days * 86_400 {
            now += step;
            platform.tick(step);
            // Repairs due.
            while let Some(pos) = repairs.iter().position(|&(due, _)| due <= now) {
                let (_, node) = repairs.swap_remove(pos);
                platform.heal_node(node);
            }
            // Failures in this window.
            while ei < events.len() && events[ei].at_s <= now as f64 {
                let e: &FailureEvent = &events[ei];
                ei += 1;
                let needs_action = match e.kind {
                    FailureKind::GpuXid(x) => x.needs_node_action(),
                    FailureKind::MainMemoryEcc => true,
                    // Flash cuts break a link, not a node; tasks retry.
                    FailureKind::NetworkFlashCut => false,
                    // Storage faults are absorbed by the storage plane
                    // (chain failover + re-sync), not the compute pool.
                    FailureKind::StorageTargetFailure => false,
                };
                if needs_action && !repairs.iter().any(|&(_, n)| n == e.node) {
                    node_failures += 1;
                    platform.fail_node(e.node);
                    repairs.push((now + self.mttr_s, e.node));
                }
            }
        }
        OpsReport {
            lost_work_node_s: platform.lost_work_s(),
            busy_node_s: (platform.utilization() * (nodes as u64 * self.days * 86_400) as f64)
                as u64,
            utilization: platform.utilization(),
            node_failures,
            total_events: events.len(),
        }
    }
}

/// Sweep checkpoint cadences to show the §VII-A trade-off: longer
/// intervals lose more work per failure.
pub fn checkpoint_cadence_sweep(intervals_s: &[u64], days: u64) -> Vec<(u64, f64)> {
    intervals_s
        .iter()
        .map(|&iv| {
            let report = OpsSimulation {
                ckpt_interval_s: iv,
                days,
                // Stress rates so the sweep differentiates quickly.
                failure_scale: 50.0,
                ..Default::default()
            }
            .run();
            (iv, report.loss_fraction())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_stays_high_despite_failures() {
        let report = OpsSimulation {
            days: 10,
            ..Default::default()
        }
        .run();
        assert!(
            report.utilization > 0.90,
            "utilization {}",
            report.utilization
        );
    }

    #[test]
    fn five_minute_checkpoints_keep_loss_minimal() {
        // §VII-A: "only the last 5 minutes of progress are lost ... this
        // overhead from disaster recovery is minimal."
        let report = OpsSimulation {
            days: 10,
            failure_scale: 10.0, // even at 10× the measured rates
            ..Default::default()
        }
        .run();
        assert!(
            report.loss_fraction() < 0.01,
            "loss fraction {}",
            report.loss_fraction()
        );
    }

    #[test]
    fn longer_cadence_loses_more_work() {
        let sweep = checkpoint_cadence_sweep(&[300, 3600, 14400], 5);
        assert!(sweep[0].1 <= sweep[1].1 + 1e-9);
        assert!(sweep[1].1 <= sweep[2].1 + 1e-9);
        assert!(
            sweep[2].1 > sweep[0].1,
            "sweep should differentiate: {sweep:?}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = OpsSimulation::default().run();
        let b = OpsSimulation::default().run();
        assert_eq!(a.lost_work_node_s, b.lost_work_node_s);
        assert_eq!(a.node_failures, b.node_failures);
    }

    #[test]
    fn flash_cuts_do_not_kill_nodes() {
        // With only network failures (scale GPU/memory rates to ~0 by
        // using a tiny cluster and checking the tolerated/total ratio),
        // node_failures < total_events always holds.
        let report = OpsSimulation {
            days: 20,
            failure_scale: 5.0,
            ..Default::default()
        }
        .run();
        assert!(report.node_failures < report.total_events);
    }
}
