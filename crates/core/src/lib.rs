//! # fireflyer — the Fire-Flyer 2 AI-HPC, assembled
//!
//! The umbrella crate of the reproduction: re-exports every subsystem and
//! provides the cluster-level composition — the deployment description of
//! §III, and an operations simulation that runs the HAI platform under the
//! paper's measured failure rates to quantify the §VII story (checkpoint
//! cadence vs lost work, validator-driven node health, utilization).
//!
//! ```
//! use fireflyer::deployment::FireFlyer2;
//!
//! let ff2 = FireFlyer2::paper();
//! assert_eq!(ff2.total_gpus(), 10_000);
//! assert!(ff2.network_cost().total() < 12_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod experiments;
pub mod ops;

pub use deployment::FireFlyer2;
pub use ops::{OpsReport, OpsSimulation};

// The full stack, one `use` away.
pub use ff_3fs as fs3;
pub use ff_desim as desim;
pub use ff_dtypes as dtypes;
pub use ff_failures as failures;
pub use ff_haiscale as haiscale;
pub use ff_hw as hw;
pub use ff_net as net;
pub use ff_obs as obs;
pub use ff_platform as platform;
pub use ff_reduce as reduce;
pub use ff_topo as topo;
