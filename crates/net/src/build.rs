//! Registering a topology's links as fluid resources and converting routed
//! paths into fluid routes.

use crate::lanes::{ServiceLevel, VlConfig};
use ff_desim::{FluidSim, ResourceId, Route};
use ff_topo::{LinkId, NodeId, Topology};

/// The fluid resources backing a topology's links.
///
/// Each link gets one resource per direction per Virtual Lane, with
/// capacity `link.capacity × share(lane)`. Direction 0 is `a→b` in the
/// topology's link record.
pub struct NetResources {
    vl: VlConfig,
    /// `per_link[link][direction][lane]`.
    per_link: Vec<[Vec<ResourceId>; 2]>,
}

impl NetResources {
    /// Register every link of `topo` in `fluid` under `vl` lane splitting.
    pub fn install(fluid: &mut FluidSim, topo: &Topology, vl: VlConfig) -> Self {
        vl.validate();
        let mut per_link = Vec::with_capacity(topo.link_count());
        for li in 0..topo.link_count() as u32 {
            let link = topo.link(LinkId(li));
            let mut dirs: [Vec<ResourceId>; 2] = [Vec::new(), Vec::new()];
            for (d, dir_name) in ["fwd", "rev"].iter().enumerate() {
                for (lane, share) in vl.shares.iter().enumerate() {
                    dirs[d].push(fluid.add_resource(
                        format!("link{li}/{dir_name}/vl{lane}"),
                        link.capacity * share,
                    ));
                }
            }
            per_link.push(dirs);
        }
        NetResources { vl, per_link }
    }

    /// The lane configuration in use.
    pub fn vl(&self) -> &VlConfig {
        &self.vl
    }

    /// The directed resource for `link` traversed *from* `from`, on the
    /// lane of `sl`.
    pub fn link_resource(
        &self,
        topo: &Topology,
        link: LinkId,
        from: NodeId,
        sl: ServiceLevel,
    ) -> ResourceId {
        let l = topo.link(link);
        let dir = if l.a == from {
            0
        } else {
            assert_eq!(l.b, from, "{from:?} is not an endpoint of {link:?}");
            1
        };
        self.per_link[link.0 as usize][dir][self.vl.lane_of(sl)]
    }

    /// Convert a routed path (as produced by `ff_topo::Router`) into a
    /// fluid route on the lane of `sl`, walking from `src`.
    pub fn path_route(
        &self,
        topo: &Topology,
        src: NodeId,
        path: &[LinkId],
        sl: ServiceLevel,
    ) -> Route {
        let mut at = src;
        let mut route = Route::default();
        for &l in path {
            route.push(self.link_resource(topo, l, at, sl), 1.0);
            let link = topo.link(l);
            at = if link.a == at { link.b } else { link.a };
        }
        route
    }

    /// Degrade every lane and direction of `link` to `factor × capacity` —
    /// the net-layer face of fault injection: an IB link flash cut or a
    /// cable trained down hits all service levels in both directions.
    pub fn degrade_link(&self, fluid: &mut FluidSim, link: LinkId, factor: f64) {
        for dir in &self.per_link[link.0 as usize] {
            for &r in dir {
                fluid
                    .degrade(r, factor)
                    .expect("degrade_link: lane resources are registered");
            }
        }
    }

    /// Lift any degradation on `link` (the link re-trained at full speed).
    pub fn restore_link(&self, fluid: &mut FluidSim, link: LinkId) {
        for dir in &self.per_link[link.0 as usize] {
            for &r in dir {
                fluid
                    .restore(r)
                    .expect("restore_link: lane resources are registered");
            }
        }
    }

    /// Current load on the directed lane of `sl` over `link` from `from` —
    /// the load oracle adaptive routing consults.
    pub fn load_of(
        &self,
        fluid: &mut FluidSim,
        topo: &Topology,
        link: LinkId,
        from: NodeId,
        sl: ServiceLevel,
    ) -> f64 {
        let r = self.link_resource(topo, link, from, sl);
        fluid.resource_load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_topo::graph::NodeKind;

    fn line_topo() -> (Topology, NodeId, NodeId, LinkId, LinkId) {
        let mut t = Topology::new();
        let h0 = t.add_node(NodeKind::ComputeHost, "h0", None);
        let s = t.add_node(NodeKind::Leaf, "s", None);
        let h1 = t.add_node(NodeKind::ComputeHost, "h1", None);
        let l0 = t.add_link(h0, s, 100.0);
        let l1 = t.add_link(s, h1, 100.0);
        (t, h0, h1, l0, l1)
    }

    #[test]
    fn shared_lane_route_uses_full_capacity() {
        let (topo, h0, h1, _, _) = line_topo();
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, VlConfig::shared());
        let path = topo.shortest_paths(h0, h1, 1).remove(0);
        let route = net.path_route(&topo, h0, &path, ServiceLevel::Storage);
        let f = fluid.start_flow(100.0, &route);
        assert!((fluid.flow_rate(f) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn isolated_lanes_limit_each_class_but_prevent_interference() {
        let (topo, h0, h1, _, _) = line_topo();
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, VlConfig::isolated());
        let path = topo.shortest_paths(h0, h1, 1).remove(0);
        let storage = net.path_route(&topo, h0, &path, ServiceLevel::Storage);
        let hfreduce = net.path_route(&topo, h0, &path, ServiceLevel::HfReduce);
        let fs = fluid.start_flow(1000.0, &storage);
        let fr = fluid.start_flow(1000.0, &hfreduce);
        // Storage gets its 35% slice; HFReduce its own 35%; no interference.
        assert!((fluid.flow_rate(fs) - 35.0).abs() < 1e-6);
        assert!((fluid.flow_rate(fr) - 35.0).abs() < 1e-6);
        // A storm of storage flows does not change HFReduce's rate.
        for _ in 0..10 {
            fluid.start_flow(1000.0, &storage);
        }
        assert!((fluid.flow_rate(fr) - 35.0).abs() < 1e-6);
    }

    #[test]
    fn shared_lane_suffers_interference() {
        let (topo, h0, h1, _, _) = line_topo();
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, VlConfig::shared());
        let path = topo.shortest_paths(h0, h1, 1).remove(0);
        let storage = net.path_route(&topo, h0, &path, ServiceLevel::Storage);
        let hfreduce = net.path_route(&topo, h0, &path, ServiceLevel::HfReduce);
        let fr = fluid.start_flow(1000.0, &hfreduce);
        for _ in 0..9 {
            fluid.start_flow(1000.0, &storage);
        }
        // 10 flows share one lane: HFReduce crushed to 10 units.
        assert!((fluid.flow_rate(fr) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn directions_are_independent() {
        let (topo, h0, h1, _, _) = line_topo();
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, VlConfig::shared());
        let fwd = topo.shortest_paths(h0, h1, 1).remove(0);
        let rev = topo.shortest_paths(h1, h0, 1).remove(0);
        let a = fluid.start_flow(
            1000.0,
            &net.path_route(&topo, h0, &fwd, ServiceLevel::Other),
        );
        let b = fluid.start_flow(
            1000.0,
            &net.path_route(&topo, h1, &rev, ServiceLevel::Other),
        );
        assert!((fluid.flow_rate(a) - 100.0).abs() < 1e-6);
        assert!((fluid.flow_rate(b) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn degraded_link_throttles_all_lanes_until_restored() {
        let (topo, h0, h1, l0, _) = line_topo();
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, VlConfig::isolated());
        let path = topo.shortest_paths(h0, h1, 1).remove(0);
        let storage = net.path_route(&topo, h0, &path, ServiceLevel::Storage);
        let hfreduce = net.path_route(&topo, h0, &path, ServiceLevel::HfReduce);
        let fs = fluid.start_flow(1e6, &storage);
        let fr = fluid.start_flow(1e6, &hfreduce);
        assert!((fluid.flow_rate(fs) - 35.0).abs() < 1e-6);
        // Flash cut: the whole link trains down to 10%.
        net.degrade_link(&mut fluid, l0, 0.1);
        assert!((fluid.flow_rate(fs) - 3.5).abs() < 1e-6);
        assert!((fluid.flow_rate(fr) - 3.5).abs() < 1e-6);
        net.restore_link(&mut fluid, l0);
        assert!((fluid.flow_rate(fs) - 35.0).abs() < 1e-6);
    }

    #[test]
    fn load_oracle_reports_directed_lane_load() {
        let (topo, h0, h1, l0, _) = line_topo();
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, VlConfig::shared());
        let path = topo.shortest_paths(h0, h1, 1).remove(0);
        fluid.start_flow(
            1000.0,
            &net.path_route(&topo, h0, &path, ServiceLevel::Nccl),
        );
        let leaf = topo.access_switch(h0);
        let fwd = net.load_of(&mut fluid, &topo, l0, h0, ServiceLevel::Nccl);
        let rev = net.load_of(&mut fluid, &topo, l0, leaf, ServiceLevel::Nccl);
        let _ = h1;
        assert!((fwd - 100.0).abs() < 1e-6);
        assert_eq!(rev, 0.0);
    }
}
