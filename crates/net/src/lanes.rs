//! Service Levels and Virtual Lane configuration (§VI-A1).

/// The four traffic classes the paper separates with IB Service Levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// HFReduce allreduce traffic (CPU-driven RDMA).
    HfReduce,
    /// NCCL traffic (GPU-driven RDMA).
    Nccl,
    /// 3FS storage traffic.
    Storage,
    /// Everything else (management, logging, ...).
    Other,
}

impl ServiceLevel {
    /// All levels, in lane order.
    pub const ALL: [ServiceLevel; 4] = [
        ServiceLevel::HfReduce,
        ServiceLevel::Nccl,
        ServiceLevel::Storage,
        ServiceLevel::Other,
    ];

    /// Index of this level in [`ServiceLevel::ALL`].
    pub fn index(self) -> usize {
        match self {
            ServiceLevel::HfReduce => 0,
            ServiceLevel::Nccl => 1,
            ServiceLevel::Storage => 2,
            ServiceLevel::Other => 3,
        }
    }
}

/// How Service Levels map onto Virtual Lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct VlConfig {
    /// Capacity share of each lane (sums to 1). One entry per lane.
    pub shares: Vec<f64>,
    /// Lane assigned to each Service Level (index into `shares`).
    pub sl_to_vl: [usize; 4],
}

impl VlConfig {
    /// No isolation: a single lane carrying everything. Classes interfere —
    /// head-of-line blocking between storage incast and allreduce traffic.
    pub fn shared() -> Self {
        VlConfig {
            shares: vec![1.0],
            sl_to_vl: [0, 0, 0, 0],
        }
    }

    /// The paper's production setup: each class in its own lane so "flows
    /// in distinct lanes do not interfere with each other". Shares reflect
    /// the configured proportions between compute and storage traffic.
    pub fn isolated() -> Self {
        VlConfig {
            shares: vec![0.35, 0.20, 0.35, 0.10],
            sl_to_vl: [0, 1, 2, 3],
        }
    }

    /// Custom lane shares with a 1:1 SL→VL map (must supply 4 lanes).
    pub fn custom(shares: [f64; 4]) -> Self {
        VlConfig {
            shares: shares.to_vec(),
            sl_to_vl: [0, 1, 2, 3],
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.shares.len()
    }

    /// Lane index for a Service Level.
    pub fn lane_of(&self, sl: ServiceLevel) -> usize {
        self.sl_to_vl[sl.index()]
    }

    /// Validate: shares positive and summing to 1, mappings in range.
    pub fn validate(&self) {
        assert!(!self.shares.is_empty());
        let sum: f64 = self.shares.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "VL shares must sum to 1, got {sum}"
        );
        for &s in &self.shares {
            assert!(s > 0.0, "VL share must be positive");
        }
        for &vl in &self.sl_to_vl {
            assert!(vl < self.shares.len(), "SL maps to unknown lane {vl}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_config_maps_everything_to_lane0() {
        let c = VlConfig::shared();
        c.validate();
        assert_eq!(c.lanes(), 1);
        for sl in ServiceLevel::ALL {
            assert_eq!(c.lane_of(sl), 0);
        }
    }

    #[test]
    fn isolated_config_separates_classes() {
        let c = VlConfig::isolated();
        c.validate();
        assert_eq!(c.lanes(), 4);
        let mut lanes: Vec<usize> = ServiceLevel::ALL.iter().map(|&s| c.lane_of(s)).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 4, "each class must have its own lane");
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn bad_shares_rejected() {
        VlConfig::custom([0.5, 0.5, 0.5, 0.5]).validate();
    }

    #[test]
    fn indexes_are_stable() {
        for (i, sl) in ServiceLevel::ALL.iter().enumerate() {
            assert_eq!(sl.index(), i);
        }
    }
}
