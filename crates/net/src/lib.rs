//! # ff-net — flow-level network simulation
//!
//! Binds a `ff-topo` topology to the `ff-desim` fluid engine and layers on
//! the congestion-management machinery of §VI-A and §VIII-A:
//!
//! * [`lanes`] — InfiniBand Service Levels mapped to Virtual Lanes. With
//!   isolation on, each traffic class (HFReduce / NCCL / 3FS storage /
//!   other) gets a dedicated slice of every link, so classes cannot
//!   head-of-line block each other; with isolation off they share one lane
//!   and interfere — the ablation of §VI-A1.
//! * [`build`] — registers per-direction (and per-lane) link resources and
//!   converts routed paths into weighted fluid routes.
//! * [`rts`] — the request-to-send incast control of 3FS (§VI-B3): a
//!   receiver admits at most `k` concurrent senders and queues the rest,
//!   trading end-to-end latency for sustainable goodput.
//! * [`cc`] — a DCQCN-style ECN rate controller (§VIII-A), implemented as
//!   per-flow pacers so the ablation can show why the paper disabled it.
//! * [`experiments`] — canned incast / congestion-spread scenarios used by
//!   the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod cc;
pub mod experiments;
pub mod lanes;
pub mod rts;

pub use build::NetResources;
pub use lanes::{ServiceLevel, VlConfig};
pub use rts::RtsController;
