//! Request-to-send admission control (§VI-B3).
//!
//! At peak load 3FS clients see incast congestion: many storage services
//! transmit to one client NIC at once. The fix is receiver-side admission:
//! a storage service asks the client's permission before transferring, and
//! the client "limits the number of concurrent senders". This module is the
//! admission queue both the 3FS client (`ff-3fs`) and the incast experiment
//! use.

use std::collections::VecDeque;

/// A FIFO admission controller: at most `limit` grants outstanding.
#[derive(Debug)]
pub struct RtsController<T> {
    limit: usize,
    in_flight: usize,
    queue: VecDeque<T>,
}

impl<T> RtsController<T> {
    /// Admit at most `limit` concurrent senders (`limit ≥ 1`).
    pub fn new(limit: usize) -> Self {
        assert!(limit >= 1, "RTS limit must be at least 1");
        RtsController {
            limit,
            in_flight: 0,
            queue: VecDeque::new(),
        }
    }

    /// A sender requests permission. Returns `Some(token)` when admitted
    /// immediately; otherwise the token is queued and will be returned by a
    /// later [`complete`](Self::complete).
    #[must_use]
    pub fn request(&mut self, token: T) -> Option<T> {
        if self.in_flight < self.limit {
            self.in_flight += 1;
            Some(token)
        } else {
            self.queue.push_back(token);
            None
        }
    }

    /// A granted transfer finished; returns the next queued sender to
    /// admit, if any (the grant transfers to it).
    #[must_use]
    pub fn complete(&mut self) -> Option<T> {
        assert!(self.in_flight > 0, "complete() without an active grant");
        match self.queue.pop_front() {
            Some(next) => Some(next), // grant moves to the next sender
            None => {
                self.in_flight -= 1;
                None
            }
        }
    }

    /// Transfers currently admitted.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Senders waiting for a grant.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The concurrency limit.
    pub fn limit(&self) -> usize {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_limit() {
        let mut rts = RtsController::new(2);
        assert_eq!(rts.request("a"), Some("a"));
        assert_eq!(rts.request("b"), Some("b"));
        assert_eq!(rts.request("c"), None);
        assert_eq!(rts.in_flight(), 2);
        assert_eq!(rts.queued(), 1);
    }

    #[test]
    fn completion_hands_grant_to_next() {
        let mut rts = RtsController::new(1);
        assert_eq!(rts.request(1), Some(1));
        assert_eq!(rts.request(2), None);
        assert_eq!(rts.request(3), None);
        assert_eq!(rts.complete(), Some(2));
        assert_eq!(rts.in_flight(), 1);
        assert_eq!(rts.complete(), Some(3));
        assert_eq!(rts.complete(), None);
        assert_eq!(rts.in_flight(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut rts = RtsController::new(1);
        let _ = rts.request(0);
        for i in 1..=5 {
            assert_eq!(rts.request(i), None);
        }
        let order: Vec<i32> = std::iter::from_fn(|| rts.complete()).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "without an active grant")]
    fn complete_without_grant_panics() {
        let mut rts = RtsController::<u8>::new(1);
        let _ = rts.complete();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_limit_rejected() {
        let _ = RtsController::<u8>::new(0);
    }
}
