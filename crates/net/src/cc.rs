//! A DCQCN-style congestion controller (§VIII-A).
//!
//! DCQCN reacts to ECN marks with multiplicative rate decrease and slow
//! additive/hyperbolic recovery. The paper *disabled* it: no parameter
//! setting suited both bursty HFReduce allreduce traffic and sustained 3FS
//! storage streams in the integrated network, and with VL isolation plus
//! static routing the network stays congestion-free without it.
//!
//! The model: each controlled flow gets a private *pacer* resource whose
//! cap the controller adjusts at a fixed cadence. A flow is "marked" when
//! any watched link-lane runs above the ECN threshold; marked flows halve
//! their cap, unmarked flows recover by an additive step. This reproduces
//! DCQCN's sawtooth and its failure mode — chronic underutilization when
//! mixing traffic classes with different burst profiles.

use ff_desim::{FluidSim, ResourceId, Route, SimDuration};

/// DCQCN-like controller parameters.
#[derive(Debug, Clone, Copy)]
pub struct DcqcnParams {
    /// Link-lane load fraction above which flows crossing it are marked.
    pub ecn_threshold: f64,
    /// Multiplicative decrease factor applied to marked flows.
    pub decrease: f64,
    /// Additive recovery per step, as a fraction of line rate.
    pub recover_frac: f64,
    /// Minimum rate floor, as a fraction of line rate.
    pub min_frac: f64,
    /// Controller cadence.
    pub period: SimDuration,
}

impl Default for DcqcnParams {
    fn default() -> Self {
        DcqcnParams {
            ecn_threshold: 0.95,
            decrease: 0.5,
            recover_frac: 0.05,
            min_frac: 0.01,
            period: SimDuration::from_micros(50),
        }
    }
}

struct Paced {
    pacer: ResourceId,
    watch: Vec<(ResourceId, f64)>, // (lane resource, capacity)
    line: f64,
    rate: f64,
    done: bool,
}

/// Identifies a flow registered with a [`Dcqcn`] controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacedId(usize);

/// The controller. Register flows with [`pace`](Self::pace), start them on
/// the returned route, and call [`step`](Self::step) every
/// [`DcqcnParams::period`].
pub struct Dcqcn {
    params: DcqcnParams,
    flows: Vec<Paced>,
}

impl Dcqcn {
    /// A controller with `params`.
    pub fn new(params: DcqcnParams) -> Self {
        Dcqcn {
            params,
            flows: Vec::new(),
        }
    }

    /// Wrap `route` with a fresh pacer at `line` bytes/s. The caller starts
    /// the flow on the returned route; `watch` lists the congestion points
    /// (typically the route's own link lanes) with their capacities.
    pub fn pace(
        &mut self,
        fluid: &mut FluidSim,
        route: &Route,
        line: f64,
        watch: Vec<(ResourceId, f64)>,
    ) -> (Route, PacedId) {
        let pacer = fluid.add_resource(format!("dcqcn-pacer{}", self.flows.len()), line);
        let id = PacedId(self.flows.len());
        self.flows.push(Paced {
            pacer,
            watch,
            line,
            rate: line,
            done: false,
        });
        let mut r = route.clone();
        r.push(pacer, 1.0);
        (r, id)
    }

    /// Mark a paced flow finished so the controller stops adjusting it.
    pub fn finish(&mut self, id: PacedId) {
        self.flows[id.0].done = true;
    }

    /// One control step: sample watched lanes, mark, adjust caps.
    /// Returns how many flows were marked.
    pub fn step(&mut self, fluid: &mut FluidSim) -> usize {
        // Sample loads first (cap changes would perturb the sample).
        let marked: Vec<bool> = self
            .flows
            .iter()
            .map(|f| {
                !f.done
                    && f.watch
                        .iter()
                        .any(|&(r, cap)| fluid.resource_load(r) > self.params.ecn_threshold * cap)
            })
            .collect();
        let mut n = 0;
        for (f, &m) in self.flows.iter_mut().zip(&marked) {
            if f.done {
                continue;
            }
            if m {
                f.rate = (f.rate * self.params.decrease).max(f.line * self.params.min_frac);
                n += 1;
            } else {
                f.rate = (f.rate + f.line * self.params.recover_frac).min(f.line);
            }
            fluid
                .set_rate_cap(f.pacer, f.rate)
                .expect("DCQCN rate stays positive and pacer registered");
        }
        n
    }

    /// Current cap of a paced flow, bytes/s.
    pub fn rate_of(&self, id: PacedId) -> f64 {
        self.flows[id.0].rate
    }

    /// The controller cadence.
    pub fn period(&self) -> SimDuration {
        self.params.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncongested_flow_keeps_line_rate() {
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 100.0);
        let mut cc = Dcqcn::new(DcqcnParams::default());
        let (route, id) = cc.pace(&mut fluid, &Route::unit([link]), 100.0, vec![(link, 100.0)]);
        let f = fluid.start_flow(1e6, &route);
        // A single flow saturates its own link — that *is* ≥ threshold, so
        // DCQCN will mark it: the classic single-flow sawtooth.
        let marked = cc.step(&mut fluid);
        assert_eq!(marked, 1);
        assert!(cc.rate_of(id) < 100.0);
        let _ = fluid.flow_rate(f);
    }

    #[test]
    fn congestion_halves_and_recovery_restores() {
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 100.0);
        let mut cc = Dcqcn::new(DcqcnParams::default());
        let (ra, a) = cc.pace(&mut fluid, &Route::unit([link]), 100.0, vec![(link, 100.0)]);
        let (rb, b) = cc.pace(&mut fluid, &Route::unit([link]), 100.0, vec![(link, 100.0)]);
        fluid.start_flow(1e9, &ra);
        fluid.start_flow(1e9, &rb);
        cc.step(&mut fluid); // both marked (link at 100%)
        assert!(cc.rate_of(a) <= 50.0);
        assert!(cc.rate_of(b) <= 50.0);
        // Two 50-cap flows still saturate the link, so DCQCN keeps cutting
        // until aggregate caps drop below the ECN threshold, then recovers
        // additively — the sawtooth. Verify both phases occur and that the
        // flows never regain line rate.
        let mut prev = cc.rate_of(a);
        let mut saw_decrease = false;
        let mut saw_recovery = false;
        for _ in 0..50 {
            cc.step(&mut fluid);
            let r = cc.rate_of(a);
            if r < prev {
                saw_decrease = true;
            }
            if r > prev {
                saw_recovery = true;
            }
            assert!(r < 100.0, "flow should never regain full line rate");
            prev = r;
        }
        assert!(saw_decrease && saw_recovery, "expected a sawtooth");
        let _ = b;
    }

    #[test]
    fn sawtooth_underutilizes_the_link() {
        // Run the control loop over a long transfer and measure achieved
        // utilization: DCQCN's oscillation keeps it below line rate.
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 100.0);
        let mut cc = Dcqcn::new(DcqcnParams::default());
        let (route, _) = cc.pace(&mut fluid, &Route::unit([link]), 100.0, vec![(link, 100.0)]);
        fluid.start_flow(50.0, &route);
        let mut t = fluid.now();
        loop {
            cc.step(&mut fluid);
            t += cc.period();
            match fluid.next_completion_time() {
                Some(tc) if tc <= t => {
                    fluid.advance_to_next_completion();
                    break;
                }
                Some(_) => fluid.advance_to(t),
                None => break,
            }
        }
        let util = fluid.stats(link).utilization();
        assert!(util < 0.95, "DCQCN should underutilize, got {util}");
        assert!(util > 0.2, "but not starve, got {util}");
    }

    #[test]
    fn finished_flows_are_ignored() {
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 100.0);
        let mut cc = Dcqcn::new(DcqcnParams::default());
        let (route, id) = cc.pace(&mut fluid, &Route::unit([link]), 100.0, vec![(link, 100.0)]);
        fluid.start_flow(10.0, &route);
        fluid.advance_to_next_completion();
        cc.finish(id);
        assert_eq!(cc.step(&mut fluid), 0);
    }
}
