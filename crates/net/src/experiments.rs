//! Canned congestion scenarios for the evaluation harness.
//!
//! * [`incast`] — the §VI-B3 situation: many storage services transmitting
//!   to one client. Receiver-side buffer pressure degrades goodput unless
//!   the request-to-send control limits concurrency.
//! * [`congestion_spread`] — the §VI-A2 observation: under incast-heavy
//!   storage traffic, adaptive routing drags congestion onto the links
//!   compute traffic is using, while static routing confines it.

use crate::build::NetResources;
use crate::lanes::{ServiceLevel, VlConfig};
use crate::rts::RtsController;
use ff_desim::{FlowId, FluidSim, SimDuration, SimTime, Summary};
use ff_topo::fattree::{attach_host, build_zone, FatTreeSpec};
use ff_topo::graph::{NodeId, NodeKind, Topology};
use ff_topo::routing::{RoutePolicy, Router};
use std::collections::HashMap;

/// Parameters of the incast experiment.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Number of concurrent senders.
    pub senders: usize,
    /// Bytes each sender transfers.
    pub bytes: f64,
    /// Request-to-send concurrency limit (`None` = no control).
    pub rts_limit: Option<usize>,
    /// Round-trip time of the permission handshake.
    pub rts_rtt: SimDuration,
    /// Receiver can absorb this many concurrent flows before buffer
    /// pressure sets in.
    pub buffer_flows: usize,
    /// Goodput degradation per excess flow: effective capacity =
    /// `cap / (1 + degradation × excess)` (retransmits/PFC pauses).
    pub degradation: f64,
}

impl IncastConfig {
    /// A representative heavy incast: 64 senders of 8 MiB each.
    pub fn heavy(rts_limit: Option<usize>) -> Self {
        IncastConfig {
            senders: 64,
            bytes: 8.0 * 1024.0 * 1024.0,
            rts_limit,
            rts_rtt: SimDuration::from_micros(10),
            buffer_flows: 8,
            degradation: 0.15,
        }
    }

    /// The zone-scale version: every storage server of a full Fire-Flyer
    /// zone (180 per zone, §III) answering the same client at once.
    pub fn paper_scale(rts_limit: Option<usize>) -> Self {
        IncastConfig {
            senders: 180,
            bytes: 32.0 * 1024.0 * 1024.0,
            ..Self::heavy(rts_limit)
        }
    }
}

/// Outcome of the incast experiment.
#[derive(Debug, Clone)]
pub struct IncastResult {
    /// Per-transfer end-to-end latency (request at t=0 → last byte).
    pub latency: Summary,
    /// Total bytes delivered / makespan.
    pub goodput_bps: f64,
    /// Completion time of the last transfer.
    pub makespan_s: f64,
}

/// Run the incast scenario on a small fat-tree.
pub fn incast(cfg: &IncastConfig) -> IncastResult {
    // Topology: enough leaves for senders + 1 client on the small test
    // fabric; a full radix-40 paper zone once the population outgrows it
    // (the small spec's 4 spines run out of ports past 12 leaves).
    let hosts = cfg.senders + 1;
    let spec = if hosts <= 96 {
        FatTreeSpec::small(hosts.div_ceil(8).max(2), 4, 8)
    } else {
        let zone = FatTreeSpec::paper_zone();
        assert!(hosts <= zone.endpoints(), "{hosts} hosts exceed one zone");
        zone
    };
    let mut topo = Topology::new();
    let mut zone = build_zone(&mut topo, &spec, 0);
    let client = topo.add_node(NodeKind::ComputeHost, "client", Some(0));
    attach_host(&mut topo, &mut zone, client, spec.link_capacity);
    let senders: Vec<NodeId> = (0..cfg.senders)
        .map(|i| {
            let h = topo.add_node(NodeKind::StorageHost, format!("stor{i}"), Some(0));
            attach_host(&mut topo, &mut zone, h, spec.link_capacity);
            h
        })
        .collect();

    let mut fluid = FluidSim::new();
    let net = NetResources::install(&mut fluid, &topo, VlConfig::shared());
    let router = Router::new(&topo, RoutePolicy::StaticByDestination);

    // The client's ingress lane (last hop) is where buffer pressure bites.
    let client_leaf = topo.access_switch(client);
    let last_link = topo
        .neighbors(client)
        .iter()
        .find(|&&(n, _)| n == client_leaf)
        .map(|&(_, l)| l)
        .expect("client uplink");
    let ingress = net.link_resource(&topo, last_link, client_leaf, ServiceLevel::Storage);
    let line = spec.link_capacity;

    let mut rts = RtsController::new(cfg.rts_limit.unwrap_or(usize::MAX).min(cfg.senders.max(1)));
    let no_rts = cfg.rts_limit.is_none();

    // Pending starts: (time, sender index).
    let mut pending: Vec<(SimTime, usize)> = Vec::new();
    let mut flows: HashMap<FlowId, usize> = HashMap::new();
    let mut latency = Summary::new();
    let mut concurrent = 0usize;

    let update_pressure = |fluid: &mut FluidSim, concurrent: usize| {
        let excess = concurrent.saturating_sub(cfg.buffer_flows) as f64;
        let eff = line / (1.0 + cfg.degradation * excess);
        fluid
            .set_rate_cap(ingress, eff.max(line * 1e-3))
            .expect("ingress cap stays positive");
    };

    // Issue initial requests at t=0.
    for i in 0..cfg.senders {
        if no_rts {
            pending.push((SimTime::ZERO, i));
        } else if rts.request(i).is_some() {
            pending.push((SimTime::ZERO + cfg.rts_rtt, i));
        }
    }
    pending.sort();
    let mut next_pending = 0usize;

    let start_flow = |fluid: &mut FluidSim,
                      flows: &mut HashMap<FlowId, usize>,
                      concurrent: &mut usize,
                      i: usize| {
        let path = router.route(senders[i], client, i as u64, &|_| 0.0);
        let route = net.path_route(&topo, senders[i], &path, ServiceLevel::Storage);
        let f = fluid.start_flow(cfg.bytes, &route);
        flows.insert(f, i);
        *concurrent += 1;
    };

    let mut makespan = SimTime::ZERO;
    loop {
        let next_start = pending.get(next_pending).map(|&(t, _)| t);
        let next_done = fluid.next_completion_time();
        match (next_start, next_done) {
            (None, None) => break,
            (Some(ts), nd) if nd.is_none() || ts <= nd.unwrap() => {
                fluid.advance_to(ts);
                let (_, i) = pending[next_pending];
                next_pending += 1;
                start_flow(&mut fluid, &mut flows, &mut concurrent, i);
                update_pressure(&mut fluid, concurrent);
            }
            _ => {
                let (t, done) = fluid.advance_to_next_completion().expect("flows active");
                makespan = t;
                for f in done {
                    flows.remove(&f).expect("tracked flow");
                    concurrent -= 1;
                    latency.add(t.as_secs_f64());
                    if !no_rts {
                        if let Some(next) = rts.complete() {
                            pending.push((t + cfg.rts_rtt, next));
                            pending[next_pending..].sort();
                        }
                    }
                }
                update_pressure(&mut fluid, concurrent);
            }
        }
    }
    let total_bytes = cfg.senders as f64 * cfg.bytes;
    IncastResult {
        latency,
        goodput_bps: total_bytes / makespan.as_secs_f64().max(1e-12),
        makespan_s: makespan.as_secs_f64(),
    }
}

/// Outcome of the congestion-spread experiment.
#[derive(Debug, Clone)]
pub struct SpreadResult {
    /// Achieved bandwidth of each long-running compute flow, bytes/s.
    pub compute_bw: Summary,
    /// Bandwidth of the slowest compute flow (the allreduce straggler).
    pub worst_compute_bw: f64,
    /// Fraction of leaf→spine links that carried storage traffic.
    pub links_touched_by_storage: f64,
}

/// Scale of the congestion-spread experiment: the fabric plus the host
/// populations attached to it.
#[derive(Debug, Clone, Copy)]
pub struct SpreadConfig {
    /// The leaf/spine fabric to build.
    pub spec: FatTreeSpec,
    /// Compute hosts, each running one long ring-neighbour flow.
    pub compute_hosts: usize,
    /// Storage hosts attached to the fabric (a couple act as hot servers).
    pub storage_hosts: usize,
    /// Concurrent storage flows per burst wave.
    pub storage_flows_per_wave: usize,
}

impl SpreadConfig {
    /// The original small fabric: 8 leaves × 4 spines, 32 compute + 16
    /// storage hosts. Cheap enough for debug-mode unit tests.
    pub fn small(storage_flows_per_wave: usize) -> Self {
        SpreadConfig {
            spec: FatTreeSpec::small(8, 4, 8),
            compute_hosts: 32,
            storage_hosts: 16,
            storage_flows_per_wave,
        }
    }

    /// One full Fire-Flyer zone (§III): a radix-40 leaf/spine fabric (40
    /// leaves × 20 spines, 800 down-ports) carrying 600 compute nodes and
    /// 180 storage servers — the scale at which the §VI-A2 congestion-spread
    /// observation was actually made. Hundreds of concurrent flows per
    /// recompute: only tractable with the incremental solver.
    pub fn paper_zone(storage_flows_per_wave: usize) -> Self {
        SpreadConfig {
            spec: FatTreeSpec::paper_zone(),
            compute_hosts: 600,
            storage_hosts: 180,
            storage_flows_per_wave,
        }
    }
}

/// Run the static-vs-adaptive routing comparison under storage incast on
/// the original small fabric ([`SpreadConfig::small`]).
pub fn congestion_spread(policy: RoutePolicy, storage_flows_per_wave: usize) -> SpreadResult {
    congestion_spread_with(policy, &SpreadConfig::small(storage_flows_per_wave))
}

/// Run the comparison at an arbitrary scale.
pub fn congestion_spread_with(policy: RoutePolicy, cfg: &SpreadConfig) -> SpreadResult {
    let spec = &cfg.spec;
    let mut topo = Topology::new();
    let mut zone = build_zone(&mut topo, spec, 0);
    let mut compute = Vec::new();
    for i in 0..cfg.compute_hosts {
        let h = topo.add_node(NodeKind::ComputeHost, format!("c{i}"), Some(0));
        attach_host(&mut topo, &mut zone, h, spec.link_capacity);
        compute.push(h);
    }
    let mut storage = Vec::new();
    for i in 0..cfg.storage_hosts {
        let h = topo.add_node(NodeKind::StorageHost, format!("s{i}"), Some(0));
        attach_host(&mut topo, &mut zone, h, spec.link_capacity);
        storage.push(h);
    }
    let mut fluid = FluidSim::new();
    let net = NetResources::install(&mut fluid, &topo, VlConfig::shared());
    let compute_router = Router::new(&topo, RoutePolicy::StaticByDestination);
    let storage_router = Router::new(&topo, policy);

    // Long-running compute flows: ring neighbours across leaves.
    let bytes = 1e9;
    let mut compute_flows: HashMap<FlowId, SimTime> = HashMap::new();
    for i in 0..compute.len() {
        let src = compute[i];
        let dst = compute[(i + 1) % compute.len()];
        let path = compute_router.route(src, dst, i as u64, &|_| 0.0);
        let route = net.path_route(&topo, src, &path, ServiceLevel::HfReduce);
        let f = fluid.start_flow(bytes, &route);
        compute_flows.insert(f, SimTime::ZERO);
    }

    // Storage burst waves: a couple of hot storage servers answer reads
    // from clients all over the fabric (the serve-side of incast), so
    // their leaf's uplinks are the contended resource and the *uplink
    // spine choice* — the routing policy — decides who they collide with.
    let mut storage_links: std::collections::HashSet<ff_topo::LinkId> =
        std::collections::HashSet::new();
    let mut storage_live: HashMap<FlowId, usize> = HashMap::new();
    let mut wave_key = 0u64;
    let start_wave = |fluid: &mut FluidSim,
                      storage_live: &mut HashMap<FlowId, usize>,
                      storage_links: &mut std::collections::HashSet<ff_topo::LinkId>,
                      wave_key: &mut u64| {
        for j in 0..cfg.storage_flows_per_wave {
            let src = storage[j % 2];
            let dst = compute[(*wave_key as usize + j * 7) % compute.len()];
            *wave_key += 1;
            let key = *wave_key;
            let path = match policy {
                RoutePolicy::Adaptive => {
                    // Rank candidates by live flow count on their lanes.
                    storage_router.route(src, dst, key, &|l| {
                        let link = topo.link(l);
                        let r = net.link_resource(&topo, l, link.a, ServiceLevel::Storage);
                        count_flows(fluid, r) as f64
                            + count_flows(
                                fluid,
                                net.link_resource(&topo, l, link.b, ServiceLevel::Storage),
                            ) as f64
                    })
                }
                _ => storage_router.route(src, dst, key, &|_| 0.0),
            };
            for &l in &path {
                let link = topo.link(l);
                if topo.kind(link.a).is_switch() && topo.kind(link.b).is_switch() {
                    storage_links.insert(l);
                }
            }
            let route = net.path_route(&topo, src, &path, ServiceLevel::Storage);
            let f = fluid.start_flow(64.0 * 1024.0 * 1024.0, &route);
            storage_live.insert(f, j);
        }
    };
    start_wave(
        &mut fluid,
        &mut storage_live,
        &mut storage_links,
        &mut wave_key,
    );

    let mut compute_bw = Summary::new();
    let mut worst = f64::INFINITY;
    while !compute_flows.is_empty() {
        let (t, done) = fluid.advance_to_next_completion().expect("flows active");
        let mut storage_done = 0;
        for f in done {
            if let Some(start) = compute_flows.remove(&f) {
                let bw = bytes / t.since(start).as_secs_f64().max(1e-12);
                compute_bw.add(bw);
                worst = worst.min(bw);
            } else if storage_live.remove(&f).is_some() {
                storage_done += 1;
            }
        }
        // Keep the incast pressure on while compute runs.
        if storage_done > 0
            && !compute_flows.is_empty()
            && storage_live.len() < cfg.storage_flows_per_wave
        {
            start_wave(
                &mut fluid,
                &mut storage_live,
                &mut storage_links,
                &mut wave_key,
            );
        }
    }
    // Count leaf→spine links: total = leaves × spines (one each way).
    let switch_links = spec.leaves * spec.spines;
    SpreadResult {
        compute_bw,
        worst_compute_bw: worst,
        links_touched_by_storage: storage_links.len() as f64 / switch_links as f64,
    }
}

fn count_flows(fluid: &FluidSim, r: ff_desim::ResourceId) -> usize {
    fluid.flows_through(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rts_restores_goodput_under_heavy_incast() {
        let without = incast(&IncastConfig::heavy(None));
        let with = incast(&IncastConfig::heavy(Some(8)));
        // 64 concurrent flows vs an 8-flow buffer: goodput collapses by
        // ~1/(1+0.15×56) ≈ 0.11 without control.
        assert!(
            with.goodput_bps > without.goodput_bps * 3.0,
            "with RTS {} vs without {}",
            with.goodput_bps,
            without.goodput_bps
        );
        // RTS goodput approaches line rate (25 GB/s minus handshake gaps).
        assert!(with.goodput_bps > 20e9, "{}", with.goodput_bps);
    }

    #[test]
    fn rts_latency_tradeoff_is_visible() {
        // The paper: "request-to-send control increases end-to-end IO
        // latency" — early transfers wait for grants, but the tail (and
        // hence makespan) improves dramatically.
        let without = incast(&IncastConfig::heavy(None));
        let with = incast(&IncastConfig::heavy(Some(8)));
        assert!(with.latency.min() > without.latency.min() * 0.0);
        assert!(with.makespan_s < without.makespan_s);
        // First completions under RTS are slower than a hypothetical
        // uncongested single transfer (grant queue), i.e. latency > pure
        // transfer time for most requests.
        let pure = IncastConfig::heavy(None).bytes / 25e9;
        assert!(with.latency.mean() > pure);
    }

    #[test]
    fn adaptive_routing_hurts_the_compute_straggler() {
        // §VI-A2: "enabling adaptive routing would lead to more severe
        // congestion spread" — under a storage burst, adaptive moves the
        // flows onto whichever links are momentarily quiet, which are
        // exactly the links the compute traffic needs; the slowest
        // compute flow (the allreduce pace-setter) suffers.
        let st = congestion_spread(RoutePolicy::StaticByDestination, 12);
        let ad = congestion_spread(RoutePolicy::Adaptive, 12);
        assert!(
            ad.worst_compute_bw < st.worst_compute_bw,
            "adaptive straggler {} should be slower than static {}",
            ad.worst_compute_bw,
            st.worst_compute_bw
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "zone-scale fabric (780 hosts, 600+ concurrent flows): run with --release"
    )]
    fn paper_zone_spread_holds_at_full_scale() {
        let st = congestion_spread_with(
            RoutePolicy::StaticByDestination,
            &SpreadConfig::paper_zone(48),
        );
        let ad = congestion_spread_with(RoutePolicy::Adaptive, &SpreadConfig::paper_zone(48));
        assert_eq!(st.compute_bw.count(), 600);
        assert_eq!(ad.compute_bw.count(), 600);
        // The §VI-A2 effect survives at the scale it was reported at: the
        // compute straggler is slower under adaptive routing.
        assert!(
            ad.worst_compute_bw < st.worst_compute_bw,
            "adaptive straggler {} should be slower than static {}",
            ad.worst_compute_bw,
            st.worst_compute_bw
        );
    }

    #[test]
    fn incast_without_control_is_worse_for_everyone() {
        let r = incast(&IncastConfig {
            senders: 32,
            bytes: 4.0 * 1024.0 * 1024.0,
            rts_limit: None,
            rts_rtt: SimDuration::from_micros(10),
            buffer_flows: 4,
            degradation: 0.25,
        });
        // Effective capacity ≈ 25e9/(1+0.25×28) = 3.1e9.
        assert!(r.goodput_bps < 5e9, "{}", r.goodput_bps);
    }
}
