//! Randomized property tests for the network layer: route/direction
//! correctness and lane-isolation invariants over randomized fat-trees
//! (seeded, reproducible).

use ff_desim::FluidSim;
use ff_net::{NetResources, ServiceLevel, VlConfig};
use ff_topo::fattree::{attach_host, build_zone, FatTreeSpec};
use ff_topo::graph::{NodeId, NodeKind, Topology};
use ff_topo::routing::{RoutePolicy, Router};
use ff_util::rng::ChaCha8Rng;

const CASES: usize = 48;

fn random_zone(rng: &mut ChaCha8Rng) -> (Topology, Vec<NodeId>) {
    let leaves = rng.gen_range(2usize..6);
    let spines = rng.gen_range(2usize..5);
    let down = rng.gen_range(2usize..6);
    let hosts = rng.gen_range(2usize..20);
    // Spines must have ports for every leaf: leaves ≤ radix.
    let leaves = leaves.min(spines + down);
    let spec = FatTreeSpec::small(leaves, spines, down);
    let mut topo = Topology::new();
    let mut zone = build_zone(&mut topo, &spec, 0);
    let n = hosts.min(leaves * down);
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = topo.add_node(NodeKind::ComputeHost, format!("h{i}"), Some(0));
            attach_host(&mut topo, &mut zone, h, 25e9);
            h
        })
        .collect();
    (topo, hosts)
}

/// Every routed path is connected: consecutive links share exactly the
/// node the walk is at, and the walk ends at the destination.
#[test]
fn routes_are_walkable() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4E01);
    for _ in 0..CASES {
        let (topo, hosts) = random_zone(&mut rng);
        if hosts.len() < 2 {
            continue;
        }
        let src = hosts[rng.gen_range(0..hosts.len())];
        let dst = hosts[rng.gen_range(0..hosts.len())];
        let key = rng.next_u64();
        for policy in [
            RoutePolicy::StaticByDestination,
            RoutePolicy::Ecmp,
            RoutePolicy::Adaptive,
        ] {
            let router = Router::new(&topo, policy);
            let path = router.route(src, dst, key, &|_| 0.0);
            let mut at = src;
            for &l in &path {
                let link = topo.link(l);
                assert!(link.a == at || link.b == at, "disconnected walk");
                at = if link.a == at { link.b } else { link.a };
            }
            assert_eq!(at, dst);
            if src == dst {
                assert!(path.is_empty());
            }
        }
    }
}

/// Converting a routed path into fluid resources picks the correct
/// directions: a flow on the route achieves full line rate when the
/// network is otherwise idle (a direction mix-up would double-load
/// some resource and halve the rate).
#[test]
fn path_route_directions_correct() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4E02);
    for _ in 0..CASES {
        let (topo, hosts) = random_zone(&mut rng);
        if hosts.len() < 2 {
            continue;
        }
        let src = hosts[rng.gen_range(0..hosts.len())];
        let dst = hosts[rng.gen_range(0..hosts.len())];
        if src == dst {
            continue;
        }
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, VlConfig::shared());
        let router = Router::new(&topo, RoutePolicy::StaticByDestination);
        let path = router.route(src, dst, 0, &|_| 0.0);
        let route = net.path_route(&topo, src, &path, ServiceLevel::Other);
        let f = fluid.start_flow(1e9, &route);
        let rate = fluid.flow_rate(f);
        assert!((rate - 25e9).abs() < 1.0, "rate {rate}");
        // And the reverse direction is independent: both at line rate.
        let rpath = router.route(dst, src, 0, &|_| 0.0);
        let rroute = net.path_route(&topo, dst, &rpath, ServiceLevel::Other);
        let g = fluid.start_flow(1e9, &rroute);
        // With destination-based static routing the reverse path may share
        // nothing or everything except endpoints; endpoints are per
        // direction, so both flows keep full rate unless they share a
        // directed spine hop (possible only if src/dst leaves coincide).
        let _ = fluid.flow_rate(g);
        assert!((fluid.flow_rate(f) - 25e9).abs() < 1e9);
    }
}

/// VL isolation invariant: whatever storm hits the Storage lane, an
/// HFReduce flow keeps at least its configured share of every link.
#[test]
fn isolation_floor_holds() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4E03);
    for _ in 0..CASES {
        let (topo, hosts) = random_zone(&mut rng);
        if hosts.len() < 2 {
            continue;
        }
        let storm = rng.gen_range(1usize..20);
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, VlConfig::isolated());
        let router = Router::new(&topo, RoutePolicy::StaticByDestination);
        let (src, dst) = (hosts[0], hosts[hosts.len() - 1]);
        let path = router.route(src, dst, 0, &|_| 0.0);
        let hf = fluid.start_flow(
            1e12,
            &net.path_route(&topo, src, &path, ServiceLevel::HfReduce),
        );
        for k in 0..storm {
            let p = router.route(src, dst, k as u64, &|_| 0.0);
            fluid.start_flow(1e12, &net.path_route(&topo, src, &p, ServiceLevel::Storage));
        }
        // HFReduce's lane share is 35% of 25 GB/s on every hop.
        let rate = fluid.flow_rate(hf);
        assert!(rate >= 0.35 * 25e9 * 0.999, "rate {rate}");
    }
}
