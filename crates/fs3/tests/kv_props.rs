//! Randomized property tests for the replicated KV store and the CRAQ
//! chain (seeded, reproducible).

use ff_3fs::chain::{Chain, ChainError};
use ff_3fs::kvstore::KvStore;
use ff_3fs::target::{ChunkId, Disk, StorageTarget};
use ff_util::bytes::Bytes;
use ff_util::rng::ChaCha8Rng;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    Cas(u8, Option<Vec<u8>>, Vec<u8>),
}

fn rand_val(rng: &mut ChaCha8Rng) -> Vec<u8> {
    (0..rng.gen_range(0usize..8))
        .map(|_| rng.next_u32() as u8)
        .collect()
}

fn rand_ops(rng: &mut ChaCha8Rng) -> Vec<Op> {
    (0..rng.gen_range(0usize..60))
        .map(|_| match rng.gen_range(0u32..3) {
            0 => Op::Put(rng.next_u32() as u8, rand_val(rng)),
            1 => Op::Delete(rng.next_u32() as u8),
            _ => {
                let expect = if rng.gen_bool(0.5) {
                    Some(rand_val(rng))
                } else {
                    None
                };
                Op::Cas(rng.next_u32() as u8, expect, rand_val(rng))
            }
        })
        .collect()
}

/// Sequential equivalence: the replicated sharded store behaves like a
/// plain map under any single-threaded op sequence.
#[test]
fn kv_matches_model() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4B01);
    for _ in 0..64 {
        let ops = rand_ops(&mut rng);
        let kv = KvStore::new(4, 3);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    kv.put(&[k], Bytes::from(v.clone()));
                    model.insert(vec![k], v);
                }
                Op::Delete(k) => {
                    let existed = kv.delete(&[k]);
                    assert_eq!(existed, model.remove(&vec![k]).is_some());
                }
                Op::Cas(k, expect, v) => {
                    let ok = kv.cas(&[k], expect.as_deref(), Bytes::from(v.clone()));
                    let model_matches =
                        model.get(&vec![k]).map(|x| x.as_slice()) == expect.as_deref();
                    assert_eq!(ok, model_matches);
                    if ok {
                        model.insert(vec![k], v);
                    }
                }
            }
        }
        // Final state identical, via point reads and a full scan.
        for (k, v) in &model {
            let got = kv.get(k);
            assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        assert_eq!(kv.len(), model.len());
        let scan = kv.scan_prefix(b"");
        assert_eq!(scan.len(), model.len());
        for ((sk, sv), (mk, mv)) in scan.iter().zip(model.iter()) {
            assert_eq!(sk, mk);
            assert_eq!(sv.as_ref(), mv.as_slice());
        }
    }
}

/// Chain writes/reads match a model map under arbitrary interleavings
/// of objects and replica choices; versions are monotone per object.
#[test]
fn chain_matches_model() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4B02);
    for _ in 0..48 {
        let writes: Vec<(u64, Vec<u8>)> = (0..rng.gen_range(1usize..50))
            .map(|_| {
                let data: Vec<u8> = (0..rng.gen_range(1usize..16))
                    .map(|_| rng.next_u32() as u8)
                    .collect();
                (rng.gen_range(0u64..8), data)
            })
            .collect();
        let replicas = rng.gen_range(1usize..4);
        let targets: Vec<_> = (0..replicas)
            .map(|i| StorageTarget::new(format!("t{i}"), Disk::new(1 << 20)))
            .collect();
        let chain = Chain::new(0, targets);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut versions: BTreeMap<u64, u64> = BTreeMap::new();
        for (idx, data) in writes {
            let id = ChunkId { ino: 1, idx };
            let v = chain.write(id, Bytes::from(data.clone())).unwrap();
            let prev = versions.insert(idx, v).unwrap_or(0);
            assert_eq!(v, prev + 1, "versions monotone");
            model.insert(idx, data);
        }
        for (idx, data) in &model {
            let id = ChunkId { ino: 1, idx: *idx };
            for r in 0..replicas {
                let got = chain.read_at(id, r).unwrap();
                assert_eq!(got.as_ref(), data.as_slice());
            }
        }
        // Unwritten objects are NotFound.
        for idx in 8..12 {
            assert_eq!(
                chain.read(ChunkId { ino: 1, idx }),
                Err(ChainError::NotFound)
            );
        }
    }
}

/// Concurrent independent-key writers never corrupt each other; the
/// end state is exactly the union of their writes.
#[test]
fn kv_concurrent_union() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4B03);
    for _ in 0..16 {
        let seed = rng.gen_range(0u8..100);
        let threads = rng.gen_range(2usize..6);
        let per = rng.gen_range(1usize..30);
        let kv = KvStore::new(8, 2);
        std::thread::scope(|s| {
            for t in 0..threads {
                let kv = &kv;
                s.spawn(move || {
                    for i in 0..per {
                        let key = [t as u8, i as u8];
                        kv.put(&key, Bytes::from(vec![seed, t as u8, i as u8]));
                    }
                });
            }
        });
        assert_eq!(kv.len(), threads * per);
        for t in 0..threads {
            for i in 0..per {
                let got = kv.get(&[t as u8, i as u8]).expect("present");
                assert_eq!(got.as_ref(), &[seed, t as u8, i as u8][..]);
            }
        }
    }
}
