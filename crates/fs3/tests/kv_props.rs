//! Property-based tests for the replicated KV store and the CRAQ chain.

use bytes::Bytes;
use ff_3fs::chain::{Chain, ChainError};
use ff_3fs::kvstore::KvStore;
use ff_3fs::target::{ChunkId, Disk, StorageTarget};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    Cas(u8, Option<Vec<u8>>, Vec<u8>),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let val = prop::collection::vec(any::<u8>(), 0..8);
    let op = prop_oneof![
        (any::<u8>(), val.clone()).prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), prop::option::of(val.clone()), val).prop_map(|(k, e, v)| Op::Cas(k, e, v)),
    ];
    prop::collection::vec(op, 0..60)
}

proptest! {
    /// Sequential equivalence: the replicated sharded store behaves like a
    /// plain map under any single-threaded op sequence.
    #[test]
    fn kv_matches_model(ops in ops()) {
        let kv = KvStore::new(4, 3);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    kv.put(&[k], Bytes::from(v.clone()));
                    model.insert(vec![k], v);
                }
                Op::Delete(k) => {
                    let existed = kv.delete(&[k]);
                    prop_assert_eq!(existed, model.remove(&vec![k]).is_some());
                }
                Op::Cas(k, expect, v) => {
                    let ok = kv.cas(&[k], expect.as_deref(), Bytes::from(v.clone()));
                    let model_matches = model.get(&vec![k]).map(|x| x.as_slice()) == expect.as_deref();
                    prop_assert_eq!(ok, model_matches);
                    if ok {
                        model.insert(vec![k], v);
                    }
                }
            }
        }
        // Final state identical, via point reads and a full scan.
        for (k, v) in &model {
            let got = kv.get(k);
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        prop_assert_eq!(kv.len(), model.len());
        let scan = kv.scan_prefix(b"");
        prop_assert_eq!(scan.len(), model.len());
        for ((sk, sv), (mk, mv)) in scan.iter().zip(model.iter()) {
            prop_assert_eq!(sk, mk);
            prop_assert_eq!(sv.as_ref(), mv.as_slice());
        }
    }

    /// Chain writes/reads match a model map under arbitrary interleavings
    /// of objects and replica choices; versions are monotone per object.
    #[test]
    fn chain_matches_model(writes in prop::collection::vec((0u64..8, prop::collection::vec(any::<u8>(), 1..16)), 1..50),
                           replicas in 1usize..4) {
        let targets: Vec<_> = (0..replicas)
            .map(|i| StorageTarget::new(format!("t{i}"), Disk::new(1 << 20)))
            .collect();
        let chain = Chain::new(0, targets);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut versions: BTreeMap<u64, u64> = BTreeMap::new();
        for (idx, data) in writes {
            let id = ChunkId { ino: 1, idx };
            let v = chain.write(id, Bytes::from(data.clone())).unwrap();
            let prev = versions.insert(idx, v).unwrap_or(0);
            prop_assert_eq!(v, prev + 1, "versions monotone");
            model.insert(idx, data);
        }
        for (idx, data) in &model {
            let id = ChunkId { ino: 1, idx: *idx };
            for r in 0..replicas {
                let got = chain.read_at(id, r).unwrap();
                prop_assert_eq!(got.as_ref(), data.as_slice());
            }
        }
        // Unwritten objects are NotFound.
        for idx in 8..12 {
            prop_assert_eq!(chain.read(ChunkId { ino: 1, idx }), Err(ChainError::NotFound));
        }
    }

    /// Concurrent independent-key writers never corrupt each other; the
    /// end state is exactly the union of their writes.
    #[test]
    fn kv_concurrent_union(seed in 0u8..100, threads in 2usize..6, per in 1usize..30) {
        let kv = KvStore::new(8, 2);
        std::thread::scope(|s| {
            for t in 0..threads {
                let kv = &kv;
                s.spawn(move || {
                    for i in 0..per {
                        let key = [t as u8, i as u8];
                        kv.put(&key, Bytes::from(vec![seed, t as u8, i as u8]));
                    }
                });
            }
        });
        prop_assert_eq!(kv.len(), threads * per);
        for t in 0..threads {
            for i in 0..per {
                let got = kv.get(&[t as u8, i as u8]).expect("present");
                prop_assert_eq!(got.as_ref(), &[seed, t as u8, i as u8][..]);
            }
        }
    }
}
