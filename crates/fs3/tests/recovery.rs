//! Failure-injection and recovery tests for the 3FS storage stack.

use ff_3fs::chain::{Chain, ChainError, ChainTable};
use ff_3fs::client::Fs3Client;
use ff_3fs::kvstore::KvStore;
use ff_3fs::meta::{MetaService, ROOT};
use ff_3fs::target::{ChunkId, Disk, StorageTarget};
use ff_util::bytes::Bytes;
use std::sync::Arc;

fn chunk(i: u64) -> ChunkId {
    ChunkId { ino: 5, idx: i }
}

#[test]
fn replica_resync_restores_redundancy() {
    let t: Vec<_> = (0..3)
        .map(|i| StorageTarget::new(format!("t{i}"), Disk::new(1 << 20)))
        .collect();
    let chain = Chain::new(0, t);
    for i in 0..20 {
        chain.write(chunk(i), Bytes::from(format!("v{i}"))).unwrap();
    }
    chain.remove_replica(1);
    assert_eq!(chain.replicas(), 2);
    // A fresh target joins and is brought up to date from the tail.
    let recruit = StorageTarget::new("recruit", Disk::new(1 << 20));
    chain.add_replica(recruit.clone()).unwrap();
    assert_eq!(chain.replicas(), 3);
    assert_eq!(recruit.object_count(), 20);
    // Reads from the new tail (the recruit) see every object.
    for i in 0..20 {
        assert_eq!(
            chain.read_at(chunk(i), 2).unwrap(),
            Bytes::from(format!("v{i}"))
        );
    }
    // And new writes replicate to it.
    chain.write(chunk(0), Bytes::from_static(b"new")).unwrap();
    assert_eq!(recruit.committed_version(chunk(0)), 2);
}

#[test]
fn add_replica_to_full_disk_fails_cleanly() {
    let chain = Chain::new(0, vec![StorageTarget::new("t0", Disk::new(1 << 20))]);
    chain.write(chunk(0), Bytes::from(vec![1u8; 1000])).unwrap();
    let tiny = StorageTarget::new("tiny", Disk::new(10));
    assert_eq!(chain.add_replica(tiny), Err(ChainError::DiskFull));
    assert_eq!(chain.replicas(), 1, "failed recruit must not join");
}

#[test]
fn delete_releases_space_on_every_replica() {
    let disks: Vec<_> = (0..2).map(|_| Disk::new(1 << 20)).collect();
    let t: Vec<_> = disks
        .iter()
        .enumerate()
        .map(|(i, d)| StorageTarget::new(format!("t{i}"), d.clone()))
        .collect();
    let chain = Chain::new(0, t);
    chain.write(chunk(0), Bytes::from(vec![0u8; 4096])).unwrap();
    assert_eq!(disks[0].used(), 4096);
    assert_eq!(disks[1].used(), 4096);
    chain.delete(chunk(0));
    assert_eq!(disks[0].used(), 0);
    assert_eq!(disks[1].used(), 0);
    assert_eq!(chain.read(chunk(0)), Err(ChainError::NotFound));
}

#[test]
fn client_remove_reclaims_chunks_and_metadata() {
    let disks: Vec<_> = (0..2).map(|_| Disk::new(4 << 20)).collect();
    let chains: Vec<_> = (0..4)
        .map(|c| {
            Chain::new(
                c,
                vec![
                    StorageTarget::new(format!("c{c}a"), disks[0].clone()),
                    StorageTarget::new(format!("c{c}b"), disks[1].clone()),
                ],
            )
        })
        .collect();
    let table = Arc::new(ChainTable::new(chains));
    let meta = MetaService::new(KvStore::new(4, 2), table.len());
    let client = Fs3Client::new(meta, table, 8);
    let f = client.meta().create(ROOT, "big.bin", 16 << 10, 4).unwrap();
    client.write_at(&f, 0, &vec![9u8; 256 << 10]).unwrap();
    assert!(disks[0].used() >= 256 << 10);
    client.remove(ROOT, "big.bin").unwrap();
    assert_eq!(disks[0].used(), 0, "chunks reclaimed");
    assert_eq!(disks[1].used(), 0);
    assert!(client.meta().resolve("/big.bin").is_err());
}

#[test]
fn reads_survive_rolling_replica_loss() {
    // Write at replication 3, lose two replicas one at a time; data stays
    // readable throughout (mirror redundancy, §VI-B2).
    let t: Vec<_> = (0..3)
        .map(|i| StorageTarget::new(format!("t{i}"), Disk::new(1 << 20)))
        .collect();
    let chain = Chain::new(0, t);
    chain
        .write(chunk(1), Bytes::from_static(b"precious"))
        .unwrap();
    chain.remove_replica(2); // tail dies
    assert_eq!(
        chain.read(chunk(1)).unwrap(),
        Bytes::from_static(b"precious")
    );
    chain.remove_replica(0); // then the head
    assert_eq!(chain.replicas(), 1);
    assert_eq!(
        chain.read(chunk(1)).unwrap(),
        Bytes::from_static(b"precious")
    );
}
