//! Seeded multi-threaded races between chain membership changes and
//! writes: replicas are removed and recruited (with a background,
//! bandwidth-bounded re-sync) while writers hammer the chain. Afterwards
//! every committed version must be identical on — and readable from —
//! every live replica.

use ff_3fs::chain::{Chain, ChainError};
use ff_3fs::resync::ResyncSession;
use ff_3fs::target::{ChunkId, Disk, StorageTarget};
use ff_util::bytes::Bytes;
use ff_util::rng::ChaCha8Rng;
use ff_util::sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const OBJECTS: u64 = 32;

fn chunk(i: u64) -> ChunkId {
    ChunkId { ino: 11, idx: i }
}

struct TargetPool {
    made: Mutex<Vec<Arc<StorageTarget>>>,
    next: AtomicUsize,
}

impl TargetPool {
    fn new() -> Self {
        TargetPool {
            made: Mutex::new(Vec::new()),
            next: AtomicUsize::new(0),
        }
    }

    fn fresh(&self) -> Arc<StorageTarget> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        let t = StorageTarget::new(format!("t{i}"), Disk::new(8 << 20));
        self.made.lock().push(t.clone());
        t
    }

    fn by_name(&self, name: &str) -> Arc<StorageTarget> {
        self.made
            .lock()
            .iter()
            .find(|t| t.name() == name)
            .expect("known target")
            .clone()
    }
}

fn run_seed(seed: u64) {
    let pool = TargetPool::new();
    let chain = Chain::new(0, (0..3).map(|_| pool.fresh()).collect());
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for w in 0..4u64 {
            let chain = &chain;
            let stop = &stop;
            s.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (w << 32));
                let mut iter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let obj = rng.gen_range(0u64..OBJECTS);
                    let data = Bytes::from(format!("w{w}i{iter}"));
                    iter += 1;
                    // Transient errors (a reconfiguration in flight) are
                    // retried, mirroring the client's retry loop.
                    loop {
                        let res = if rng.gen_bool(0.5) {
                            chain.write(chunk(obj), data.clone())
                        } else {
                            chain.update(chunk(obj), |_| data.clone())
                        };
                        match res {
                            Ok(_) => break,
                            Err(ChainError::Unavailable) | Err(ChainError::Reconfiguring) => {
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("writer failed: {e:?}"),
                        }
                    }
                }
            });
        }

        // The reconfigurer: shrink by one member, then recruit a fresh
        // target through a background re-sync racing the writers.
        let chain_rc = &chain;
        let stop_rc = &stop;
        let pool_rc = &pool;
        s.spawn(move || {
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E3779B9));
            for _ in 0..10 {
                if chain_rc.replicas() > 1 {
                    let idx = rng.gen_range(0usize..chain_rc.replicas());
                    chain_rc.remove_replica(idx);
                }
                std::thread::sleep(Duration::from_millis(1));
                let recruit = pool_rc.fresh();
                let mut session =
                    ResyncSession::begin(Arc::clone(chain_rc), recruit).expect("begin");
                loop {
                    let p = session.pump(2 << 10).expect("pump");
                    if p.done {
                        break;
                    }
                    std::thread::yield_now();
                }
                session.finish().expect("promote");
                std::thread::sleep(Duration::from_millis(1));
            }
            stop_rc.store(true, Ordering::Relaxed);
        });
    });

    // Quiesced: every committed version identical on — and readable from —
    // every live replica.
    let members: Vec<Arc<StorageTarget>> = chain
        .target_names()
        .iter()
        .map(|n| pool.by_name(n))
        .collect();
    assert!(!members.is_empty());
    for obj in 0..OBJECTS {
        let id = chunk(obj);
        let versions: Vec<u64> = members.iter().map(|t| t.committed_version(id)).collect();
        assert!(
            versions.windows(2).all(|w| w[0] == w[1]),
            "seed {seed} object {obj}: committed versions diverge across replicas: {versions:?}"
        );
        if versions[0] == 0 {
            continue; // never written
        }
        let reads: Vec<Bytes> = (0..members.len())
            .map(|r| {
                chain
                    .read_at(id, r)
                    .unwrap_or_else(|e| panic!("seed {seed} object {obj} replica {r}: {e:?}"))
            })
            .collect();
        assert!(
            reads.windows(2).all(|w| w[0] == w[1]),
            "seed {seed} object {obj}: replicas serve different data"
        );
    }
}

#[test]
fn reconfiguration_races_writes_seeded() {
    for seed in [1u64, 7, 42, 1337] {
        run_seed(seed);
    }
}
