//! CRAQ — Chain Replication with Apportioned Queries (§VI-B3).
//!
//! Writes enter at the head and propagate to the tail as *dirty* versions;
//! the tail's write commits, and commit notifications travel back so every
//! replica can discard superseded versions. Reads go to **any** replica:
//! a clean object is served locally; a dirty one costs a version query to
//! the tail (never a data transfer). Writes to one object are serialized
//! (the head's role in CRAQ); distinct objects proceed fully in parallel,
//! which is what spreads load over every SSD.

use crate::target::{ChunkId, LocalRead, StorageTarget};
use ff_obs::{Recorder, TrackId};
use ff_util::bytes::Bytes;
use ff_util::sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Observability sink for one chain (see [`Chain::attach_recorder`]).
struct ChainObs {
    rec: Arc<Recorder>,
    track: TrackId,
}

/// Errors from chain operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A replica's disk was full.
    DiskFull,
    /// The object does not exist (never written or fully truncated).
    NotFound,
    /// The chain has no replicas left.
    Empty,
}

/// A replication chain over an ordered set of storage targets.
///
/// ```
/// use ff_3fs::chain::Chain;
/// use ff_3fs::target::{ChunkId, Disk, StorageTarget};
/// use ff_util::bytes::Bytes;
///
/// let chain = Chain::new(0, vec![
///     StorageTarget::new("head", Disk::new(1 << 20)),
///     StorageTarget::new("tail", Disk::new(1 << 20)),
/// ]);
/// let id = ChunkId { ino: 1, idx: 0 };
/// chain.write(id, Bytes::from_static(b"hello")).unwrap();
/// // Apportioned read: either replica serves the committed data.
/// assert_eq!(chain.read_at(id, 0).unwrap(), Bytes::from_static(b"hello"));
/// assert_eq!(chain.read_at(id, 1).unwrap(), Bytes::from_static(b"hello"));
/// ```
pub struct Chain {
    id: usize,
    targets: RwLock<Vec<Arc<StorageTarget>>>,
    /// Per-object write serialization + last version (the head's role).
    heads: Mutex<HashMap<ChunkId, Arc<Mutex<u64>>>>,
    /// Round-robin read distribution.
    rr: AtomicUsize,
    obs: RwLock<Option<ChainObs>>,
}

impl Chain {
    /// A chain with the given replicas, head first.
    pub fn new(id: usize, targets: Vec<Arc<StorageTarget>>) -> Arc<Chain> {
        assert!(!targets.is_empty(), "chain needs at least one replica");
        Arc::new(Chain {
            id,
            targets: RwLock::new(targets),
            heads: Mutex::new(HashMap::new()),
            rr: AtomicUsize::new(0),
            obs: RwLock::new(None),
        })
    }

    /// Attach an observability recorder: every committed write/update
    /// becomes a span on `track`. Timestamps are the object's committed
    /// *version* (scaled to µs) — a logical clock that is deterministic
    /// even when distinct objects are written from racing threads, unlike
    /// arrival order.
    pub fn attach_recorder(&self, rec: &Arc<Recorder>, track: &str) {
        let id = rec.track(track);
        *self.obs.write() = Some(ChainObs {
            rec: Arc::clone(rec),
            track: id,
        });
    }

    fn note_write(&self, op: &str, id: ChunkId, ver: u64, len: usize) {
        if let Some(obs) = self.obs.read().as_ref() {
            let name = format!("{op} {}.{}", id.ino, id.idx);
            obs.rec.span(
                obs.track,
                &name,
                ver * 1000,
                (len as u64).max(1),
                len as f64,
            );
            obs.rec.counter_add("fs3/write_bytes", len as f64);
            obs.rec.observe("fs3/write_size", len as u64);
        }
    }

    /// Chain id within the chain table.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current replica count.
    pub fn replicas(&self) -> usize {
        self.targets.read().len()
    }

    fn object_lock(&self, id: ChunkId) -> Arc<Mutex<u64>> {
        self.heads.lock().entry(id).or_default().clone()
    }

    /// Write (replace) an object's content. Returns the committed version.
    pub fn write(&self, id: ChunkId, data: Bytes) -> Result<u64, ChainError> {
        let lock = self.object_lock(id);
        let mut last = lock.lock();
        let targets = self.targets.read().clone();
        if targets.is_empty() {
            return Err(ChainError::Empty);
        }
        let ver = *last + 1;
        // Forward pass: head → tail, dirty.
        for (i, t) in targets.iter().enumerate() {
            if !t.store_dirty(id, ver, data.clone()) {
                // Roll back the replicas already written.
                for t in &targets[..=i] {
                    t.abort(id, ver);
                }
                return Err(ChainError::DiskFull);
            }
        }
        // Tail commits; the notification propagates back toward the head.
        for t in targets.iter().rev() {
            t.commit(id, ver);
        }
        *last = ver;
        self.note_write("write", id, ver, data.len());
        Ok(ver)
    }

    /// Read-modify-write an object atomically: `f` receives the current
    /// committed data (None when absent) and returns the replacement. The
    /// per-object write lock is held across the read and the chain write,
    /// so concurrent partial updates cannot lose each other.
    pub fn update(
        &self,
        id: ChunkId,
        f: impl FnOnce(Option<Bytes>) -> Bytes,
    ) -> Result<u64, ChainError> {
        let lock = self.object_lock(id);
        let mut last = lock.lock();
        let targets = self.targets.read().clone();
        if targets.is_empty() {
            return Err(ChainError::Empty);
        }
        let current = match self.read_with_targets(id, 0, &targets) {
            Ok(d) => Some(d),
            Err(ChainError::NotFound) => None,
            Err(e) => return Err(e),
        };
        let data = f(current);
        let ver = *last + 1;
        for (i, t) in targets.iter().enumerate() {
            if !t.store_dirty(id, ver, data.clone()) {
                for t in &targets[..=i] {
                    t.abort(id, ver);
                }
                return Err(ChainError::DiskFull);
            }
        }
        for t in targets.iter().rev() {
            t.commit(id, ver);
        }
        *last = ver;
        self.note_write("update", id, ver, data.len());
        Ok(ver)
    }

    /// Apportioned read from any replica.
    pub fn read(&self, id: ChunkId) -> Result<Bytes, ChainError> {
        let targets = self.targets.read().clone();
        if targets.is_empty() {
            return Err(ChainError::Empty);
        }
        let pick = self.rr.fetch_add(1, Ordering::Relaxed) % targets.len();
        self.read_at(id, pick)
    }

    /// Apportioned read from a specific replica index (tests and load
    /// placement).
    pub fn read_at(&self, id: ChunkId, replica: usize) -> Result<Bytes, ChainError> {
        let targets = self.targets.read().clone();
        self.read_with_targets(id, replica, &targets)
    }

    /// The apportioned-read protocol against a fixed replica snapshot.
    /// Retries as a loop (not recursion): a sustained write storm can make
    /// a replica repeatedly observe dirty-with-pruned-committed state, and
    /// each retry must re-read fresh local state.
    fn read_with_targets(
        &self,
        id: ChunkId,
        replica: usize,
        targets: &[Arc<StorageTarget>],
    ) -> Result<Bytes, ChainError> {
        if targets.is_empty() {
            return Err(ChainError::Empty);
        }
        let t = &targets[replica % targets.len()];
        let tail = targets.last().expect("non-empty");
        loop {
            match t.read_local(id) {
                LocalRead::Clean(d) => return Ok(d),
                LocalRead::Missing => return Err(ChainError::NotFound),
                LocalRead::Dirty(versions) => {
                    // Ask the tail which version is committed. If the
                    // in-flight write hasn't committed yet, wait for it
                    // (CRAQ blocks the read until the tail commits).
                    let mut committed = tail.committed_version(id);
                    let mut spins = 0u32;
                    while committed == 0 {
                        std::thread::yield_now();
                        committed = tail.committed_version(id);
                        spins += 1;
                        assert!(spins < 10_000_000, "commit never arrived");
                    }
                    // Serve the committed version if retained; otherwise a
                    // newer commit pruned it — loop and re-read fresh state.
                    if let Some(d) = versions.get(&committed) {
                        return Ok(d.clone());
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Drop a failed replica (manager-driven reconfiguration). The chain
    /// keeps serving with the survivors.
    pub fn remove_replica(&self, index: usize) {
        let mut targets = self.targets.write();
        assert!(index < targets.len());
        targets.remove(index);
    }

    /// Restore redundancy: append a fresh replica as the new tail after
    /// copying every committed object from the current tail — the
    /// recovery step that follows a [`remove_replica`](Self::remove_replica).
    /// New writes are blocked for the duration (the configuration epoch
    /// change); reads keep flowing. The cluster manager must drain writes
    /// already in flight before invoking this (as real reconfiguration
    /// protocols do) — a write racing the copy could leave the recruit one
    /// version behind on that object.
    pub fn add_replica(&self, recruit: Arc<StorageTarget>) -> Result<(), ChainError> {
        let mut targets = self.targets.write();
        let tail = targets.last().ok_or(ChainError::Empty)?.clone();
        for (id, version, data) in tail.committed_objects() {
            if !recruit.store_dirty(id, version, data) {
                return Err(ChainError::DiskFull);
            }
            recruit.commit(id, version);
        }
        targets.push(recruit);
        Ok(())
    }

    /// Delete an object from every replica (file unlink / truncation).
    pub fn delete(&self, id: ChunkId) {
        let lock = self.object_lock(id);
        let _guard = lock.lock();
        for t in self.targets.read().iter() {
            t.delete(id);
        }
    }

    /// The replica targets (diagnostics).
    pub fn target_names(&self) -> Vec<String> {
        self.targets
            .read()
            .iter()
            .map(|t| t.name().to_string())
            .collect()
    }
}

/// The ordered set of chains files stripe over (§VI-B3: "a chain table
/// contains an ordered set of chains ... the file chunks are assigned to
/// the next k chains starting at the offset").
pub struct ChainTable {
    chains: Vec<Arc<Chain>>,
}

impl ChainTable {
    /// Wrap an ordered chain set.
    pub fn new(chains: Vec<Arc<Chain>>) -> Self {
        assert!(!chains.is_empty());
        ChainTable { chains }
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True when the table is empty (never: `new` requires chains).
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// The chain storing chunk `chunk_idx` of a file placed at
    /// `(offset, stripe k)`.
    pub fn chain_for(&self, offset: usize, stripe: usize, chunk_idx: u64) -> &Arc<Chain> {
        let stripe = stripe.max(1);
        let slot = offset + (chunk_idx as usize % stripe);
        &self.chains[slot % self.chains.len()]
    }

    /// All chains.
    pub fn chains(&self) -> &[Arc<Chain>] {
        &self.chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Disk;

    fn chunk(i: u64) -> ChunkId {
        ChunkId { ino: 7, idx: i }
    }

    fn test_chain(replicas: usize) -> (Arc<Chain>, Vec<Arc<StorageTarget>>) {
        let targets: Vec<_> = (0..replicas)
            .map(|i| StorageTarget::new(format!("t{i}"), Disk::new(1 << 20)))
            .collect();
        (Chain::new(0, targets.clone()), targets)
    }

    #[test]
    fn write_replicates_to_all() {
        let (chain, targets) = test_chain(3);
        chain.write(chunk(0), Bytes::from_static(b"hello")).unwrap();
        for t in &targets {
            assert_eq!(t.committed_version(chunk(0)), 1);
        }
        // Read from every replica returns the data.
        for r in 0..3 {
            assert_eq!(
                chain.read_at(chunk(0), r).unwrap(),
                Bytes::from_static(b"hello")
            );
        }
    }

    #[test]
    fn versions_increment() {
        let (chain, _) = test_chain(2);
        assert_eq!(chain.write(chunk(0), Bytes::from_static(b"a")).unwrap(), 1);
        assert_eq!(chain.write(chunk(0), Bytes::from_static(b"b")).unwrap(), 2);
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"b"));
    }

    #[test]
    fn missing_object_errors() {
        let (chain, _) = test_chain(2);
        assert_eq!(chain.read(chunk(42)), Err(ChainError::NotFound));
    }

    #[test]
    fn disk_full_rolls_back() {
        let targets = vec![
            StorageTarget::new("big", Disk::new(1 << 20)),
            StorageTarget::new("small", Disk::new(10)),
        ];
        let chain = Chain::new(0, targets.clone());
        let err = chain.write(chunk(0), Bytes::from(vec![0u8; 100]));
        assert_eq!(err, Err(ChainError::DiskFull));
        // The head's partial dirty write was rolled back.
        assert_eq!(targets[0].newest_version(chunk(0)), 0);
        assert_eq!(targets[0].object_count(), 0);
        assert_eq!(chain.read(chunk(0)), Err(ChainError::NotFound));
    }

    #[test]
    fn removing_a_replica_keeps_data_available() {
        let (chain, _) = test_chain(3);
        chain.write(chunk(0), Bytes::from_static(b"safe")).unwrap();
        chain.remove_replica(0); // head dies
        assert_eq!(chain.replicas(), 2);
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"safe"));
        // Writes continue on the survivors.
        chain.write(chunk(0), Bytes::from_static(b"more")).unwrap();
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"more"));
    }

    #[test]
    fn concurrent_writers_distinct_objects() {
        let (chain, _) = test_chain(3);
        std::thread::scope(|s| {
            for w in 0..8u64 {
                let chain = &chain;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let data = Bytes::from(format!("w{w}i{i}"));
                        chain.write(chunk(w * 1000 + i), data).unwrap();
                    }
                });
            }
        });
        for w in 0..8u64 {
            for i in 0..50u64 {
                assert_eq!(
                    chain.read(chunk(w * 1000 + i)).unwrap(),
                    Bytes::from(format!("w{w}i{i}"))
                );
            }
        }
    }

    #[test]
    fn concurrent_writers_same_object_serialize() {
        let (chain, _) = test_chain(3);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let chain = &chain;
                s.spawn(move || {
                    for _ in 0..100 {
                        chain.write(chunk(0), Bytes::from_static(b"x")).unwrap();
                    }
                });
            }
        });
        // 400 writes serialized: final version is 400.
        let (chain2, _) = (chain, ());
        assert_eq!(
            chain2.write(chunk(0), Bytes::from_static(b"y")).unwrap(),
            401
        );
    }

    #[test]
    fn readers_never_see_torn_or_rolled_back_data() {
        // Writers cycle an object between two valid values; concurrent
        // readers must always observe one of them in full.
        let (chain, _) = test_chain(3);
        chain.write(chunk(0), Bytes::from(vec![b'A'; 512])).unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let chain_w = &chain;
            let stop_ref = &stop;
            s.spawn(move || {
                for i in 0..300 {
                    let byte = if i % 2 == 0 { b'B' } else { b'A' };
                    chain_w
                        .write(chunk(0), Bytes::from(vec![byte; 512]))
                        .unwrap();
                }
                stop_ref.store(true, std::sync::atomic::Ordering::Relaxed);
            });
            for _ in 0..3 {
                let chain_r = &chain;
                let stop_ref = &stop;
                s.spawn(move || {
                    // Read at least once even if the writer already won
                    // the race to finish.
                    let mut reads = 0u64;
                    loop {
                        let d = chain_r.read(chunk(0)).unwrap();
                        assert_eq!(d.len(), 512);
                        assert!(d.iter().all(|&b| b == d[0]), "torn read");
                        reads += 1;
                        if stop_ref.load(std::sync::atomic::Ordering::Relaxed) || reads > 100_000 {
                            break;
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn chain_table_striping() {
        let chains: Vec<_> = (0..6)
            .map(|i| Chain::new(i, vec![StorageTarget::new(format!("x{i}"), Disk::new(100))]))
            .collect();
        let table = ChainTable::new(chains);
        // offset 2, stripe 3: chunks map to chains 2,3,4,2,3,4,...
        let ids: Vec<usize> = (0..6).map(|i| table.chain_for(2, 3, i).id()).collect();
        assert_eq!(ids, vec![2, 3, 4, 2, 3, 4]);
        // Wraps around the table.
        assert_eq!(table.chain_for(5, 3, 1).id(), 0);
    }
}
