//! CRAQ — Chain Replication with Apportioned Queries (§VI-B3).
//!
//! Writes enter at the head and propagate to the tail as *dirty* versions;
//! the tail's write commits, and commit notifications travel back so every
//! replica can discard superseded versions. Reads go to **any** replica:
//! a clean object is served locally; a dirty one costs a version query to
//! the tail (never a data transfer). Writes to one object are serialized
//! (the head's role in CRAQ); distinct objects proceed fully in parallel,
//! which is what spreads load over every SSD.
//!
//! Membership is dynamic: a failed replica is dropped by
//! [`Chain::remove_dead`] (survivors reconcile dirty versions against the
//! new tail and keep serving degraded), and redundancy is restored by
//! recruiting a spare through a background [`ResyncSession`] — writes
//! during the re-sync land on both the old members and the recruit, and
//! the recruit becomes a full member only once every committed object has
//! been copied.
//!
//! [`ResyncSession`]: crate::resync::ResyncSession

use crate::resync::ResyncSession;
use crate::target::{ChunkId, LocalRead, StorageTarget, StoreOutcome};
use ff_obs::{Recorder, TrackId};
use ff_util::bytes::Bytes;
use ff_util::sync::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Observability sink for one chain (see [`Chain::attach_recorder`]).
struct ChainObs {
    rec: Arc<Recorder>,
    track: TrackId,
}

/// Errors from chain operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A replica's disk was full.
    DiskFull,
    /// The object does not exist (never written or fully truncated).
    NotFound,
    /// The chain has no replicas left.
    Empty,
    /// A member has failed and the chain cannot serve until it is
    /// reconfigured; retry after the manager repairs the chain.
    Unavailable,
    /// A membership change is in progress; retry shortly.
    Reconfiguring,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::DiskFull => write!(f, "replica disk full"),
            ChainError::NotFound => write!(f, "object not found"),
            ChainError::Empty => write!(f, "chain has no replicas"),
            ChainError::Unavailable => write!(f, "chain member failed; awaiting reconfiguration"),
            ChainError::Reconfiguring => write!(f, "chain membership change in progress"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<ChainError> for ff_util::FfError {
    fn from(e: ChainError) -> Self {
        ff_util::FfError::with_source(ff_util::FfKind::Storage, e.to_string(), e)
    }
}

/// The chain's membership: ordered full members plus at most one recruit
/// being re-synced in the background.
struct Members {
    /// Full members, head first. The last one is the tail (commit
    /// authority and dirty-read resolver).
    active: Vec<Arc<StorageTarget>>,
    /// A recruit receiving a background re-sync. It takes every new write
    /// (dual-landing) but serves no reads and holds no commit authority
    /// until promoted.
    joining: Option<Arc<StorageTarget>>,
    /// Configuration epoch; bumped on every membership change.
    epoch: u64,
    /// Set while the manager performs membership surgery: writers back
    /// off with [`ChainError::Reconfiguring`] instead of piling onto the
    /// membership lock.
    reconfiguring: bool,
}

/// A replication chain over an ordered set of storage targets.
///
/// ```
/// use ff_3fs::chain::Chain;
/// use ff_3fs::target::{ChunkId, Disk, StorageTarget};
/// use ff_util::bytes::Bytes;
///
/// let chain = Chain::new(0, vec![
///     StorageTarget::new("head", Disk::new(1 << 20)),
///     StorageTarget::new("tail", Disk::new(1 << 20)),
/// ]);
/// let id = ChunkId { ino: 1, idx: 0 };
/// chain.write(id, Bytes::from_static(b"hello")).unwrap();
/// // Apportioned read: either replica serves the committed data.
/// assert_eq!(chain.read_at(id, 0).unwrap(), Bytes::from_static(b"hello"));
/// assert_eq!(chain.read_at(id, 1).unwrap(), Bytes::from_static(b"hello"));
/// ```
pub struct Chain {
    id: usize,
    members: RwLock<Members>,
    /// Per-object write serialization + last version (the head's role).
    heads: Mutex<HashMap<ChunkId, Arc<Mutex<u64>>>>,
    /// Round-robin read distribution.
    rr: AtomicUsize,
    obs: RwLock<Option<ChainObs>>,
}

impl Chain {
    /// A chain with the given replicas, head first.
    pub fn new(id: usize, targets: Vec<Arc<StorageTarget>>) -> Arc<Chain> {
        assert!(!targets.is_empty(), "chain needs at least one replica");
        Arc::new(Chain {
            id,
            members: RwLock::new(Members {
                active: targets,
                joining: None,
                epoch: 0,
                reconfiguring: false,
            }),
            heads: Mutex::new(HashMap::new()),
            rr: AtomicUsize::new(0),
            obs: RwLock::new(None),
        })
    }

    /// Attach an observability recorder: every committed write/update
    /// becomes a span on `track`. Timestamps are the object's committed
    /// *version* (scaled to µs) — a logical clock that is deterministic
    /// even when distinct objects are written from racing threads, unlike
    /// arrival order.
    pub fn attach_recorder(&self, rec: &Arc<Recorder>, track: &str) {
        let id = rec.track(track);
        *self.obs.write() = Some(ChainObs {
            rec: Arc::clone(rec),
            track: id,
        });
    }

    fn note_write(&self, op: &str, id: ChunkId, ver: u64, len: usize) {
        if let Some(obs) = self.obs.read().as_ref() {
            let name = format!("{op} {}.{}", id.ino, id.idx);
            obs.rec.span(
                obs.track,
                &name,
                ver * 1000,
                (len as u64).max(1),
                len as f64,
            );
            obs.rec.counter_add("fs3/write_bytes", len as f64);
            obs.rec.observe("fs3/write_size", len as u64);
        }
    }

    /// Chain id within the chain table.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current full-member count (a joining recruit is not counted).
    pub fn replicas(&self) -> usize {
        self.members.read().active.len()
    }

    /// Configuration epoch: bumped on every membership change.
    pub fn epoch(&self) -> u64 {
        self.members.read().epoch
    }

    /// Block or unblock writers with [`ChainError::Reconfiguring`] while
    /// the manager performs membership surgery.
    pub fn set_reconfiguring(&self, on: bool) {
        self.members.write().reconfiguring = on;
    }

    pub(crate) fn object_lock(&self, id: ChunkId) -> Arc<Mutex<u64>> {
        self.heads.lock().entry(id).or_default().clone()
    }

    /// Forward pass (head → tail → recruit, dirty) then commit pass in
    /// reverse. A dead member rolls the write back and reports
    /// `Unavailable` — the write takes effect on no replica until the
    /// chain is reconfigured.
    fn replicate(
        &self,
        m: &Members,
        id: ChunkId,
        ver: u64,
        data: &Bytes,
    ) -> Result<(), ChainError> {
        let mut stored: Vec<&Arc<StorageTarget>> = Vec::with_capacity(m.active.len() + 1);
        for t in m.active.iter().chain(m.joining.iter()) {
            match t.store_dirty(id, ver, data.clone()) {
                StoreOutcome::Stored => stored.push(t),
                StoreOutcome::DiskFull => {
                    for s in &stored {
                        s.abort(id, ver);
                    }
                    return Err(ChainError::DiskFull);
                }
                StoreOutcome::Dead => {
                    for s in &stored {
                        s.abort(id, ver);
                    }
                    return Err(ChainError::Unavailable);
                }
            }
        }
        // Tail commits; the notification propagates back toward the head
        // (the recruit sits past the tail in the forward route).
        for t in m.joining.iter().chain(m.active.iter().rev()) {
            t.commit(id, ver);
        }
        Ok(())
    }

    /// Write (replace) an object's content. Returns the committed version.
    pub fn write(&self, id: ChunkId, data: Bytes) -> Result<u64, ChainError> {
        let lock = self.object_lock(id);
        let mut last = lock.lock();
        // Hold the membership read guard across the whole forward + commit
        // pass: reconfiguration takes the write guard, so membership
        // changes linearize against in-flight writes instead of racing
        // them.
        let m = self.members.read();
        if m.reconfiguring {
            return Err(ChainError::Reconfiguring);
        }
        if m.active.is_empty() {
            return Err(ChainError::Empty);
        }
        let ver = *last + 1;
        self.replicate(&m, id, ver, &data)?;
        *last = ver;
        self.note_write("write", id, ver, data.len());
        Ok(ver)
    }

    /// Read-modify-write an object atomically: `f` receives the current
    /// committed data (None when absent) and returns the replacement. The
    /// per-object write lock is held across the read and the chain write,
    /// so concurrent partial updates cannot lose each other.
    pub fn update(
        &self,
        id: ChunkId,
        f: impl FnOnce(Option<Bytes>) -> Bytes,
    ) -> Result<u64, ChainError> {
        let lock = self.object_lock(id);
        let mut last = lock.lock();
        let m = self.members.read();
        if m.reconfiguring {
            return Err(ChainError::Reconfiguring);
        }
        if m.active.is_empty() {
            return Err(ChainError::Empty);
        }
        let alive: Vec<Arc<StorageTarget>> =
            m.active.iter().filter(|t| t.is_alive()).cloned().collect();
        if alive.is_empty() {
            return Err(ChainError::Unavailable);
        }
        let current = match self.read_with_targets(id, 0, &alive) {
            Ok(d) => Some(d),
            Err(ChainError::NotFound) => None,
            Err(e) => return Err(e),
        };
        let data = f(current);
        let ver = *last + 1;
        self.replicate(&m, id, ver, &data)?;
        *last = ver;
        self.note_write("update", id, ver, data.len());
        Ok(ver)
    }

    /// Snapshot of the replicas eligible to serve reads: live full
    /// members only (a joining recruit never serves reads — it may still
    /// be missing objects).
    fn read_snapshot(&self) -> Result<Vec<Arc<StorageTarget>>, ChainError> {
        let m = self.members.read();
        if m.active.is_empty() {
            return Err(ChainError::Empty);
        }
        let alive: Vec<Arc<StorageTarget>> =
            m.active.iter().filter(|t| t.is_alive()).cloned().collect();
        if alive.is_empty() {
            return Err(ChainError::Unavailable);
        }
        Ok(alive)
    }

    /// Apportioned read from any live replica.
    pub fn read(&self, id: ChunkId) -> Result<Bytes, ChainError> {
        let targets = self.read_snapshot()?;
        let pick = self.rr.fetch_add(1, Ordering::Relaxed) % targets.len();
        self.read_with_targets(id, pick, &targets)
    }

    /// Apportioned read from a specific replica index (tests and load
    /// placement). The index counts live replicas only.
    pub fn read_at(&self, id: ChunkId, replica: usize) -> Result<Bytes, ChainError> {
        let targets = self.read_snapshot()?;
        self.read_with_targets(id, replica, &targets)
    }

    /// The apportioned-read protocol against a fixed replica snapshot.
    /// Retries as a loop (not recursion): a sustained write storm can make
    /// a replica repeatedly observe dirty-with-pruned-committed state, and
    /// each retry must re-read fresh local state.
    fn read_with_targets(
        &self,
        id: ChunkId,
        replica: usize,
        targets: &[Arc<StorageTarget>],
    ) -> Result<Bytes, ChainError> {
        if targets.is_empty() {
            return Err(ChainError::Empty);
        }
        let t = &targets[replica % targets.len()];
        let tail = targets.last().expect("non-empty");
        loop {
            match t.read_local(id) {
                LocalRead::Clean(d) => return Ok(d),
                LocalRead::Missing => return Err(ChainError::NotFound),
                LocalRead::Dirty(versions) => {
                    // Ask the tail which version is committed. If the
                    // in-flight write hasn't committed yet, wait for it
                    // (CRAQ blocks the read until the tail commits).
                    let mut committed = tail.committed_version(id);
                    let mut spins = 0u32;
                    while committed == 0 {
                        std::thread::yield_now();
                        committed = tail.committed_version(id);
                        spins += 1;
                        assert!(spins < 10_000_000, "commit never arrived");
                    }
                    // Serve the committed version if retained; otherwise a
                    // newer commit pruned it — loop and re-read fresh state.
                    if let Some(d) = versions.get(&committed) {
                        return Ok(d.clone());
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Drop a failed replica by index (manager-driven reconfiguration).
    /// The chain keeps serving with the survivors. Survivors reconcile
    /// dirty versions against the new tail (see [`remove_dead`]).
    ///
    /// [`remove_dead`]: Self::remove_dead
    pub fn remove_replica(&self, index: usize) {
        let mut m = self.members.write();
        assert!(index < m.active.len());
        m.active.remove(index);
        m.epoch += 1;
        Self::reconcile_members(&mut m);
    }

    /// Drop every dead member (failed target detection → reconfiguration).
    /// Returns the names of the members removed. Survivors reconcile their
    /// version state against the new tail: for each object, the tail's
    /// newest version becomes committed everywhere (anything the tail
    /// stored had reached every upstream member), and strictly newer
    /// in-flight versions are aborted (they can no longer commit).
    pub fn remove_dead(&self) -> Vec<String> {
        let mut m = self.members.write();
        let mut removed: Vec<String> = Vec::new();
        m.active.retain(|t| {
            let keep = t.is_alive();
            if !keep {
                removed.push(t.name().to_string());
            }
            keep
        });
        if let Some(j) = &m.joining {
            if !j.is_alive() {
                removed.push(j.name().to_string());
                m.joining = None;
            }
        }
        if removed.is_empty() {
            return removed;
        }
        m.epoch += 1;
        Self::reconcile_members(&mut m);
        removed
    }

    /// The membership-change reconciliation rule, applied under the
    /// membership write guard (no write is in flight).
    fn reconcile_members(m: &mut Members) {
        let Some(tail) = m.active.last().cloned() else {
            return;
        };
        let mut ids: BTreeSet<ChunkId> = BTreeSet::new();
        for t in m.active.iter().chain(m.joining.iter()) {
            ids.extend(t.object_ids());
        }
        for id in ids {
            let keep = tail.newest_version(id);
            for t in m.active.iter().chain(m.joining.iter()) {
                t.reconcile(id, keep);
            }
        }
    }

    /// Start recruiting `recruit`: it becomes the joining member (every
    /// new write dual-lands on it) and the returned work-list is the set
    /// of objects the re-sync session must copy. Fails with
    /// `Reconfiguring` when a recruit is already joining.
    pub(crate) fn begin_recruit(
        &self,
        recruit: Arc<StorageTarget>,
    ) -> Result<Vec<ChunkId>, ChainError> {
        let mut m = self.members.write();
        if m.joining.is_some() {
            return Err(ChainError::Reconfiguring);
        }
        if !recruit.is_alive() {
            return Err(ChainError::Unavailable);
        }
        let tail = m.active.last().ok_or(ChainError::Empty)?;
        if !tail.is_alive() {
            return Err(ChainError::Unavailable);
        }
        let pending = tail.object_ids();
        m.joining = Some(recruit);
        m.epoch += 1;
        Ok(pending)
    }

    /// The replica a re-sync session copies from: the live tail. Verifies
    /// the session is still current (`recruit` is still the joining
    /// member) — a concurrent reconfiguration invalidates the session.
    pub(crate) fn resync_source(
        &self,
        recruit: &Arc<StorageTarget>,
    ) -> Result<Arc<StorageTarget>, ChainError> {
        let m = self.members.read();
        match &m.joining {
            Some(j) if Arc::ptr_eq(j, recruit) => {}
            _ => return Err(ChainError::Reconfiguring),
        }
        if !recruit.is_alive() {
            return Err(ChainError::Unavailable);
        }
        m.active
            .iter()
            .rev()
            .find(|t| t.is_alive())
            .cloned()
            .ok_or(ChainError::Unavailable)
    }

    /// Promote the joining recruit to a full member (the re-sync session
    /// finished copying every committed object).
    pub(crate) fn promote_joining(&self, recruit: &Arc<StorageTarget>) -> Result<(), ChainError> {
        let mut m = self.members.write();
        match m.joining.take() {
            Some(j) if Arc::ptr_eq(&j, recruit) => {
                m.active.push(j);
                m.epoch += 1;
                Ok(())
            }
            other => {
                m.joining = other;
                Err(ChainError::Reconfiguring)
            }
        }
    }

    /// Drop the joining recruit without promoting it (re-sync aborted).
    pub(crate) fn abort_joining(&self) {
        let mut m = self.members.write();
        if m.joining.take().is_some() {
            m.epoch += 1;
        }
    }

    /// Restore redundancy synchronously: recruit a fresh replica as the
    /// new tail, copying every committed object in one foreground re-sync
    /// (the background-paced equivalent is [`ResyncSession`]). On failure
    /// (recruit disk full or a member death mid-copy) the recruit is
    /// wiped and does not join; membership is unchanged.
    pub fn add_replica(self: &Arc<Self>, recruit: Arc<StorageTarget>) -> Result<(), ChainError> {
        let mut session = ResyncSession::begin(Arc::clone(self), recruit)?;
        loop {
            match session.pump(u64::MAX) {
                Ok(p) if p.done => break,
                Ok(_) => continue,
                Err(e) => {
                    let recruit = session.abort();
                    recruit.wipe();
                    return Err(e);
                }
            }
        }
        session.finish()
    }

    /// Delete an object from every replica (file unlink / truncation).
    pub fn delete(&self, id: ChunkId) {
        let lock = self.object_lock(id);
        let _guard = lock.lock();
        let m = self.members.read();
        for t in m.active.iter().chain(m.joining.iter()) {
            t.delete(id);
        }
    }

    /// The full-member targets (diagnostics).
    pub fn target_names(&self) -> Vec<String> {
        self.members
            .read()
            .active
            .iter()
            .map(|t| t.name().to_string())
            .collect()
    }

    /// The joining recruit's name, if a re-sync is in progress.
    pub fn joining_name(&self) -> Option<String> {
        self.members
            .read()
            .joining
            .as_ref()
            .map(|t| t.name().to_string())
    }
}

/// The ordered set of chains files stripe over (§VI-B3: "a chain table
/// contains an ordered set of chains ... the file chunks are assigned to
/// the next k chains starting at the offset").
pub struct ChainTable {
    chains: Vec<Arc<Chain>>,
}

impl ChainTable {
    /// Wrap an ordered chain set.
    pub fn new(chains: Vec<Arc<Chain>>) -> Self {
        assert!(!chains.is_empty());
        ChainTable { chains }
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True when the table is empty (never: `new` requires chains).
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// The chain storing chunk `chunk_idx` of a file placed at
    /// `(offset, stripe k)`.
    pub fn chain_for(&self, offset: usize, stripe: usize, chunk_idx: u64) -> &Arc<Chain> {
        let stripe = stripe.max(1);
        let slot = offset + (chunk_idx as usize % stripe);
        &self.chains[slot % self.chains.len()]
    }

    /// All chains.
    pub fn chains(&self) -> &[Arc<Chain>] {
        &self.chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Disk;

    fn chunk(i: u64) -> ChunkId {
        ChunkId { ino: 7, idx: i }
    }

    fn test_chain(replicas: usize) -> (Arc<Chain>, Vec<Arc<StorageTarget>>) {
        let targets: Vec<_> = (0..replicas)
            .map(|i| StorageTarget::new(format!("t{i}"), Disk::new(1 << 20)))
            .collect();
        (Chain::new(0, targets.clone()), targets)
    }

    #[test]
    fn write_replicates_to_all() {
        let (chain, targets) = test_chain(3);
        chain.write(chunk(0), Bytes::from_static(b"hello")).unwrap();
        for t in &targets {
            assert_eq!(t.committed_version(chunk(0)), 1);
        }
        // Read from every replica returns the data.
        for r in 0..3 {
            assert_eq!(
                chain.read_at(chunk(0), r).unwrap(),
                Bytes::from_static(b"hello")
            );
        }
    }

    #[test]
    fn versions_increment() {
        let (chain, _) = test_chain(2);
        assert_eq!(chain.write(chunk(0), Bytes::from_static(b"a")).unwrap(), 1);
        assert_eq!(chain.write(chunk(0), Bytes::from_static(b"b")).unwrap(), 2);
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"b"));
    }

    #[test]
    fn missing_object_errors() {
        let (chain, _) = test_chain(2);
        assert_eq!(chain.read(chunk(42)), Err(ChainError::NotFound));
    }

    #[test]
    fn disk_full_rolls_back() {
        let targets = vec![
            StorageTarget::new("big", Disk::new(1 << 20)),
            StorageTarget::new("small", Disk::new(10)),
        ];
        let chain = Chain::new(0, targets.clone());
        let err = chain.write(chunk(0), Bytes::from(vec![0u8; 100]));
        assert_eq!(err, Err(ChainError::DiskFull));
        // The head's partial dirty write was rolled back.
        assert_eq!(targets[0].newest_version(chunk(0)), 0);
        assert_eq!(targets[0].object_count(), 0);
        assert_eq!(chain.read(chunk(0)), Err(ChainError::NotFound));
    }

    #[test]
    fn removing_a_replica_keeps_data_available() {
        let (chain, _) = test_chain(3);
        chain.write(chunk(0), Bytes::from_static(b"safe")).unwrap();
        chain.remove_replica(0); // head dies
        assert_eq!(chain.replicas(), 2);
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"safe"));
        // Writes continue on the survivors.
        chain.write(chunk(0), Bytes::from_static(b"more")).unwrap();
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"more"));
    }

    #[test]
    fn dead_member_fails_writes_until_removed() {
        let (chain, targets) = test_chain(3);
        chain.write(chunk(0), Bytes::from_static(b"pre")).unwrap();
        targets[1].fail();
        // Writes touching the dead member roll back and report Unavailable.
        assert_eq!(
            chain.write(chunk(0), Bytes::from_static(b"x")),
            Err(ChainError::Unavailable)
        );
        // The rollback left every survivor at the committed version.
        assert_eq!(targets[0].newest_version(chunk(0)), 1);
        // Reads keep serving from live replicas (degraded).
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"pre"));
        // Reconfiguration drops the dead member; writes resume.
        assert_eq!(chain.remove_dead(), vec!["t1".to_string()]);
        assert_eq!(chain.replicas(), 2);
        chain.write(chunk(0), Bytes::from_static(b"post")).unwrap();
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"post"));
    }

    #[test]
    fn remove_dead_reconciles_in_flight_versions() {
        // Simulate a tail failure with a version in flight: the head holds
        // dirty v2, the failed tail never saw it. After reconfiguration the
        // surviving tail's newest version (v1) must rule: v2 is aborted.
        let (chain, targets) = test_chain(2);
        chain.write(chunk(0), Bytes::from_static(b"v1")).unwrap();
        // Hand-inject the in-flight dirty version on the head only.
        assert_eq!(
            targets[0].store_dirty(chunk(0), 2, Bytes::from_static(b"v2")),
            StoreOutcome::Stored
        );
        targets[1].fail();
        chain.remove_dead();
        // Survivor (now both head and tail): v2 committed (the tail-of-one
        // saw it), reads serve it.
        assert_eq!(targets[0].committed_version(chunk(0)), 2);
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"v2"));
    }

    #[test]
    fn remove_dead_aborts_versions_the_new_tail_never_saw() {
        let (chain, targets) = test_chain(3);
        chain.write(chunk(0), Bytes::from_static(b"v1")).unwrap();
        // In-flight v2 reached only the head; the mid replica becomes the
        // new tail and never saw it → v2 must be aborted everywhere.
        assert_eq!(
            targets[0].store_dirty(chunk(0), 2, Bytes::from_static(b"v2")),
            StoreOutcome::Stored
        );
        targets[2].fail();
        chain.remove_dead();
        assert_eq!(targets[0].newest_version(chunk(0)), 1);
        assert_eq!(targets[0].committed_version(chunk(0)), 1);
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from_static(b"v1"));
    }

    #[test]
    fn all_members_dead_is_unavailable() {
        let (chain, targets) = test_chain(2);
        chain.write(chunk(0), Bytes::from_static(b"v1")).unwrap();
        for t in &targets {
            t.fail();
        }
        assert_eq!(chain.read(chunk(0)), Err(ChainError::Unavailable));
        assert_eq!(
            chain.write(chunk(0), Bytes::from_static(b"x")),
            Err(ChainError::Unavailable)
        );
    }

    #[test]
    fn reconfiguring_flag_bounces_writers() {
        let (chain, _) = test_chain(2);
        chain.set_reconfiguring(true);
        assert_eq!(
            chain.write(chunk(0), Bytes::from_static(b"x")),
            Err(ChainError::Reconfiguring)
        );
        chain.set_reconfiguring(false);
        chain.write(chunk(0), Bytes::from_static(b"x")).unwrap();
    }

    #[test]
    fn recruit_receives_writes_during_resync() {
        let (chain, _) = test_chain(2);
        for i in 0..4 {
            chain
                .write(chunk(i), Bytes::from(format!("obj{i}")))
                .unwrap();
        }
        let recruit = StorageTarget::new("spare", Disk::new(1 << 20));
        let mut session = ResyncSession::begin(Arc::clone(&chain), recruit.clone()).unwrap();
        // A write during the re-sync dual-lands on the recruit.
        chain
            .write(chunk(9), Bytes::from_static(b"during"))
            .unwrap();
        assert_eq!(recruit.committed_version(chunk(9)), 1);
        // But the recruit serves no reads yet.
        assert_eq!(chain.replicas(), 2);
        assert_eq!(chain.joining_name().as_deref(), Some("spare"));
        // Pump to completion and promote.
        while !session.pump(64).unwrap().done {}
        session.finish().unwrap();
        assert_eq!(chain.replicas(), 3);
        assert_eq!(chain.joining_name(), None);
        for i in 0..4 {
            assert_eq!(recruit.committed_version(chunk(i)), 1);
        }
    }

    #[test]
    fn concurrent_writers_distinct_objects() {
        let (chain, _) = test_chain(3);
        std::thread::scope(|s| {
            for w in 0..8u64 {
                let chain = &chain;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let data = Bytes::from(format!("w{w}i{i}"));
                        chain.write(chunk(w * 1000 + i), data).unwrap();
                    }
                });
            }
        });
        for w in 0..8u64 {
            for i in 0..50u64 {
                assert_eq!(
                    chain.read(chunk(w * 1000 + i)).unwrap(),
                    Bytes::from(format!("w{w}i{i}"))
                );
            }
        }
    }

    #[test]
    fn concurrent_writers_same_object_serialize() {
        let (chain, _) = test_chain(3);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let chain = &chain;
                s.spawn(move || {
                    for _ in 0..100 {
                        chain.write(chunk(0), Bytes::from_static(b"x")).unwrap();
                    }
                });
            }
        });
        // 400 writes serialized: final version is 400.
        let (chain2, _) = (chain, ());
        assert_eq!(
            chain2.write(chunk(0), Bytes::from_static(b"y")).unwrap(),
            401
        );
    }

    #[test]
    fn readers_never_see_torn_or_rolled_back_data() {
        // Writers cycle an object between two valid values; concurrent
        // readers must always observe one of them in full.
        let (chain, _) = test_chain(3);
        chain.write(chunk(0), Bytes::from(vec![b'A'; 512])).unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let chain_w = &chain;
            let stop_ref = &stop;
            s.spawn(move || {
                for i in 0..300 {
                    let byte = if i % 2 == 0 { b'B' } else { b'A' };
                    chain_w
                        .write(chunk(0), Bytes::from(vec![byte; 512]))
                        .unwrap();
                }
                stop_ref.store(true, std::sync::atomic::Ordering::Relaxed);
            });
            for _ in 0..3 {
                let chain_r = &chain;
                let stop_ref = &stop;
                s.spawn(move || {
                    // Read at least once even if the writer already won
                    // the race to finish.
                    let mut reads = 0u64;
                    loop {
                        let d = chain_r.read(chunk(0)).unwrap();
                        assert_eq!(d.len(), 512);
                        assert!(d.iter().all(|&b| b == d[0]), "torn read");
                        reads += 1;
                        if stop_ref.load(std::sync::atomic::Ordering::Relaxed) || reads > 100_000 {
                            break;
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn chain_table_striping() {
        let chains: Vec<_> = (0..6)
            .map(|i| Chain::new(i, vec![StorageTarget::new(format!("x{i}"), Disk::new(100))]))
            .collect();
        let table = ChainTable::new(chains);
        // offset 2, stripe 3: chunks map to chains 2,3,4,2,3,4,...
        let ids: Vec<usize> = (0..6).map(|i| table.chain_for(2, 3, i).id()).collect();
        assert_eq!(ids, vec![2, 3, 4, 2, 3, 4]);
        // Wraps around the table.
        assert_eq!(table.chain_for(5, 3, 1).id(), 0);
    }
}
