//! Background replica re-synchronization.
//!
//! When a chain loses a member it keeps serving degraded; redundancy is
//! restored by recruiting a spare target and copying every committed
//! object to it *in the background*, bandwidth-bounded and resumable, so
//! recovery traffic never starves foreground I/O (§VI-B). The protocol:
//!
//! 1. [`ResyncSession::begin`] installs the recruit as the chain's
//!    *joining* member and snapshots the tail's object list as the
//!    work-list. From this instant every new write dual-lands on the old
//!    members **and** the recruit, so the work-list never grows.
//! 2. [`ResyncSession::pump`] copies committed objects until a byte
//!    budget is spent. Each object is copied under the chain's per-object
//!    write lock, so a copy never interleaves with a write to the same
//!    object; objects already advanced past the snapshot by dual-landing
//!    writes are skipped for free.
//! 3. [`ResyncSession::finish`] promotes the recruit to a full member
//!    (the new tail) once the work-list is drained.
//!
//! A concurrent reconfiguration (the recruit dying, a manager aborting
//! the join) invalidates the session: `pump` reports
//! [`ChainError::Reconfiguring`] / [`ChainError::Unavailable`] and the
//! caller abandons or restarts the recruitment.

use crate::chain::{Chain, ChainError};
use crate::target::{ChunkId, StorageTarget, StoreOutcome};
use std::sync::Arc;

/// Progress of one [`ResyncSession::pump`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncProgress {
    /// Objects copied by this pump.
    pub copied_objects: usize,
    /// Bytes copied by this pump.
    pub copied_bytes: u64,
    /// Objects still pending after this pump.
    pub remaining: usize,
    /// True once the work-list is drained (the session can finish).
    pub done: bool,
}

/// A resumable, bandwidth-bounded copy of a chain's committed objects to
/// a recruit. See the [module docs](self) for the protocol.
pub struct ResyncSession {
    chain: Arc<Chain>,
    recruit: Arc<StorageTarget>,
    /// Snapshot of the tail's objects at `begin`, copied in sorted order.
    pending: Vec<ChunkId>,
    cursor: usize,
    copied_bytes: u64,
}

impl ResyncSession {
    /// Install `recruit` as the chain's joining member and snapshot the
    /// re-sync work-list.
    pub fn begin(chain: Arc<Chain>, recruit: Arc<StorageTarget>) -> Result<Self, ChainError> {
        let pending = chain.begin_recruit(recruit.clone())?;
        Ok(ResyncSession {
            chain,
            recruit,
            pending,
            cursor: 0,
            copied_bytes: 0,
        })
    }

    /// Copy committed objects to the recruit until `max_bytes` have been
    /// copied by this call (the bandwidth bound) or the work-list drains.
    /// Resumable: call again to continue where the last pump stopped.
    pub fn pump(&mut self, max_bytes: u64) -> Result<ResyncProgress, ChainError> {
        let mut copied_objects = 0usize;
        let mut copied_bytes = 0u64;
        while self.cursor < self.pending.len() && copied_bytes < max_bytes {
            let id = self.pending[self.cursor];
            // The per-object write lock: a copy never interleaves with a
            // write to the same object (same lock order as writers —
            // object lock, then membership).
            let lock = self.chain.object_lock(id);
            let _guard = lock.lock();
            let src = self.chain.resync_source(&self.recruit)?;
            if let Some((ver, data)) = src.committed_data(id) {
                // Dual-landing writes may already have advanced the
                // recruit past the snapshot — nothing to copy then.
                if self.recruit.committed_version(id) < ver {
                    match self.recruit.store_dirty(id, ver, data.clone()) {
                        StoreOutcome::Stored => self.recruit.commit(id, ver),
                        StoreOutcome::DiskFull => return Err(ChainError::DiskFull),
                        StoreOutcome::Dead => return Err(ChainError::Unavailable),
                    }
                    copied_objects += 1;
                    copied_bytes += data.len() as u64;
                }
            }
            self.cursor += 1;
        }
        self.copied_bytes += copied_bytes;
        Ok(ResyncProgress {
            copied_objects,
            copied_bytes,
            remaining: self.pending.len() - self.cursor,
            done: self.done(),
        })
    }

    /// True once every pending object has been processed.
    pub fn done(&self) -> bool {
        self.cursor >= self.pending.len()
    }

    /// Objects still pending.
    pub fn remaining(&self) -> usize {
        self.pending.len() - self.cursor
    }

    /// Total bytes copied across all pumps.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes
    }

    /// The recruit being synced.
    pub fn recruit(&self) -> &Arc<StorageTarget> {
        &self.recruit
    }

    /// Promote the recruit to a full member. Call only once [`done`]
    /// reports true.
    ///
    /// [`done`]: Self::done
    pub fn finish(self) -> Result<(), ChainError> {
        assert!(
            self.done(),
            "resync incomplete: finish before work-list drained"
        );
        self.chain.promote_joining(&self.recruit)
    }

    /// Abandon the re-sync: the recruit leaves the joining slot and is
    /// returned so the caller can wipe or retire it.
    pub fn abort(self) -> Arc<StorageTarget> {
        self.chain.abort_joining();
        self.recruit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Disk;
    use ff_util::bytes::Bytes;

    fn chunk(i: u64) -> ChunkId {
        ChunkId { ino: 3, idx: i }
    }

    fn seeded_chain(objects: u64, obj_bytes: usize) -> Arc<Chain> {
        let targets = vec![
            StorageTarget::new("a", Disk::new(1 << 20)),
            StorageTarget::new("b", Disk::new(1 << 20)),
        ];
        let chain = Chain::new(0, targets);
        for i in 0..objects {
            chain
                .write(chunk(i), Bytes::from(vec![i as u8; obj_bytes]))
                .unwrap();
        }
        chain
    }

    #[test]
    fn bounded_pumps_are_resumable() {
        let chain = seeded_chain(10, 100);
        let recruit = StorageTarget::new("r", Disk::new(1 << 20));
        let mut session = ResyncSession::begin(Arc::clone(&chain), recruit.clone()).unwrap();
        assert_eq!(session.remaining(), 10);
        // 250-byte budget → at most 3 objects per pump.
        let p = session.pump(250).unwrap();
        assert!(p.copied_objects <= 3);
        assert!(!p.done);
        let mut pumps = 1;
        while !session.pump(250).unwrap().done {
            pumps += 1;
            assert!(pumps < 100, "resync never finished");
        }
        assert_eq!(session.copied_bytes(), 1000);
        session.finish().unwrap();
        assert_eq!(chain.replicas(), 3);
        for i in 0..10 {
            assert_eq!(recruit.committed_version(chunk(i)), 1);
        }
    }

    #[test]
    fn recruit_disk_full_aborts_without_joining() {
        let chain = seeded_chain(4, 200);
        let recruit = StorageTarget::new("tiny", Disk::new(300));
        let mut session = ResyncSession::begin(Arc::clone(&chain), recruit).unwrap();
        let err = loop {
            match session.pump(u64::MAX) {
                Ok(p) if p.done => panic!("should not complete"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err, ChainError::DiskFull);
        let recruit = session.abort();
        recruit.wipe();
        assert_eq!(chain.replicas(), 2);
        assert_eq!(chain.joining_name(), None);
    }

    #[test]
    fn only_one_recruit_at_a_time() {
        let chain = seeded_chain(1, 10);
        let r1 = StorageTarget::new("r1", Disk::new(1 << 20));
        let r2 = StorageTarget::new("r2", Disk::new(1 << 20));
        let _s1 = ResyncSession::begin(Arc::clone(&chain), r1).unwrap();
        assert!(matches!(
            ResyncSession::begin(Arc::clone(&chain), r2),
            Err(ChainError::Reconfiguring)
        ));
    }

    #[test]
    fn recruit_death_mid_resync_reports_unavailable() {
        let chain = seeded_chain(8, 50);
        let recruit = StorageTarget::new("r", Disk::new(1 << 20));
        let mut session = ResyncSession::begin(Arc::clone(&chain), recruit.clone()).unwrap();
        session.pump(100).unwrap();
        recruit.fail();
        assert_eq!(session.pump(100), Err(ChainError::Unavailable));
    }
}
