//! The replicated key-value store backing the metadata tables.
//!
//! §VI-B3: "file system meta data are stored in tables of a distributed
//! key-value storage system" and "all states of meta services are
//! persisted on the distributed key-value storage system". This is a
//! sharded, synchronously-replicated ordered KV store: keys hash to
//! shards; each shard keeps `r` replicas written in lock-step under the
//! shard lock (write-all) and read from any replica (read-any), the same
//! consistency recipe as the data path's CRAQ, at the granularity meta
//! traffic needs.

use ff_util::bytes::Bytes;
use ff_util::sync::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

type Table = BTreeMap<Vec<u8>, Bytes>;

struct Shard {
    replicas: Vec<RwLock<Table>>,
    rr: AtomicUsize,
}

/// A sharded replicated ordered key-value store.
pub struct KvStore {
    shards: Vec<Shard>,
}

impl KvStore {
    /// A store with `shards` shards of `replication` replicas each.
    pub fn new(shards: usize, replication: usize) -> Arc<KvStore> {
        assert!(shards >= 1 && replication >= 1);
        Arc::new(KvStore {
            shards: (0..shards)
                .map(|_| Shard {
                    replicas: (0..replication)
                        .map(|_| RwLock::new(Table::new()))
                        .collect(),
                    rr: AtomicUsize::new(0),
                })
                .collect(),
        })
    }

    fn shard_of(&self, key: &[u8]) -> &Shard {
        // FNV-1a over the key: stable and cheap.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Insert or replace. Write-all: every replica is updated before the
    /// call returns.
    pub fn put(&self, key: &[u8], value: impl Into<Bytes>) {
        let shard = self.shard_of(key);
        let value = value.into();
        // Lock replicas in order (consistent order -> no deadlock) and
        // apply to all.
        let mut guards: Vec<_> = shard.replicas.iter().map(|r| r.write()).collect();
        for g in &mut guards {
            g.insert(key.to_vec(), value.clone());
        }
    }

    /// Read from any replica.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let shard = self.shard_of(key);
        let pick = shard.rr.fetch_add(1, Ordering::Relaxed) % shard.replicas.len();
        shard.replicas[pick].read().get(key).cloned()
    }

    /// Delete a key; true if it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        let shard = self.shard_of(key);
        let mut guards: Vec<_> = shard.replicas.iter().map(|r| r.write()).collect();
        let mut existed = false;
        for g in &mut guards {
            existed = g.remove(key).is_some() || existed;
        }
        existed
    }

    /// Atomic compare-and-set: store `new` only if the current value
    /// equals `expect` (`None` = key absent). Returns success. The
    /// primitive meta services use for create/rename races.
    pub fn cas(&self, key: &[u8], expect: Option<&[u8]>, new: impl Into<Bytes>) -> bool {
        let shard = self.shard_of(key);
        let mut guards: Vec<_> = shard.replicas.iter().map(|r| r.write()).collect();
        let current = guards[0].get(key).cloned();
        let matches = match (&current, expect) {
            (None, None) => true,
            (Some(c), Some(e)) => c.as_ref() == e,
            _ => false,
        };
        if !matches {
            return false;
        }
        let new = new.into();
        for g in &mut guards {
            g.insert(key.to_vec(), new.clone());
        }
        true
    }

    /// All key/value pairs whose key starts with `prefix`, across shards,
    /// in key order — directory iteration.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Bytes)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let pick = shard.rr.fetch_add(1, Ordering::Relaxed) % shard.replicas.len();
            let table = shard.replicas[pick].read();
            for (k, v) in table.range(prefix.to_vec()..) {
                if !k.starts_with(prefix) {
                    break;
                }
                out.push((k.clone(), v.clone()));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total keys (diagnostics; O(shards)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.replicas[0].read().len()).sum()
    }

    /// True if no keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let kv = KvStore::new(4, 3);
        kv.put(b"alpha", Bytes::from_static(b"1"));
        assert_eq!(kv.get(b"alpha"), Some(Bytes::from_static(b"1")));
        assert!(kv.delete(b"alpha"));
        assert_eq!(kv.get(b"alpha"), None);
        assert!(!kv.delete(b"alpha"));
    }

    #[test]
    fn read_any_replica_consistent() {
        let kv = KvStore::new(2, 3);
        kv.put(b"k", Bytes::from_static(b"v"));
        // Round-robin cycles replicas; all must agree.
        for _ in 0..9 {
            assert_eq!(kv.get(b"k"), Some(Bytes::from_static(b"v")));
        }
    }

    #[test]
    fn cas_semantics() {
        let kv = KvStore::new(4, 2);
        assert!(kv.cas(b"x", None, Bytes::from_static(b"a")));
        assert!(!kv.cas(b"x", None, Bytes::from_static(b"b")), "exists now");
        assert!(!kv.cas(b"x", Some(b"wrong"), Bytes::from_static(b"b")));
        assert!(kv.cas(b"x", Some(b"a"), Bytes::from_static(b"b")));
        assert_eq!(kv.get(b"x"), Some(Bytes::from_static(b"b")));
    }

    #[test]
    fn cas_create_race_has_one_winner() {
        let kv = KvStore::new(4, 2);
        let wins = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 0..8 {
                let kv = &kv;
                let wins = &wins;
                s.spawn(move || {
                    if kv.cas(b"race", None, Bytes::from(format!("winner{i}"))) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scan_prefix_across_shards_sorted() {
        let kv = KvStore::new(8, 2);
        for i in 0..20 {
            kv.put(
                format!("dir/{i:02}").as_bytes(),
                Bytes::from(format!("{i}")),
            );
        }
        kv.put(b"other/x", Bytes::from_static(b"no"));
        let hits = kv.scan_prefix(b"dir/");
        assert_eq!(hits.len(), 20);
        for (i, (k, _)) in hits.iter().enumerate() {
            assert_eq!(k, format!("dir/{i:02}").as_bytes());
        }
    }

    #[test]
    fn concurrent_distinct_keys() {
        let kv = KvStore::new(8, 3);
        std::thread::scope(|s| {
            for t in 0..8 {
                let kv = &kv;
                s.spawn(move || {
                    for i in 0..100 {
                        kv.put(
                            format!("t{t}/k{i}").as_bytes(),
                            Bytes::from(format!("{t}:{i}")),
                        );
                    }
                });
            }
        });
        assert_eq!(kv.len(), 800);
        assert_eq!(kv.get(b"t3/k42"), Some(Bytes::from(String::from("3:42"))));
    }
}
