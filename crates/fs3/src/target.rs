//! Storage targets: the replica state of CRAQ, one worker thread each.
//!
//! A *storage target* owns a set of chunk replicas on one SSD (each SSD
//! serves several targets from different chains, §VI-B3). Replica state
//! follows CRAQ: every object keeps its committed ("clean") version plus
//! any in-flight ("dirty") versions; dirty versions are retained until the
//! tail commits so an apportioned read can still serve the committed one.

use ff_util::bytes::Bytes;
use ff_util::sync::Mutex;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identifies a chunk: `(inode, chunk index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// Owning file inode.
    pub ino: u64,
    /// Chunk index within the file.
    pub idx: u64,
}

/// One object's replica state on one target.
#[derive(Debug, Default)]
struct Replica {
    /// Retained versions (committed + dirty). Never empty once written.
    versions: BTreeMap<u64, Bytes>,
    /// Highest committed version (0 = none committed yet).
    clean: u64,
}

impl Replica {
    fn is_dirty(&self) -> bool {
        self.versions.keys().next_back().copied().unwrap_or(0) > self.clean
    }
}

/// A RAM-backed "SSD": capacity accounting shared by the targets it hosts.
#[derive(Debug)]
pub struct Disk {
    capacity: u64,
    used: Mutex<u64>,
}

impl Disk {
    /// A disk of `capacity` bytes.
    pub fn new(capacity: u64) -> Arc<Disk> {
        Arc::new(Disk {
            capacity,
            used: Mutex::new(0),
        })
    }

    /// Reserve `bytes`; false when the disk is full.
    pub fn reserve(&self, bytes: u64) -> bool {
        let mut used = self.used.lock();
        if *used + bytes > self.capacity {
            return false;
        }
        *used += bytes;
        true
    }

    /// Release `bytes` previously reserved.
    pub fn release(&self, bytes: u64) {
        let mut used = self.used.lock();
        *used = used.saturating_sub(bytes);
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        *self.used.lock()
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// A storage target: chunk replicas on a disk.
#[derive(Debug)]
pub struct StorageTarget {
    name: String,
    disk: Arc<Disk>,
    objects: Mutex<HashMap<ChunkId, Replica>>,
    /// False once the target has failed (SSD death, node loss). A dead
    /// target rejects every store and read until revived + re-recruited.
    alive: AtomicBool,
}

/// Outcome of a dirty store on one replica — distinguishes the two
/// failure causes the chain must handle differently: a full disk rolls
/// the write back, a dead target triggers manager-driven reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum StoreOutcome {
    /// The dirty version is stored.
    Stored,
    /// The disk is out of capacity.
    DiskFull,
    /// The target has failed; the chain must be reconfigured.
    Dead,
}

/// What a read observed at this replica.
pub enum LocalRead {
    /// The object is clean: this is the committed data.
    Clean(Bytes),
    /// The object is dirty: data for every retained version; the caller
    /// must ask the tail which version is committed.
    Dirty(BTreeMap<u64, Bytes>),
    /// Object unknown here.
    Missing,
}

impl StorageTarget {
    /// A target named `name` on `disk`.
    pub fn new(name: impl Into<String>, disk: Arc<Disk>) -> Arc<Self> {
        Arc::new(StorageTarget {
            name: name.into(),
            disk,
            objects: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
        })
    }

    /// The target's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True until [`fail`](Self::fail) is called.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Kill the target (fault injection / detected hardware failure).
    /// Subsequent stores return [`StoreOutcome::Dead`] and the chain layer
    /// stops routing reads here.
    pub fn fail(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Bring the target back up (after repair + validation). Its contents
    /// are stale; callers wipe and re-recruit it through a resync.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Drop every object and release the disk space — the clean-slate a
    /// repaired target presents before it is re-recruited.
    pub fn wipe(&self) {
        let mut objs = self.objects.lock();
        for (_, r) in objs.drain() {
            for (_, data) in r.versions {
                self.disk.release(data.len() as u64);
            }
        }
    }

    /// Store a dirty version (the forward pass of chain replication).
    pub fn store_dirty(&self, id: ChunkId, version: u64, data: Bytes) -> StoreOutcome {
        if !self.is_alive() {
            return StoreOutcome::Dead;
        }
        if !self.disk.reserve(data.len() as u64) {
            return StoreOutcome::DiskFull;
        }
        let mut objs = self.objects.lock();
        let r = objs.entry(id).or_default();
        debug_assert!(
            version > r.clean,
            "version {version} not newer than committed"
        );
        r.versions.insert(version, data);
        StoreOutcome::Stored
    }

    /// Commit `version` (the ack pass): it becomes the clean version and
    /// all older versions are dropped. Dead targets ignore commits — they
    /// are about to be dropped from the chain.
    pub fn commit(&self, id: ChunkId, version: u64) {
        if !self.is_alive() {
            return;
        }
        let mut objs = self.objects.lock();
        let Some(r) = objs.get_mut(&id) else {
            return; // replica removed (target drained)
        };
        if version <= r.clean {
            return;
        }
        r.clean = version;
        let drop_keys: Vec<u64> = r.versions.range(..version).map(|(&k, _)| k).collect();
        for k in drop_keys {
            if let Some(data) = r.versions.remove(&k) {
                self.disk.release(data.len() as u64);
            }
        }
    }

    /// Abort an uncommitted version (rollback after a mid-chain failure).
    pub fn abort(&self, id: ChunkId, version: u64) {
        let mut objs = self.objects.lock();
        let Some(r) = objs.get_mut(&id) else {
            return;
        };
        if version <= r.clean {
            return; // already committed; cannot abort
        }
        if let Some(data) = r.versions.remove(&version) {
            self.disk.release(data.len() as u64);
        }
        if r.versions.is_empty() && r.clean == 0 {
            objs.remove(&id);
        }
    }

    /// Apportioned read: committed data if clean, the retained versions if
    /// dirty (caller resolves via the tail).
    pub fn read_local(&self, id: ChunkId) -> LocalRead {
        let objs = self.objects.lock();
        match objs.get(&id) {
            None => LocalRead::Missing,
            Some(r) if !r.is_dirty() => match r.versions.get(&r.clean) {
                Some(d) => LocalRead::Clean(d.clone()),
                None => LocalRead::Missing, // nothing committed yet
            },
            Some(r) => LocalRead::Dirty(r.versions.clone()),
        }
    }

    /// The committed version number of an object (tail query). 0 if none.
    pub fn committed_version(&self, id: ChunkId) -> u64 {
        self.objects.lock().get(&id).map(|r| r.clean).unwrap_or(0)
    }

    /// The highest version stored here (committed or dirty). 0 if none.
    pub fn newest_version(&self, id: ChunkId) -> u64 {
        self.objects
            .lock()
            .get(&id)
            .and_then(|r| r.versions.keys().next_back().copied())
            .unwrap_or(0)
    }

    /// Number of objects held.
    pub fn object_count(&self) -> usize {
        self.objects.lock().len()
    }

    /// Snapshot of every committed object: `(id, version, data)` — the
    /// source side of replica resynchronization.
    pub fn committed_objects(&self) -> Vec<(ChunkId, u64, Bytes)> {
        let objs = self.objects.lock();
        objs.iter()
            .filter_map(|(&id, r)| r.versions.get(&r.clean).map(|d| (id, r.clean, d.clone())))
            .collect()
    }

    /// Every object id held here (committed or dirty), sorted — the
    /// work-list a resync session walks.
    pub fn object_ids(&self) -> Vec<ChunkId> {
        let mut ids: Vec<ChunkId> = self.objects.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The committed data of one object: `(version, data)`, or `None`
    /// when nothing is committed here.
    pub fn committed_data(&self, id: ChunkId) -> Option<(u64, Bytes)> {
        let objs = self.objects.lock();
        let r = objs.get(&id)?;
        r.versions.get(&r.clean).map(|d| (r.clean, d.clone()))
    }

    /// Membership-change reconciliation (the CRAQ rule): `keep` is the
    /// surviving tail's newest version for this object. Any version the
    /// tail saw reached every upstream replica, so `keep` commits;
    /// anything newer was in flight past the failure point and can never
    /// commit, so it is aborted and its space released. `keep == 0` drops
    /// the object entirely (the write never reached the tail).
    pub fn reconcile(&self, id: ChunkId, keep: u64) {
        let mut objs = self.objects.lock();
        let Some(r) = objs.get_mut(&id) else {
            return;
        };
        // Abort in-flight versions newer than the tail's newest.
        let drop_keys: Vec<u64> = r.versions.range(keep + 1..).map(|(&k, _)| k).collect();
        for k in drop_keys {
            if let Some(data) = r.versions.remove(&k) {
                self.disk.release(data.len() as u64);
            }
        }
        if keep > r.clean && r.versions.contains_key(&keep) {
            // Commit the tail's version; drop superseded ones.
            r.clean = keep;
            let old: Vec<u64> = r.versions.range(..keep).map(|(&k, _)| k).collect();
            for k in old {
                if let Some(data) = r.versions.remove(&k) {
                    self.disk.release(data.len() as u64);
                }
            }
        }
        if r.versions.is_empty() {
            objs.remove(&id);
        }
    }

    /// Remove an object entirely (unlink), releasing its disk space.
    pub fn delete(&self, id: ChunkId) {
        let mut objs = self.objects.lock();
        if let Some(r) = objs.remove(&id) {
            for (_, data) in r.versions {
                self.disk.release(data.len() as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(i: u64) -> ChunkId {
        ChunkId { ino: 1, idx: i }
    }

    fn stored(outcome: StoreOutcome) {
        assert_eq!(outcome, StoreOutcome::Stored);
    }

    #[test]
    fn dirty_then_commit_lifecycle() {
        let disk = Disk::new(1 << 20);
        let t = StorageTarget::new("t0", disk.clone());
        stored(t.store_dirty(chunk(0), 1, Bytes::from_static(b"v1")));
        // Nothing committed: read is Dirty (version 1 retained).
        match t.read_local(chunk(0)) {
            LocalRead::Dirty(v) => assert_eq!(v[&1], Bytes::from_static(b"v1")),
            _ => panic!("expected dirty"),
        }
        t.commit(chunk(0), 1);
        match t.read_local(chunk(0)) {
            LocalRead::Clean(d) => assert_eq!(d, Bytes::from_static(b"v1")),
            _ => panic!("expected clean"),
        }
        assert_eq!(t.committed_version(chunk(0)), 1);
    }

    #[test]
    fn old_versions_dropped_on_commit() {
        let disk = Disk::new(1 << 20);
        let t = StorageTarget::new("t0", disk.clone());
        stored(t.store_dirty(chunk(0), 1, Bytes::from(vec![0u8; 100])));
        t.commit(chunk(0), 1);
        assert_eq!(disk.used(), 100);
        stored(t.store_dirty(chunk(0), 2, Bytes::from(vec![0u8; 50])));
        assert_eq!(disk.used(), 150); // both retained while dirty
        t.commit(chunk(0), 2);
        assert_eq!(disk.used(), 50); // v1 released
    }

    #[test]
    fn dirty_read_retains_committed_version() {
        let disk = Disk::new(1 << 20);
        let t = StorageTarget::new("t0", disk);
        stored(t.store_dirty(chunk(0), 1, Bytes::from_static(b"old")));
        t.commit(chunk(0), 1);
        stored(t.store_dirty(chunk(0), 2, Bytes::from_static(b"new")));
        match t.read_local(chunk(0)) {
            LocalRead::Dirty(v) => {
                assert_eq!(v[&1], Bytes::from_static(b"old"));
                assert_eq!(v[&2], Bytes::from_static(b"new"));
            }
            _ => panic!("expected dirty"),
        }
        assert_eq!(t.committed_version(chunk(0)), 1);
        assert_eq!(t.newest_version(chunk(0)), 2);
    }

    #[test]
    fn disk_capacity_enforced() {
        let disk = Disk::new(100);
        let t = StorageTarget::new("t0", disk);
        stored(t.store_dirty(chunk(0), 1, Bytes::from(vec![0u8; 60])));
        assert_eq!(
            t.store_dirty(chunk(1), 1, Bytes::from(vec![0u8; 60])),
            StoreOutcome::DiskFull
        );
    }

    #[test]
    fn missing_object() {
        let t = StorageTarget::new("t0", Disk::new(10));
        assert!(matches!(t.read_local(chunk(9)), LocalRead::Missing));
        assert_eq!(t.committed_version(chunk(9)), 0);
    }

    #[test]
    fn dead_target_rejects_stores_and_wipe_releases_disk() {
        let disk = Disk::new(1 << 20);
        let t = StorageTarget::new("t0", disk.clone());
        stored(t.store_dirty(chunk(0), 1, Bytes::from(vec![0u8; 64])));
        t.commit(chunk(0), 1);
        t.fail();
        assert!(!t.is_alive());
        assert_eq!(
            t.store_dirty(chunk(1), 1, Bytes::from_static(b"x")),
            StoreOutcome::Dead
        );
        // Commits on a dead target are ignored.
        t.commit(chunk(0), 5);
        assert_eq!(t.committed_version(chunk(0)), 1);
        t.revive();
        t.wipe();
        assert_eq!(disk.used(), 0);
        assert_eq!(t.object_count(), 0);
        assert!(t.is_alive());
    }

    #[test]
    fn reconcile_commits_tail_version_and_aborts_newer() {
        let disk = Disk::new(1 << 20);
        let t = StorageTarget::new("t0", disk.clone());
        stored(t.store_dirty(chunk(0), 1, Bytes::from(vec![1u8; 10])));
        t.commit(chunk(0), 1);
        stored(t.store_dirty(chunk(0), 2, Bytes::from(vec![2u8; 10])));
        stored(t.store_dirty(chunk(0), 3, Bytes::from(vec![3u8; 10])));
        // Tail saw version 2: commit it, abort 3.
        t.reconcile(chunk(0), 2);
        assert_eq!(t.committed_version(chunk(0)), 2);
        assert_eq!(t.newest_version(chunk(0)), 2);
        assert_eq!(disk.used(), 10);
        match t.read_local(chunk(0)) {
            LocalRead::Clean(d) => assert_eq!(d, Bytes::from(vec![2u8; 10])),
            _ => panic!("expected clean"),
        }
    }

    #[test]
    fn reconcile_to_zero_drops_the_object() {
        let disk = Disk::new(1 << 20);
        let t = StorageTarget::new("t0", disk.clone());
        stored(t.store_dirty(chunk(0), 1, Bytes::from(vec![1u8; 10])));
        // The write never reached the tail: abort everything.
        t.reconcile(chunk(0), 0);
        assert_eq!(t.object_count(), 0);
        assert_eq!(disk.used(), 0);
    }
}
