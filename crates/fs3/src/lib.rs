//! # ff-3fs — the 3FS distributed file system (§VI-B)
//!
//! A working, concurrent implementation of the paper's storage stack,
//! with RDMA and NVMe replaced by in-process transports and RAM-backed
//! devices (see DESIGN.md's substitution table). The four roles of §VI-B3
//! are all here:
//!
//! * **Cluster manager** ([`manager`]) — service registry, heartbeats,
//!   primary election among manager replicas, chain-table distribution.
//! * **Meta service** ([`meta`]) — file-system metadata (inode table +
//!   directory-entry table) as key-value pairs in a replicated KV store
//!   ([`kvstore`]); several meta services can serve concurrently because
//!   all state lives in the KV store.
//! * **Storage service** ([`target`], [`chain`]) — file content split into
//!   chunks, replicated over chains with **CRAQ** (Chain Replication with
//!   Apportioned Queries): writes propagate head→tail, reads hit *any*
//!   replica and consult the tail's committed version only when dirty —
//!   the write-all-read-any behaviour that "unleashes the throughput and
//!   IOPS of all SSDs".
//! * **Client** ([`client`]) — striped file I/O over the chain table, the
//!   batch read/write API the checkpoint manager uses (§VII-A), and the
//!   request-to-send admission control of §VI-B3.
//!
//! [`kv3fs`] adds the 3FS-KV layer (key-value, message queue, object
//! store); [`throughput`] reproduces the §VI-B2 aggregate-read-throughput
//! experiment on the network simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod client;
pub mod kv3fs;
pub mod kvstore;
pub mod manager;
pub mod meta;
pub mod resync;
pub mod target;
pub mod throughput;

pub use chain::{Chain, ChainError, ChainTable};
pub use client::{Fs3Client, FsError, RetryPolicy};
pub use ff_util::error::{FfError, FfKind};
pub use kvstore::KvStore;
pub use manager::{ClusterManager, HealthState, ServiceRole};
pub use meta::{FileAttr, InodeId, MetaError, MetaService};
pub use resync::{ResyncProgress, ResyncSession};
pub use target::{ChunkId, StorageTarget, StoreOutcome};
