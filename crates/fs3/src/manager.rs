//! The cluster manager (§VI-B3): "meta and storage services send
//! heartbeats to cluster manager. All services and clients poll cluster
//! configuration and service status from the manager. Multiple cluster
//! managers are present, with one elected as the primary."
//!
//! Time is injected (millisecond ticks) so elections and heartbeat
//! timeouts are deterministic in tests and composable with the simulator.

use ff_util::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A registered service's role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServiceRole {
    /// Metadata service.
    Meta,
    /// Storage service.
    Storage,
    /// A cluster-manager replica.
    Manager,
}

/// Liveness as judged by heartbeat recency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceStatus {
    /// Heartbeating within the timeout.
    Alive,
    /// Missed heartbeats; excluded from service.
    Dead,
}

#[derive(Debug, Clone)]
struct ServiceRecord {
    role: ServiceRole,
    last_heartbeat_ms: u64,
}

/// Cluster configuration version + contents distributed to pollers.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Monotonic configuration version.
    pub version: u64,
    /// Alive services by id.
    pub alive: Vec<(String, ServiceRole)>,
}

struct ManagerState {
    now_ms: u64,
    services: HashMap<String, ServiceRecord>,
    config_version: u64,
    /// Election: (term, manager id) of the current primary lease.
    primary: Option<(u64, String)>,
    lease_expiry_ms: u64,
}

/// The cluster manager ensemble (all replicas share state here; the
/// election decides which replica id is primary and may answer writes).
pub struct ClusterManager {
    heartbeat_timeout_ms: u64,
    lease_ms: u64,
    state: Mutex<ManagerState>,
}

impl ClusterManager {
    /// A manager with the given heartbeat timeout and primary-lease term.
    pub fn new(heartbeat_timeout_ms: u64, lease_ms: u64) -> Arc<Self> {
        Arc::new(ClusterManager {
            heartbeat_timeout_ms,
            lease_ms,
            state: Mutex::new(ManagerState {
                now_ms: 0,
                services: HashMap::new(),
                config_version: 1,
                primary: None,
                lease_expiry_ms: 0,
            }),
        })
    }

    /// Advance the manager's clock.
    pub fn tick(&self, now_ms: u64) {
        let mut st = self.state.lock();
        assert!(now_ms >= st.now_ms, "time went backwards");
        st.now_ms = now_ms;
        // The primary lease expires implicitly: `primary()` and
        // `campaign()` compare against `lease_expiry_ms`, and the term
        // counter survives expiry so a new primary gets a higher term.
        // Death detection bumps the config version once per transition.
        let timeout = self.heartbeat_timeout_ms;
        let newly_dead = st
            .services
            .values()
            .any(|s| now_ms.saturating_sub(s.last_heartbeat_ms) == timeout);
        if newly_dead {
            st.config_version += 1;
        }
    }

    /// Register a service (first heartbeat).
    pub fn register(&self, id: impl Into<String>, role: ServiceRole) {
        let mut st = self.state.lock();
        let now = st.now_ms;
        st.services.insert(
            id.into(),
            ServiceRecord {
                role,
                last_heartbeat_ms: now,
            },
        );
        st.config_version += 1;
    }

    /// Record a heartbeat from `id`. Unknown services are ignored (they
    /// must register first).
    pub fn heartbeat(&self, id: &str) {
        let mut st = self.state.lock();
        let now = st.now_ms;
        if let Some(rec) = st.services.get_mut(id) {
            rec.last_heartbeat_ms = now;
        }
    }

    /// The status of a service.
    pub fn status(&self, id: &str) -> Option<ServiceStatus> {
        let st = self.state.lock();
        st.services.get(id).map(|rec| {
            if st.now_ms.saturating_sub(rec.last_heartbeat_ms) >= self.heartbeat_timeout_ms {
                ServiceStatus::Dead
            } else {
                ServiceStatus::Alive
            }
        })
    }

    /// The configuration pollers fetch: version + alive services.
    pub fn poll_config(&self) -> ClusterConfig {
        let st = self.state.lock();
        let mut alive: Vec<(String, ServiceRole)> = st
            .services
            .iter()
            .filter(|(_, rec)| {
                st.now_ms.saturating_sub(rec.last_heartbeat_ms) < self.heartbeat_timeout_ms
            })
            .map(|(id, rec)| (id.clone(), rec.role))
            .collect();
        alive.sort();
        ClusterConfig {
            version: st.config_version,
            alive,
        }
    }

    /// A manager replica campaigns for the primary lease. Grants it when
    /// there is no live primary; renewal by the incumbent extends the
    /// lease. Returns the granted term, or `None` if another primary holds
    /// a live lease.
    pub fn campaign(&self, manager_id: &str) -> Option<u64> {
        let mut st = self.state.lock();
        let now = st.now_ms;
        match &st.primary {
            Some((term, holder)) if holder == manager_id => {
                // Renewal.
                let term = *term;
                st.lease_expiry_ms = now + self.lease_ms;
                Some(term)
            }
            Some(_) if now < st.lease_expiry_ms => None,
            _ => {
                let term = st.primary.as_ref().map(|(t, _)| t + 1).unwrap_or(1);
                st.primary = Some((term, manager_id.to_string()));
                st.lease_expiry_ms = now + self.lease_ms;
                Some(term)
            }
        }
    }

    /// The current primary manager id, if a lease is live.
    pub fn primary(&self) -> Option<String> {
        let st = self.state.lock();
        match &st.primary {
            Some((_, id)) if st.now_ms < st.lease_expiry_ms => Some(id.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeats_keep_services_alive() {
        let m = ClusterManager::new(100, 500);
        m.register("stor0", ServiceRole::Storage);
        m.tick(50);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Alive));
        m.tick(99);
        m.heartbeat("stor0");
        m.tick(150);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Alive));
        m.tick(250);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Dead));
    }

    #[test]
    fn dead_services_leave_the_polled_config() {
        let m = ClusterManager::new(100, 500);
        m.register("meta0", ServiceRole::Meta);
        m.register("stor0", ServiceRole::Storage);
        let v1 = m.poll_config();
        assert_eq!(v1.alive.len(), 2);
        m.tick(60);
        m.heartbeat("meta0");
        m.tick(120);
        let v2 = m.poll_config();
        assert_eq!(v2.alive.len(), 1);
        assert_eq!(v2.alive[0].0, "meta0");
        assert!(v2.version >= v1.version);
    }

    #[test]
    fn single_primary_at_a_time() {
        let m = ClusterManager::new(100, 500);
        assert_eq!(m.campaign("mgr0"), Some(1));
        assert_eq!(m.campaign("mgr1"), None, "lease held");
        assert_eq!(m.primary(), Some("mgr0".into()));
        // Renewal by the incumbent keeps the same term.
        m.tick(300);
        assert_eq!(m.campaign("mgr0"), Some(1));
    }

    #[test]
    fn failover_after_lease_expiry() {
        let m = ClusterManager::new(100, 500);
        assert_eq!(m.campaign("mgr0"), Some(1));
        m.tick(499);
        assert_eq!(m.campaign("mgr1"), None);
        m.tick(500);
        assert_eq!(m.primary(), None, "lease expired");
        assert_eq!(m.campaign("mgr1"), Some(2), "new term");
        assert_eq!(m.primary(), Some("mgr1".into()));
    }

    #[test]
    fn unknown_heartbeat_ignored() {
        let m = ClusterManager::new(100, 500);
        m.heartbeat("ghost");
        assert_eq!(m.status("ghost"), None);
    }

    #[test]
    fn reregistration_resurrects_a_dead_service() {
        let m = ClusterManager::new(100, 500);
        m.register("stor0", ServiceRole::Storage);
        m.tick(200);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Dead));
        m.register("stor0", ServiceRole::Storage);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Alive));
    }
}
