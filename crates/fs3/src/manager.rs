//! The cluster manager (§VI-B3): "meta and storage services send
//! heartbeats to cluster manager. All services and clients poll cluster
//! configuration and service status from the manager. Multiple cluster
//! managers are present, with one elected as the primary."
//!
//! Beyond liveness, every service carries a **health state** driving the
//! paper's ops loop (§VIII): missed heartbeats move a node Healthy →
//! Suspect → Quarantined; a quarantined node is sticky — it never
//! re-enters chain placement until it passes validation (Quarantined →
//! Validating → Healthy only via [`conclude_validation`]).
//!
//! Time is injected (millisecond ticks) so elections and heartbeat
//! timeouts are deterministic in tests and composable with the simulator.
//!
//! [`conclude_validation`]: ClusterManager::conclude_validation

use ff_util::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A registered service's role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServiceRole {
    /// Metadata service.
    Meta,
    /// Storage service.
    Storage,
    /// A cluster-manager replica.
    Manager,
    /// A compute node registered by the scheduling platform (§VI-C): the
    /// same health machine gates its return to the scheduling pool.
    Compute,
}

/// Liveness as judged by heartbeat recency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceStatus {
    /// Heartbeating within the timeout.
    Alive,
    /// Missed heartbeats; excluded from service.
    Dead,
}

/// The node-health state machine (§VIII ops loop). Transitions:
///
/// ```text
///            missed ≥ timeout/2        missed ≥ timeout
///  Healthy ────────────────► Suspect ────────────────► Quarantined
///     ▲                         │                           │
///     │ heartbeat               │ heartbeat                 │ begin_validation
///     │ (Suspect only)          ▼                           ▼
///     └──────────────────── Healthy ◄── validator pass ── Validating
///                                        (validator fail ──► Quarantined)
///
///  readmission probation (opt-in, via conclude_validation_to_probation):
///  Validating ── pass ──► Probation ── probation_pass ──► Healthy
///                             │ mark_suspect / missed ≥ timeout
///                             ▼
///                         Quarantined   (a re-flap skips Suspect)
/// ```
///
/// Quarantine is sticky: heartbeats resuming do **not** clear it — only a
/// validation pass does, mirroring the paper's weekly-validation gate.
/// Probation is the signal-driven-detection refinement: a node readmitted
/// after validation serves again (placement-eligible) but stays on a
/// short leash — any new suspicion during probation escalates straight
/// back to quarantine, which is what makes flapping hardware pay
/// exponentially rather than oscillating in and out of the pool for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Serving; eligible for chain placement.
    Healthy,
    /// Missed some heartbeats; still serving but watched.
    Suspect,
    /// Failed (timeout or injected fault); excluded from placement until
    /// validated.
    Quarantined,
    /// Under validator checks; still excluded from placement.
    Validating,
    /// Readmitted after validation but still on a short leash: serving
    /// and placement-eligible, but a re-flap escalates straight back to
    /// quarantine instead of through Suspect.
    Probation,
}

impl HealthState {
    /// Stable lowercase name (metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Validating => "validating",
            HealthState::Probation => "probation",
        }
    }
}

#[derive(Debug, Clone)]
struct ServiceRecord {
    role: ServiceRole,
    last_heartbeat_ms: u64,
    health: HealthState,
}

/// Cluster configuration version + contents distributed to pollers.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Monotonic configuration version.
    pub version: u64,
    /// Alive services by id.
    pub alive: Vec<(String, ServiceRole)>,
}

struct ManagerState {
    now_ms: u64,
    services: HashMap<String, ServiceRecord>,
    config_version: u64,
    /// Election: (term, manager id) of the current primary lease.
    primary: Option<(u64, String)>,
    lease_expiry_ms: u64,
}

/// The cluster manager ensemble (all replicas share state here; the
/// election decides which replica id is primary and may answer writes).
pub struct ClusterManager {
    heartbeat_timeout_ms: u64,
    suspect_after_ms: u64,
    lease_ms: u64,
    state: Mutex<ManagerState>,
}

impl ClusterManager {
    /// A manager with the given heartbeat timeout and primary-lease term.
    /// Services turn Suspect at half the timeout and Quarantined at the
    /// full timeout.
    pub fn new(heartbeat_timeout_ms: u64, lease_ms: u64) -> Arc<Self> {
        Arc::new(ClusterManager {
            heartbeat_timeout_ms,
            suspect_after_ms: heartbeat_timeout_ms / 2,
            lease_ms,
            state: Mutex::new(ManagerState {
                now_ms: 0,
                services: HashMap::new(),
                config_version: 1,
                primary: None,
                lease_expiry_ms: 0,
            }),
        })
    }

    /// Advance the manager's clock and run health transitions: services
    /// past the suspect threshold turn Suspect, past the full timeout
    /// turn Quarantined (each quarantine bumps the config version once).
    pub fn tick(&self, now_ms: u64) {
        let mut st = self.state.lock();
        assert!(now_ms >= st.now_ms, "time went backwards");
        st.now_ms = now_ms;
        // The primary lease expires implicitly: `primary()` and
        // `campaign()` compare against `lease_expiry_ms`, and the term
        // counter survives expiry so a new primary gets a higher term.
        let timeout = self.heartbeat_timeout_ms;
        let suspect = self.suspect_after_ms;
        let mut quarantined = 0u64;
        for rec in st.services.values_mut() {
            let missed = now_ms.saturating_sub(rec.last_heartbeat_ms);
            match rec.health {
                HealthState::Healthy | HealthState::Suspect | HealthState::Probation
                    if missed >= timeout =>
                {
                    rec.health = HealthState::Quarantined;
                    quarantined += 1;
                }
                HealthState::Healthy if missed >= suspect => {
                    rec.health = HealthState::Suspect;
                }
                _ => {}
            }
        }
        st.config_version += quarantined;
    }

    /// Register a service (first heartbeat). Re-registering an existing
    /// service refreshes its heartbeat but does **not** clear quarantine —
    /// a failed node cannot readmit itself by restarting; it must pass
    /// validation.
    pub fn register(&self, id: impl Into<String>, role: ServiceRole) {
        let id = id.into();
        let mut st = self.state.lock();
        let now = st.now_ms;
        let health = match st.services.get(&id) {
            Some(rec)
                if matches!(
                    rec.health,
                    HealthState::Quarantined | HealthState::Validating | HealthState::Probation
                ) =>
            {
                rec.health
            }
            _ => HealthState::Healthy,
        };
        st.services.insert(
            id,
            ServiceRecord {
                role,
                last_heartbeat_ms: now,
                health,
            },
        );
        st.config_version += 1;
    }

    /// Record a heartbeat from `id`. Unknown services are ignored (they
    /// must register first). A Suspect service recovers to Healthy; a
    /// quarantined one stays quarantined (the validation gate).
    pub fn heartbeat(&self, id: &str) {
        let mut st = self.state.lock();
        let now = st.now_ms;
        if let Some(rec) = st.services.get_mut(id) {
            rec.last_heartbeat_ms = now;
            if rec.health == HealthState::Suspect {
                rec.health = HealthState::Healthy;
            }
        }
    }

    /// Report a service suspect without waiting for the heartbeat
    /// timeout: an external detector (hai-monitor, the scheduler's own
    /// liveness probe) saw the first missed beat. Healthy services move
    /// to Suspect; a service on probation re-flapping goes straight back
    /// to Quarantined (the leash); quarantined/validating ones are left
    /// alone.
    pub fn mark_suspect(&self, id: &str) {
        let mut st = self.state.lock();
        if let Some(rec) = st.services.get_mut(id) {
            match rec.health {
                HealthState::Healthy => rec.health = HealthState::Suspect,
                HealthState::Probation => {
                    rec.health = HealthState::Quarantined;
                    st.config_version += 1;
                }
                _ => {}
            }
        }
    }

    /// Quarantine a service immediately (fault injection or an external
    /// detector like hai-monitor reporting a hard failure).
    pub fn mark_failed(&self, id: &str) {
        let mut st = self.state.lock();
        if let Some(rec) = st.services.get_mut(id) {
            if rec.health != HealthState::Quarantined {
                rec.health = HealthState::Quarantined;
                st.config_version += 1;
            }
        }
    }

    /// Move a quarantined service onto the validation bench. Returns
    /// false when the service is unknown or not quarantined.
    pub fn begin_validation(&self, id: &str) -> bool {
        let mut st = self.state.lock();
        match st.services.get_mut(id) {
            Some(rec) if rec.health == HealthState::Quarantined => {
                rec.health = HealthState::Validating;
                true
            }
            _ => false,
        }
    }

    /// Conclude a validation run: a pass readmits the service (Healthy,
    /// heartbeat refreshed); a fail sends it back to quarantine. Returns
    /// false when the service is unknown or not validating.
    pub fn conclude_validation(&self, id: &str, passed: bool) -> bool {
        let mut st = self.state.lock();
        let now = st.now_ms;
        match st.services.get_mut(id) {
            Some(rec) if rec.health == HealthState::Validating => {
                if passed {
                    rec.health = HealthState::Healthy;
                    rec.last_heartbeat_ms = now;
                } else {
                    rec.health = HealthState::Quarantined;
                }
                st.config_version += 1;
                true
            }
            _ => false,
        }
    }

    /// Conclude a *passed* validation into probation instead of full
    /// health: the service serves again but a re-flap goes straight back
    /// to quarantine. The detector loop uses this readmission gate; the
    /// classic [`conclude_validation`](Self::conclude_validation) path is
    /// unchanged. Returns false when the service is unknown or not
    /// validating.
    pub fn conclude_validation_to_probation(&self, id: &str) -> bool {
        let mut st = self.state.lock();
        let now = st.now_ms;
        match st.services.get_mut(id) {
            Some(rec) if rec.health == HealthState::Validating => {
                rec.health = HealthState::Probation;
                rec.last_heartbeat_ms = now;
                st.config_version += 1;
                true
            }
            _ => false,
        }
    }

    /// A clean probation period ends: the service returns to full
    /// health. Returns false when the service is unknown or not on
    /// probation.
    pub fn probation_pass(&self, id: &str) -> bool {
        let mut st = self.state.lock();
        match st.services.get_mut(id) {
            Some(rec) if rec.health == HealthState::Probation => {
                rec.health = HealthState::Healthy;
                st.config_version += 1;
                true
            }
            _ => false,
        }
    }

    /// The health state of a service.
    pub fn health(&self, id: &str) -> Option<HealthState> {
        self.state.lock().services.get(id).map(|rec| rec.health)
    }

    /// True when `id` may receive chain placement: known and Healthy (or
    /// on probation — readmitted nodes serve, that is the point of the
    /// leash). Quarantined and Validating nodes are gated out until the
    /// validator passes them.
    pub fn placement_eligible(&self, id: &str) -> bool {
        matches!(
            self.health(id),
            Some(HealthState::Healthy) | Some(HealthState::Probation)
        )
    }

    /// Service counts per health state:
    /// `[healthy, suspect, quarantined, validating, probation]`.
    pub fn health_counts(&self) -> [usize; 5] {
        let st = self.state.lock();
        let mut counts = [0usize; 5];
        for rec in st.services.values() {
            let i = match rec.health {
                HealthState::Healthy => 0,
                HealthState::Suspect => 1,
                HealthState::Quarantined => 2,
                HealthState::Validating => 3,
                HealthState::Probation => 4,
            };
            counts[i] += 1;
        }
        counts
    }

    /// The manager's current clock, as last advanced by `tick`.
    pub fn now_ms(&self) -> u64 {
        self.state.lock().now_ms
    }

    /// The status of a service.
    pub fn status(&self, id: &str) -> Option<ServiceStatus> {
        let st = self.state.lock();
        st.services.get(id).map(|rec| {
            if st.now_ms.saturating_sub(rec.last_heartbeat_ms) >= self.heartbeat_timeout_ms {
                ServiceStatus::Dead
            } else {
                ServiceStatus::Alive
            }
        })
    }

    /// The configuration pollers fetch: version + alive services. A
    /// quarantined or validating service is excluded even if it resumed
    /// heartbeating — it is out of service until validated.
    pub fn poll_config(&self) -> ClusterConfig {
        let st = self.state.lock();
        let mut alive: Vec<(String, ServiceRole)> = st
            .services
            .iter()
            .filter(|(_, rec)| {
                st.now_ms.saturating_sub(rec.last_heartbeat_ms) < self.heartbeat_timeout_ms
                    && matches!(
                        rec.health,
                        HealthState::Healthy | HealthState::Suspect | HealthState::Probation
                    )
            })
            .map(|(id, rec)| (id.clone(), rec.role))
            .collect();
        alive.sort();
        ClusterConfig {
            version: st.config_version,
            alive,
        }
    }

    /// A manager replica campaigns for the primary lease. Grants it when
    /// there is no live primary; renewal by the incumbent extends the
    /// lease. Returns the granted term, or `None` if another primary holds
    /// a live lease.
    pub fn campaign(&self, manager_id: &str) -> Option<u64> {
        let mut st = self.state.lock();
        let now = st.now_ms;
        // A lease is live strictly *before* its deadline. At `now ==
        // lease_expiry_ms` the lease is uniformly expired for renewal,
        // challenge and `primary()` alike, so a campaign racing a tick at
        // the exact deadline has one deterministic outcome: a fresh
        // election with a new term, won by whichever campaign reaches the
        // state mutex first.
        let lease_live = now < st.lease_expiry_ms;
        match &st.primary {
            Some((term, holder)) if holder == manager_id && lease_live => {
                // Renewal.
                let term = *term;
                st.lease_expiry_ms = now + self.lease_ms;
                Some(term)
            }
            Some(_) if lease_live => None,
            _ => {
                let term = st.primary.as_ref().map(|(t, _)| t + 1).unwrap_or(1);
                st.primary = Some((term, manager_id.to_string()));
                st.lease_expiry_ms = now + self.lease_ms;
                Some(term)
            }
        }
    }

    /// The current primary manager id, if a lease is live.
    pub fn primary(&self) -> Option<String> {
        let st = self.state.lock();
        match &st.primary {
            Some((_, id)) if st.now_ms < st.lease_expiry_ms => Some(id.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_util::rng::ChaCha8Rng;

    #[test]
    fn heartbeats_keep_services_alive() {
        let m = ClusterManager::new(100, 500);
        m.register("stor0", ServiceRole::Storage);
        m.tick(50);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Alive));
        m.tick(99);
        m.heartbeat("stor0");
        m.tick(150);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Alive));
        m.tick(250);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Dead));
    }

    #[test]
    fn dead_services_leave_the_polled_config() {
        let m = ClusterManager::new(100, 500);
        m.register("meta0", ServiceRole::Meta);
        m.register("stor0", ServiceRole::Storage);
        let v1 = m.poll_config();
        assert_eq!(v1.alive.len(), 2);
        m.tick(60);
        m.heartbeat("meta0");
        m.tick(120);
        let v2 = m.poll_config();
        assert_eq!(v2.alive.len(), 1);
        assert_eq!(v2.alive[0].0, "meta0");
        assert!(v2.version >= v1.version);
    }

    #[test]
    fn single_primary_at_a_time() {
        let m = ClusterManager::new(100, 500);
        assert_eq!(m.campaign("mgr0"), Some(1));
        assert_eq!(m.campaign("mgr1"), None, "lease held");
        assert_eq!(m.primary(), Some("mgr0".into()));
        // Renewal by the incumbent keeps the same term.
        m.tick(300);
        assert_eq!(m.campaign("mgr0"), Some(1));
    }

    #[test]
    fn failover_after_lease_expiry() {
        let m = ClusterManager::new(100, 500);
        assert_eq!(m.campaign("mgr0"), Some(1));
        m.tick(499);
        assert_eq!(m.campaign("mgr1"), None);
        m.tick(500);
        assert_eq!(m.primary(), None, "lease expired");
        assert_eq!(m.campaign("mgr1"), Some(2), "new term");
        assert_eq!(m.primary(), Some("mgr1".into()));
    }

    #[test]
    fn campaign_at_exact_lease_deadline_has_one_winner() {
        // Seeded regression for the tick/campaign race at `now_ms ==
        // lease deadline`: whatever order campaigns arrive in, the lease
        // is uniformly expired, exactly one campaign wins, and it wins a
        // fresh term. Before the fix the incumbent's renewal treated the
        // deadline as live while a challenger treated it as expired, so
        // the outcome depended on arrival order.
        let mgrs = ["mgr0", "mgr1", "mgr2", "mgr3"];
        let mut rng = ChaCha8Rng::seed_from_u64(0x3F5_C4A);
        let lease = 500u64;
        let m = ClusterManager::new(100, lease);
        assert_eq!(m.campaign(mgrs[0]), Some(1));
        let mut deadline = lease; // granted at t=0
        for round in 0..50u64 {
            m.tick(deadline);
            let mut order: Vec<&str> = mgrs.to_vec();
            rng.shuffle(&mut order);
            let grants: Vec<(&str, u64)> = order
                .iter()
                .filter_map(|id| m.campaign(id).map(|t| (*id, t)))
                .collect();
            // Exactly one winner — the first campaigner — with a new term.
            assert_eq!(grants.len(), 1, "round {round}: {grants:?}");
            assert_eq!(grants[0].0, order[0], "first campaigner wins");
            assert_eq!(grants[0].1, round + 2, "terms are monotone");
            assert_eq!(m.primary(), Some(order[0].to_string()));
            deadline += lease;
        }
    }

    #[test]
    fn incumbent_renewal_at_deadline_needs_a_new_term() {
        let m = ClusterManager::new(100, 500);
        assert_eq!(m.campaign("mgr0"), Some(1));
        m.tick(500);
        // The incumbent's own campaign at the deadline is a re-election,
        // not a renewal: the term advances.
        assert_eq!(m.campaign("mgr0"), Some(2));
    }

    #[test]
    fn unknown_heartbeat_ignored() {
        let m = ClusterManager::new(100, 500);
        m.heartbeat("ghost");
        assert_eq!(m.status("ghost"), None);
    }

    #[test]
    fn reregistration_resurrects_a_dead_service() {
        let m = ClusterManager::new(100, 500);
        m.register("stor0", ServiceRole::Storage);
        m.tick(200);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Dead));
        m.register("stor0", ServiceRole::Storage);
        assert_eq!(m.status("stor0"), Some(ServiceStatus::Alive));
    }

    #[test]
    fn health_degrades_suspect_then_quarantined() {
        let m = ClusterManager::new(100, 500);
        m.register("stor0", ServiceRole::Storage);
        assert_eq!(m.health("stor0"), Some(HealthState::Healthy));
        m.tick(50);
        assert_eq!(m.health("stor0"), Some(HealthState::Suspect));
        // A heartbeat recovers a suspect.
        m.heartbeat("stor0");
        assert_eq!(m.health("stor0"), Some(HealthState::Healthy));
        assert!(m.placement_eligible("stor0"));
        m.tick(150);
        assert_eq!(m.health("stor0"), Some(HealthState::Quarantined));
        assert!(!m.placement_eligible("stor0"));
    }

    #[test]
    fn quarantine_is_sticky_until_validation_passes() {
        let m = ClusterManager::new(100, 500);
        m.register("stor0", ServiceRole::Storage);
        m.tick(100);
        assert_eq!(m.health("stor0"), Some(HealthState::Quarantined));
        // Resumed heartbeats do not clear quarantine...
        m.heartbeat("stor0");
        assert_eq!(m.health("stor0"), Some(HealthState::Quarantined));
        // ...and neither does re-registering.
        m.register("stor0", ServiceRole::Storage);
        assert_eq!(m.health("stor0"), Some(HealthState::Quarantined));
        assert!(!m.poll_config().alive.iter().any(|(id, _)| id == "stor0"));
        // A failed validation returns to quarantine.
        assert!(m.begin_validation("stor0"));
        assert_eq!(m.health("stor0"), Some(HealthState::Validating));
        assert!(!m.placement_eligible("stor0"));
        assert!(m.conclude_validation("stor0", false));
        assert_eq!(m.health("stor0"), Some(HealthState::Quarantined));
        // Only a pass readmits.
        assert!(m.begin_validation("stor0"));
        assert!(m.conclude_validation("stor0", true));
        assert_eq!(m.health("stor0"), Some(HealthState::Healthy));
        assert!(m.placement_eligible("stor0"));
        assert!(m.poll_config().alive.iter().any(|(id, _)| id == "stor0"));
    }

    #[test]
    fn mark_suspect_is_explicit_and_reversible() {
        let m = ClusterManager::new(100, 500);
        m.register("node000", ServiceRole::Compute);
        m.mark_suspect("node000");
        assert_eq!(m.health("node000"), Some(HealthState::Suspect));
        assert!(!m.placement_eligible("node000"));
        // Confirmation escalates; only validation readmits.
        m.mark_failed("node000");
        assert_eq!(m.health("node000"), Some(HealthState::Quarantined));
        m.mark_suspect("node000"); // no-op on quarantined services
        assert_eq!(m.health("node000"), Some(HealthState::Quarantined));
        assert!(m.begin_validation("node000"));
        assert!(m.conclude_validation("node000", true));
        assert_eq!(m.health("node000"), Some(HealthState::Healthy));
    }

    #[test]
    fn mark_failed_quarantines_immediately() {
        let m = ClusterManager::new(100, 500);
        m.register("stor0", ServiceRole::Storage);
        let v = m.poll_config().version;
        m.mark_failed("stor0");
        assert_eq!(m.health("stor0"), Some(HealthState::Quarantined));
        assert!(m.poll_config().version > v);
        assert_eq!(m.health_counts(), [0, 0, 1, 0, 0]);
    }

    #[test]
    fn probation_serves_but_reflaps_skip_suspect() {
        let m = ClusterManager::new(100, 500);
        m.register("node000", ServiceRole::Compute);
        m.mark_failed("node000");
        assert!(m.begin_validation("node000"));
        assert!(m.conclude_validation_to_probation("node000"));
        assert_eq!(m.health("node000"), Some(HealthState::Probation));
        // On probation the node serves: placement-eligible, in the
        // polled config, counted in its own bucket.
        assert!(m.placement_eligible("node000"));
        assert!(m.poll_config().alive.iter().any(|(id, _)| id == "node000"));
        assert_eq!(m.health_counts(), [0, 0, 0, 0, 1]);
        // Heartbeats and re-registration do not end probation early.
        m.heartbeat("node000");
        m.register("node000", ServiceRole::Compute);
        assert_eq!(m.health("node000"), Some(HealthState::Probation));
        // A re-flap during probation escalates straight to quarantine.
        let v = m.poll_config().version;
        m.mark_suspect("node000");
        assert_eq!(m.health("node000"), Some(HealthState::Quarantined));
        assert!(m.poll_config().version > v);
    }

    #[test]
    fn clean_probation_ends_in_full_health() {
        let m = ClusterManager::new(100, 500);
        m.register("node000", ServiceRole::Compute);
        m.mark_failed("node000");
        assert!(m.begin_validation("node000"));
        assert!(m.conclude_validation_to_probation("node000"));
        assert!(m.probation_pass("node000"));
        assert_eq!(m.health("node000"), Some(HealthState::Healthy));
        // probation_pass on a healthy node is a no-op.
        assert!(!m.probation_pass("node000"));
        // The classic validation path still readmits directly.
        m.mark_failed("node000");
        assert!(m.begin_validation("node000"));
        assert!(m.conclude_validation("node000", true));
        assert_eq!(m.health("node000"), Some(HealthState::Healthy));
    }

    #[test]
    fn silent_probation_node_times_out_to_quarantine() {
        let m = ClusterManager::new(100, 500);
        m.register("node000", ServiceRole::Compute);
        m.mark_failed("node000");
        assert!(m.begin_validation("node000"));
        m.tick(50);
        assert!(m.conclude_validation_to_probation("node000"));
        // Probation refreshes the heartbeat; going silent afterwards
        // escalates to quarantine at the full timeout like any server.
        m.tick(149);
        assert_eq!(m.health("node000"), Some(HealthState::Probation));
        m.tick(150);
        assert_eq!(m.health("node000"), Some(HealthState::Quarantined));
    }
}
