//! The 3FS client: striped chunk I/O over the chain table, with the batch
//! APIs the checkpoint manager builds on (§VII-A) and request-to-send
//! admission on reads (§VI-B3).

use crate::chain::{ChainError, ChainTable};
use crate::meta::{FileAttr, MetaError, MetaService};
use crate::target::ChunkId;
use ff_util::bytes::Bytes;
use ff_util::sync::{Condvar, Mutex, RwLock};
use std::sync::Arc;
use std::time::Duration;

/// Client-visible errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Metadata failure.
    Meta(MetaError),
    /// Storage failure.
    Chain(ChainError),
    /// Read past end of file.
    Eof,
}

impl From<MetaError> for FsError {
    fn from(e: MetaError) -> Self {
        FsError::Meta(e)
    }
}
impl From<ChainError> for FsError {
    fn from(e: ChainError) -> Self {
        FsError::Chain(e)
    }
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Meta(e) => write!(f, "metadata: {e}"),
            FsError::Chain(e) => write!(f, "storage chain: {e}"),
            FsError::Eof => write!(f, "read past end of file"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Meta(e) => Some(e),
            FsError::Chain(e) => Some(e),
            FsError::Eof => None,
        }
    }
}

impl From<FsError> for ff_util::FfError {
    fn from(e: FsError) -> Self {
        ff_util::FfError::with_source(ff_util::FfKind::Storage, e.to_string(), e)
    }
}

/// A counting semaphore: the client-side sender limit of the
/// request-to-send control ("the client limits the number of concurrent
/// senders").
struct Semaphore {
    state: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            state: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut n = self.state.lock();
        while *n == 0 {
            self.cv.wait(&mut n);
        }
        *n -= 1;
    }

    fn release(&self) {
        *self.state.lock() += 1;
        self.cv.notify_one();
    }
}

/// Bounded exponential backoff for chain operations failing with a
/// *transient* error ([`ChainError::Unavailable`] /
/// [`ChainError::Reconfiguring`]): the client rides through a chain
/// failover instead of surfacing it.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts before the error surfaces (1 = no retry).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each attempt.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

/// Called with the failing chain's id when the client sees a transient
/// chain error — the hook the cluster manager uses to trigger repair
/// (remove dead members, recruit a spare) before the client retries.
pub type FailoverHandler = Arc<dyn Fn(usize) + Send + Sync>;

/// A 3FS client bound to a meta service and a chain table.
pub struct Fs3Client {
    meta: MetaService,
    table: Arc<ChainTable>,
    read_permits: Semaphore,
    retry: RetryPolicy,
    failover: RwLock<Option<FailoverHandler>>,
}

impl Fs3Client {
    /// Connect with a read-concurrency limit (the RTS sender cap) and the
    /// default retry policy.
    pub fn new(meta: MetaService, table: Arc<ChainTable>, read_concurrency: usize) -> Arc<Self> {
        Self::with_retry_policy(meta, table, read_concurrency, RetryPolicy::default())
    }

    /// Connect with an explicit retry policy.
    pub fn with_retry_policy(
        meta: MetaService,
        table: Arc<ChainTable>,
        read_concurrency: usize,
        retry: RetryPolicy,
    ) -> Arc<Self> {
        Arc::new(Fs3Client {
            meta,
            table,
            read_permits: Semaphore::new(read_concurrency.max(1)),
            retry,
            failover: RwLock::new(None),
        })
    }

    /// Install the failover hook invoked (with the chain id) before each
    /// retry of a transient chain error.
    pub fn set_failover_handler(&self, handler: FailoverHandler) {
        *self.failover.write() = Some(handler);
    }

    /// Run `op` with bounded-exponential-backoff retry on transient chain
    /// errors, poking the failover handler between attempts.
    fn with_chain_retry<T>(
        &self,
        chain_id: usize,
        mut op: impl FnMut() -> Result<T, ChainError>,
    ) -> Result<T, ChainError> {
        let mut delay = self.retry.base_delay;
        let mut attempt = 0u32;
        loop {
            match op() {
                Err(e @ (ChainError::Unavailable | ChainError::Reconfiguring)) => {
                    attempt += 1;
                    if attempt >= self.retry.max_attempts {
                        return Err(e);
                    }
                    let handler = self.failover.read().clone();
                    if let Some(h) = handler {
                        h(chain_id);
                    }
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(self.retry.max_delay);
                }
                other => return other,
            }
        }
    }

    /// The metadata service handle.
    pub fn meta(&self) -> &MetaService {
        &self.meta
    }

    fn chain_of(&self, attr: &FileAttr, chunk_idx: u64) -> &Arc<crate::chain::Chain> {
        self.table
            .chain_for(attr.chain_offset as usize, attr.stripe as usize, chunk_idx)
    }

    /// Write `data` at `offset`, replacing or read-modify-writing the
    /// affected chunks and growing the file size. Returns bytes written.
    pub fn write_at(&self, attr: &FileAttr, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        let written = self.write_extent(attr, offset, data)?;
        self.meta.grow_size(attr.ino, offset + data.len() as u64)?;
        Ok(written)
    }

    /// Zero-copy fast path: write a `Bytes` payload that covers exactly
    /// one whole chunk (offset chunk-aligned, length = chunk size or the
    /// payload ends the write). Falls back to the general path otherwise.
    pub fn write_chunk(&self, attr: &FileAttr, offset: u64, data: Bytes) -> Result<usize, FsError> {
        let cs = attr.chunk_size;
        if offset.is_multiple_of(cs) && data.len() as u64 <= cs {
            let id = ChunkId {
                ino: attr.ino.0,
                idx: offset / cs,
            };
            let n = data.len();
            if n as u64 == cs {
                let chain = self.chain_of(attr, id.idx);
                self.with_chain_retry(chain.id(), || chain.write(id, data.clone()))?;
                return Ok(n);
            }
        }
        self.write_extent(attr, offset, &data)
    }

    /// The data path of `write_at`, without the size update — lets
    /// `batch_write` update the inode once instead of per part (256
    /// parallel CAS loops on one inode record otherwise).
    fn write_extent(&self, attr: &FileAttr, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        let cs = attr.chunk_size;
        assert!(cs > 0, "not a file");
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let chunk_idx = pos / cs;
            let in_chunk = (pos % cs) as usize;
            let n = ((cs as usize) - in_chunk).min(data.len() - written);
            let chain = self.chain_of(attr, chunk_idx);
            let id = ChunkId {
                ino: attr.ino.0,
                idx: chunk_idx,
            };
            if in_chunk == 0 && n == cs as usize {
                // Full-chunk replace: no read needed.
                let payload = Bytes::copy_from_slice(&data[written..written + n]);
                self.with_chain_retry(chain.id(), || chain.write(id, payload.clone()))?;
            } else {
                // Partial write: read-modify-write atomically under the
                // chain's per-object lock, so two concurrent partial
                // writers to the same chunk cannot lose each other.
                let patch = &data[written..written + n];
                self.with_chain_retry(chain.id(), || {
                    chain.update(id, |current| {
                        let mut buf = current.map(|b| b.to_vec()).unwrap_or_default();
                        if buf.len() < in_chunk + n {
                            buf.resize(in_chunk + n, 0);
                        }
                        buf[in_chunk..in_chunk + n].copy_from_slice(patch);
                        Bytes::from(buf)
                    })
                })?;
            }
            written += n;
        }
        Ok(written)
    }

    /// Read up to `len` bytes at `offset`. Short reads happen only at EOF.
    pub fn read_at(&self, attr: &FileAttr, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let size = self.meta.stat(attr.ino)?.size;
        if offset >= size {
            return Err(FsError::Eof);
        }
        let len = len.min((size - offset) as usize);
        let cs = attr.chunk_size;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let pos = offset + out.len() as u64;
            let chunk_idx = pos / cs;
            let in_chunk = (pos % cs) as usize;
            let n = ((cs as usize) - in_chunk).min(len - out.len());
            let id = ChunkId {
                ino: attr.ino.0,
                idx: chunk_idx,
            };
            self.read_permits.acquire();
            let chain = self.chain_of(attr, chunk_idx);
            let res = self.with_chain_retry(chain.id(), || chain.read(id));
            self.read_permits.release();
            match res {
                Ok(b) => {
                    let end = (in_chunk + n).min(b.len());
                    if in_chunk < b.len() {
                        out.extend_from_slice(&b[in_chunk..end]);
                    }
                    // Sparse tail within the chunk: zero-fill.
                    out.resize(out.len() + (n - end.saturating_sub(in_chunk)), 0);
                }
                Err(ChainError::NotFound) => out.resize(out.len() + n, 0), // hole
                Err(e) => return Err(e.into()),
            }
        }
        Ok(out)
    }

    /// Remove a file: unlink its metadata and delete every chunk from its
    /// chains (space reclamation).
    pub fn remove(&self, parent: crate::meta::InodeId, name: &str) -> Result<(), FsError> {
        let attr = self.meta.unlink(parent, name)?;
        if attr.chunk_size > 0 && attr.size > 0 {
            let chunks = attr.size.div_ceil(attr.chunk_size);
            for idx in 0..chunks {
                let id = ChunkId {
                    ino: attr.ino.0,
                    idx,
                };
                self.chain_of(&attr, idx).delete(id);
            }
        }
        Ok(())
    }

    /// The batch-write API (§VII-A): writes issued in parallel across
    /// chunks/chains — "significantly faster than normal writes".
    pub fn batch_write(
        self: &Arc<Self>,
        attr: &FileAttr,
        parts: Vec<(u64, Bytes)>,
    ) -> Result<usize, FsError> {
        let results: Vec<Result<usize, FsError>> = std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|(off, data)| {
                    let client = Arc::clone(self);
                    let attr = attr.clone();
                    let off = *off;
                    let data = data.clone();
                    s.spawn(move || client.write_chunk(&attr, off, data))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("writer panicked"))
                .collect()
        });
        let mut total = 0;
        for r in results {
            total += r?;
        }
        let end = parts
            .iter()
            .map(|(off, data)| off + data.len() as u64)
            .max()
            .unwrap_or(0);
        self.meta.grow_size(attr.ino, end)?;
        Ok(total)
    }

    /// The batch-read API: parallel reads under the RTS sender cap.
    pub fn batch_read(
        self: &Arc<Self>,
        attr: &FileAttr,
        parts: Vec<(u64, usize)>,
    ) -> Result<Vec<Vec<u8>>, FsError> {
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|(off, len)| {
                    let client = Arc::clone(self);
                    let attr = attr.clone();
                    let (off, len) = (*off, *len);
                    s.spawn(move || client.read_at(&attr, off, len))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reader panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Chain;
    use crate::kvstore::KvStore;
    use crate::meta::ROOT;
    use crate::target::{Disk, StorageTarget};

    fn setup(chunk_size: u64, stripe: u64) -> (Arc<Fs3Client>, FileAttr) {
        // 6 chains × 2 replicas over 4 disks (each disk serves targets of
        // multiple chains, like SSDs serving multiple storage targets).
        let disks: Vec<_> = (0..4).map(|_| Disk::new(64 << 20)).collect();
        let chains: Vec<_> = (0..6)
            .map(|c| {
                let reps = (0..2)
                    .map(|r| StorageTarget::new(format!("c{c}r{r}"), disks[(c + r) % 4].clone()))
                    .collect();
                Chain::new(c, reps)
            })
            .collect();
        let table = Arc::new(ChainTable::new(chains));
        let meta = MetaService::new(KvStore::new(8, 2), table.len());
        let client = Fs3Client::new(meta, table, 8);
        let attr = client
            .meta()
            .create(ROOT, "file", chunk_size, stripe)
            .unwrap();
        (client, attr)
    }

    #[test]
    fn write_read_roundtrip_across_chunks() {
        let (c, attr) = setup(16, 3);
        let data: Vec<u8> = (0..100u8).collect();
        assert_eq!(c.write_at(&attr, 0, &data).unwrap(), 100);
        assert_eq!(c.read_at(&attr, 0, 100).unwrap(), data);
        assert_eq!(c.meta().stat(attr.ino).unwrap().size, 100);
    }

    #[test]
    fn unaligned_offsets() {
        let (c, attr) = setup(16, 2);
        c.write_at(&attr, 0, &[0xAA; 64]).unwrap();
        c.write_at(&attr, 10, &[0xBB; 20]).unwrap();
        let got = c.read_at(&attr, 0, 64).unwrap();
        assert!(got[..10].iter().all(|&b| b == 0xAA));
        assert!(got[10..30].iter().all(|&b| b == 0xBB));
        assert!(got[30..].iter().all(|&b| b == 0xAA));
        // Partial mid-file read.
        assert_eq!(
            c.read_at(&attr, 25, 10).unwrap(),
            vec![0xBB, 0xBB, 0xBB, 0xBB, 0xBB, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA]
        );
    }

    #[test]
    fn holes_read_as_zeros() {
        let (c, attr) = setup(16, 2);
        c.write_at(&attr, 40, &[7u8; 8]).unwrap();
        let got = c.read_at(&attr, 0, 48).unwrap();
        assert!(got[..40].iter().all(|&b| b == 0));
        assert!(got[40..].iter().all(|&b| b == 7));
    }

    #[test]
    fn eof_and_short_reads() {
        let (c, attr) = setup(16, 2);
        c.write_at(&attr, 0, &[1u8; 20]).unwrap();
        assert_eq!(c.read_at(&attr, 20, 1), Err(FsError::Eof));
        assert_eq!(c.read_at(&attr, 15, 100).unwrap(), vec![1u8; 5]);
    }

    #[test]
    fn chunks_spread_over_stripe_chains() {
        let (c, attr) = setup(16, 3);
        c.write_at(&attr, 0, &[5u8; 16 * 6]).unwrap();
        // Chunks 0..6 with stripe 3 → exactly 3 distinct chains used.
        let mut used: Vec<usize> = (0..6).map(|i| c.chain_of(&attr, i).id()).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn batch_write_then_batch_read() {
        let (c, attr) = setup(1 << 10, 4);
        let parts: Vec<(u64, Bytes)> = (0..8u64)
            .map(|i| (i * 1024, Bytes::from(vec![i as u8; 1024])))
            .collect();
        assert_eq!(c.batch_write(&attr, parts).unwrap(), 8 * 1024);
        let reads = c
            .batch_read(&attr, (0..8u64).map(|i| (i * 1024, 1024)).collect())
            .unwrap();
        for (i, r) in reads.iter().enumerate() {
            assert_eq!(r, &vec![i as u8; 1024]);
        }
    }

    #[test]
    fn concurrent_partial_writes_to_one_chunk_do_not_lose_updates() {
        // Regression: the read-modify-write of partial chunk writes runs
        // under the chain's per-object lock, so concurrent writers to
        // disjoint ranges of the same chunk both land.
        let (c, attr) = setup(1 << 10, 2);
        c.write_at(&attr, 0, &[0u8; 1 << 10]).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u8 {
                let c = Arc::clone(&c);
                let attr = attr.clone();
                s.spawn(move || {
                    // Each writer owns a disjoint 128-byte range, written
                    // many times to stretch the race window.
                    for _ in 0..50 {
                        c.write_at(&attr, t as u64 * 128, &[t + 1; 128]).unwrap();
                    }
                });
            }
        });
        let got = c.read_at(&attr, 0, 1 << 10).unwrap();
        for t in 0..8u8 {
            let seg = &got[t as usize * 128..(t as usize + 1) * 128];
            assert!(
                seg.iter().all(|&b| b == t + 1),
                "writer {t}'s range was clobbered"
            );
        }
    }

    fn setup_with_targets(
        chunk_size: u64,
    ) -> (Arc<Fs3Client>, FileAttr, Vec<Vec<Arc<StorageTarget>>>) {
        let chains_targets: Vec<Vec<Arc<StorageTarget>>> = (0..2)
            .map(|c| {
                (0..2)
                    .map(|r| StorageTarget::new(format!("c{c}r{r}"), Disk::new(64 << 20)))
                    .collect()
            })
            .collect();
        let chains: Vec<_> = chains_targets
            .iter()
            .enumerate()
            .map(|(c, reps)| Chain::new(c, reps.clone()))
            .collect();
        let table = Arc::new(ChainTable::new(chains));
        let meta = MetaService::new(KvStore::new(8, 2), table.len());
        let client = Fs3Client::new(meta, table, 8);
        let attr = client.meta().create(ROOT, "file", chunk_size, 2).unwrap();
        (client, attr, chains_targets)
    }

    #[test]
    fn writes_ride_through_failover_via_retry_hook() {
        let (c, attr, targets) = setup_with_targets(64);
        c.write_at(&attr, 0, &[1u8; 128]).unwrap();
        // Kill one replica of chain 0: the next write to it bounces with
        // Unavailable, the failover hook repairs the chain (drops the dead
        // member), and the retry succeeds.
        targets[0][1].fail();
        let table = Arc::clone(&c.table);
        let repairs = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let repairs_hook = Arc::clone(&repairs);
        c.set_failover_handler(Arc::new(move |chain_id| {
            table.chains()[chain_id].remove_dead();
            repairs_hook.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }));
        c.write_at(&attr, 0, &[2u8; 128]).unwrap();
        assert!(repairs.load(std::sync::atomic::Ordering::Relaxed) >= 1);
        assert_eq!(c.read_at(&attr, 0, 128).unwrap(), vec![2u8; 128]);
    }

    #[test]
    fn retry_is_bounded_without_a_repair() {
        let (c, attr, targets) = setup_with_targets(64);
        c.write_at(&attr, 0, &[1u8; 64]).unwrap();
        for reps in &targets {
            for t in reps {
                t.fail();
            }
        }
        // No failover handler: the error surfaces after max_attempts.
        assert_eq!(
            c.write_at(&attr, 0, &[2u8; 64]),
            Err(FsError::Chain(ChainError::Unavailable))
        );
    }

    #[test]
    fn concurrent_clients_distinct_files() {
        let (c, _) = setup(256, 2);
        std::thread::scope(|s| {
            for t in 0..6 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let attr = c.meta().create(ROOT, &format!("t{t}"), 256, 2).unwrap();
                    let data = vec![t as u8; 1000];
                    c.write_at(&attr, 0, &data).unwrap();
                    assert_eq!(c.read_at(&attr, 0, 1000).unwrap(), data);
                });
            }
        });
    }
}
