//! 3FS-KV (§VI-B4): "a shared-storage distributed data processing system
//! built on top of 3FS, currently supporting three models: key-value,
//! message queue, and object storage."
//!
//! All three are thin layers over [`Fs3Client`] files, so they inherit
//! 3FS's replication, striping and throughput — the "read-write
//! separation and on-demand startup" design: any reader process can open
//! the same underlying files.

use crate::client::{Fs3Client, FsError};
use crate::meta::{FileAttr, MetaError, ROOT};
use ff_util::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Record framing: `[u32 key_len][key][u32 val_len][val]` appended to a
/// log file; an in-memory index maps keys to their latest offset. This is
/// the LSM-without-compaction shape a KV cache wants (§VI-B4's "KV Context
/// Caching on Disk").
pub struct KvOnFs {
    client: Arc<Fs3Client>,
    file: FileAttr,
    index: Mutex<HashMap<Vec<u8>, (u64, u32)>>, // key -> (value offset, len)
    tail: Mutex<u64>,
}

impl KvOnFs {
    /// Create (or reuse) the backing file `name` under the root.
    pub fn create(client: Arc<Fs3Client>, name: &str) -> Result<KvOnFs, FsError> {
        let file = match client.meta().create(ROOT, name, 1 << 20, 4) {
            Ok(f) => f,
            Err(MetaError::Exists) => client.meta().resolve(&format!("/{name}"))?,
            Err(e) => return Err(e.into()),
        };
        Ok(KvOnFs {
            client,
            file,
            index: Mutex::new(HashMap::new()),
            tail: Mutex::new(0),
        })
    }

    /// Insert or overwrite a key (appends; the index points at the newest
    /// record).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), FsError> {
        let mut rec = Vec::with_capacity(8 + key.len() + value.len());
        rec.extend_from_slice(&(key.len() as u32).to_be_bytes());
        rec.extend_from_slice(key);
        rec.extend_from_slice(&(value.len() as u32).to_be_bytes());
        rec.extend_from_slice(value);
        // One critical section covers allocation, the write and the index
        // update: if they were separate, two concurrent puts of the same
        // key could install their index entries in the opposite order of
        // their log offsets, leaving "latest" pointing at the older value.
        let mut tail = self.tail.lock();
        let off = *tail;
        *tail += rec.len() as u64;
        self.client.write_at(&self.file, off, &rec)?;
        let val_off = off + 8 + key.len() as u64;
        self.index
            .lock()
            .insert(key.to_vec(), (val_off, value.len() as u32));
        Ok(())
    }

    /// Fetch the latest value for a key.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, FsError> {
        let loc = self.index.lock().get(key).copied();
        match loc {
            None => Ok(None),
            Some((off, len)) => Ok(Some(self.client.read_at(&self.file, off, len as usize)?)),
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.lock().len()
    }

    /// True when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A multi-producer, position-tracked message queue on one log file.
pub struct QueueOnFs {
    client: Arc<Fs3Client>,
    file: FileAttr,
    offsets: Mutex<Vec<(u64, u32)>>, // per-message (offset, len)
}

impl QueueOnFs {
    /// Create the queue's backing file.
    pub fn create(client: Arc<Fs3Client>, name: &str) -> Result<QueueOnFs, FsError> {
        let file = client.meta().create(ROOT, name, 1 << 20, 4)?;
        Ok(QueueOnFs {
            client,
            file,
            offsets: Mutex::new(Vec::new()),
        })
    }

    /// Append a message; returns its sequence number.
    pub fn publish(&self, msg: &[u8]) -> Result<u64, FsError> {
        let (seq, off) = {
            let mut offs = self.offsets.lock();
            let off = offs.last().map(|&(o, l)| o + l as u64).unwrap_or(0);
            let seq = offs.len() as u64;
            offs.push((off, msg.len() as u32));
            (seq, off)
        };
        self.client.write_at(&self.file, off, msg)?;
        Ok(seq)
    }

    /// Read message `seq` (consumers track their own positions —
    /// read-write separation).
    pub fn fetch(&self, seq: u64) -> Result<Option<Vec<u8>>, FsError> {
        let loc = self.offsets.lock().get(seq as usize).copied();
        match loc {
            None => Ok(None),
            Some((off, len)) => Ok(Some(self.client.read_at(&self.file, off, len as usize)?)),
        }
    }

    /// Messages published so far.
    pub fn len(&self) -> u64 {
        self.offsets.lock().len() as u64
    }

    /// True when nothing was published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Object storage: each object is its own 3FS file under a bucket
/// directory.
pub struct ObjectStoreOnFs {
    client: Arc<Fs3Client>,
    bucket: FileAttr,
}

impl ObjectStoreOnFs {
    /// Create a bucket.
    pub fn create(client: Arc<Fs3Client>, bucket: &str) -> Result<ObjectStoreOnFs, FsError> {
        let bucket = client.meta().mkdir(ROOT, bucket)?;
        Ok(ObjectStoreOnFs { client, bucket })
    }

    /// Store an object.
    pub fn put(&self, key: &str, data: &[u8]) -> Result<(), FsError> {
        let f = match self.client.meta().create(self.bucket.ino, key, 1 << 20, 4) {
            Ok(f) => f,
            Err(MetaError::Exists) => {
                let ino = self.client.meta().lookup(self.bucket.ino, key)?;
                self.client.meta().stat(ino)?
            }
            Err(e) => return Err(e.into()),
        };
        self.client.meta().set_size(f.ino, 0)?;
        self.client.write_at(&f, 0, data)?;
        Ok(())
    }

    /// Retrieve an object.
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>, FsError> {
        match self.client.meta().lookup(self.bucket.ino, key) {
            Err(MetaError::NotFound) => Ok(None),
            Err(e) => Err(e.into()),
            Ok(ino) => {
                let attr = self.client.meta().stat(ino)?;
                if attr.size == 0 {
                    return Ok(Some(Vec::new()));
                }
                Ok(Some(self.client.read_at(&attr, 0, attr.size as usize)?))
            }
        }
    }

    /// Delete an object; true if it existed.
    pub fn delete(&self, key: &str) -> Result<bool, FsError> {
        match self.client.meta().unlink(self.bucket.ino, key) {
            Ok(_) => Ok(true),
            Err(MetaError::NotFound) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// List object keys.
    pub fn list(&self) -> Result<Vec<String>, FsError> {
        Ok(self
            .client
            .meta()
            .readdir(self.bucket.ino)?
            .into_iter()
            .map(|(n, _)| n)
            .collect())
    }
}

/// The §VI-B4 economics: "3FS-KV supports DeepSeek's KV Context Caching
/// on Disk technology, which reduces the cost of LLM serving by an order
/// of magnitude." A cached context token costs a 3FS read of its KV-cache
/// entry instead of a GPU prefill pass; this model quantifies the ratio.
#[derive(Debug, Clone)]
pub struct ServingCostModel {
    /// Model parameters active per token (prefill FLOPs = 2 × this).
    pub active_params: f64,
    /// Sustained GPU throughput, FLOP/s.
    pub gpu_flops: f64,
    /// GPU cost, $/hour.
    pub gpu_cost_per_hour: f64,
    /// KV-cache bytes per token (2 × layers × kv_heads × head_dim × 2B,
    /// fwd key+value).
    pub kv_bytes_per_token: f64,
    /// Storage read throughput available to the serving node, bytes/s.
    pub storage_read_bps: f64,
    /// Storage cost, $/hour per serving node's share.
    pub storage_cost_per_hour: f64,
}

impl ServingCostModel {
    /// A DeepSeek-V2-class configuration on this cluster's hardware.
    pub fn deepseek_v2_class() -> Self {
        ServingCostModel {
            active_params: 21e9,
            gpu_flops: 220e12 * 0.4,
            gpu_cost_per_hour: 2.0,
            // 60 layers × compressed KV (MLA) ≈ 70 KB/token equivalent.
            kv_bytes_per_token: 70e3,
            storage_read_bps: 3e9, // one client's share of 3FS
            storage_cost_per_hour: 0.2,
        }
    }

    /// Cost of prefilling one input token on the GPU, dollars.
    pub fn prefill_cost_per_token(&self) -> f64 {
        let secs = 2.0 * self.active_params / self.gpu_flops;
        secs * self.gpu_cost_per_hour / 3600.0
    }

    /// Cost of serving one cached token from 3FS-KV, dollars.
    pub fn cached_cost_per_token(&self) -> f64 {
        let secs = self.kv_bytes_per_token / self.storage_read_bps;
        secs * self.storage_cost_per_hour / 3600.0
    }

    /// Cost ratio prefill : cached — the paper's "order of magnitude".
    pub fn savings_ratio(&self) -> f64 {
        self.prefill_cost_per_token() / self.cached_cost_per_token()
    }

    /// Blended cost per input token at a given cache hit rate.
    pub fn blended_cost(&self, hit_rate: f64) -> f64 {
        assert!((0.0..=1.0).contains(&hit_rate));
        hit_rate * self.cached_cost_per_token() + (1.0 - hit_rate) * self.prefill_cost_per_token()
    }
}

/// Convenience: all three models over one client.
pub fn open_all(client: &Arc<Fs3Client>) -> (KvOnFs, QueueOnFs, ObjectStoreOnFs) {
    (
        KvOnFs::create(client.clone(), "_kv.log").expect("kv"),
        QueueOnFs::create(client.clone(), "_mq.log").expect("mq"),
        ObjectStoreOnFs::create(client.clone(), "_objects").expect("objects"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{Chain, ChainTable};
    use crate::kvstore::KvStore;
    use crate::meta::MetaService;
    use crate::target::{Disk, StorageTarget};

    fn client() -> Arc<Fs3Client> {
        let chains: Vec<_> = (0..4)
            .map(|c| {
                Chain::new(
                    c,
                    vec![StorageTarget::new(format!("t{c}"), Disk::new(32 << 20))],
                )
            })
            .collect();
        let table = Arc::new(ChainTable::new(chains));
        let meta = MetaService::new(KvStore::new(4, 2), table.len());
        Fs3Client::new(meta, table, 8)
    }

    #[test]
    fn kv_put_get_overwrite() {
        let kv = KvOnFs::create(client(), "kv").unwrap();
        kv.put(b"model", b"v1").unwrap();
        kv.put(b"data", b"tokens").unwrap();
        assert_eq!(kv.get(b"model").unwrap().unwrap(), b"v1");
        kv.put(b"model", b"v2-longer").unwrap();
        assert_eq!(kv.get(b"model").unwrap().unwrap(), b"v2-longer");
        assert_eq!(kv.get(b"absent").unwrap(), None);
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn kv_concurrent_producers() {
        let kv = Arc::new(KvOnFs::create(client(), "kv").unwrap());
        std::thread::scope(|s| {
            for t in 0..4 {
                let kv = kv.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        kv.put(
                            format!("t{t}k{i}").as_bytes(),
                            format!("v{t}:{i}").as_bytes(),
                        )
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(kv.len(), 200);
        assert_eq!(kv.get(b"t2k17").unwrap().unwrap(), b"v2:17");
    }

    #[test]
    fn queue_publish_fetch_in_order() {
        let q = QueueOnFs::create(client(), "mq").unwrap();
        for i in 0..10 {
            let seq = q.publish(format!("msg{i}").as_bytes()).unwrap();
            assert_eq!(seq, i);
        }
        // Two independent consumers read all messages.
        for _consumer in 0..2 {
            for i in 0..10 {
                assert_eq!(q.fetch(i).unwrap().unwrap(), format!("msg{i}").as_bytes());
            }
        }
        assert_eq!(q.fetch(10).unwrap(), None);
    }

    #[test]
    fn object_store_crud() {
        let os = ObjectStoreOnFs::create(client(), "bucket").unwrap();
        os.put("a.bin", &[1, 2, 3]).unwrap();
        os.put("b.bin", &[4; 5000]).unwrap();
        assert_eq!(os.get("a.bin").unwrap().unwrap(), vec![1, 2, 3]);
        assert_eq!(os.get("b.bin").unwrap().unwrap(), vec![4; 5000]);
        assert_eq!(os.list().unwrap(), vec!["a.bin", "b.bin"]);
        os.put("a.bin", &[9]).unwrap(); // overwrite
        assert_eq!(os.get("a.bin").unwrap().unwrap(), vec![9]);
        assert!(os.delete("a.bin").unwrap());
        assert!(!os.delete("a.bin").unwrap());
        assert_eq!(os.get("a.bin").unwrap(), None);
    }

    #[test]
    fn kv_cache_saves_an_order_of_magnitude() {
        // §VI-B4's claim, quantified: serving a cached token from 3FS-KV
        // is ≥10× cheaper than recomputing its prefill on the GPU.
        let m = ServingCostModel::deepseek_v2_class();
        assert!(
            m.savings_ratio() >= 10.0,
            "savings ratio {:.1}",
            m.savings_ratio()
        );
        // Blended cost interpolates and is monotone in the hit rate.
        assert!(m.blended_cost(0.0) > m.blended_cost(0.5));
        assert!(m.blended_cost(0.5) > m.blended_cost(1.0));
        assert_eq!(m.blended_cost(1.0), m.cached_cost_per_token());
    }

    #[test]
    fn all_three_models_coexist() {
        let c = client();
        let (kv, q, os) = open_all(&c);
        kv.put(b"k", b"v").unwrap();
        q.publish(b"m").unwrap();
        os.put("o", b"data").unwrap();
        assert_eq!(kv.get(b"k").unwrap().unwrap(), b"v");
        assert_eq!(q.fetch(0).unwrap().unwrap(), b"m");
        assert_eq!(os.get("o").unwrap().unwrap(), b"data");
    }
}
