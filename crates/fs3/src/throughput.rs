//! The §VI-B2 aggregate-throughput experiment on the network simulator.
//!
//! "With totally 360 × 200 Gbps outbound InfiniBand HCAs, the system can
//! total provide 9 TB/s outbound bandwidth, and we actually achieved total
//! read throughput of 8 TB/s." Storage nodes are dual-homed across the two
//! fat-tree zones; clients read with the request-to-send control (a grant
//! round-trip before every transfer, bounded concurrency per client).

use ff_desim::{FlowId, FluidSim, ResourceId, SimDuration, SimTime};
use ff_hw::StorageNodeSpec;
use ff_net::{NetResources, RtsController, ServiceLevel, VlConfig};
use ff_topo::fattree::{TwoZoneNetwork, TwoZoneSpec};
use ff_topo::routing::{RoutePolicy, Router};
use std::collections::HashMap;

/// Parameters of the throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Storage nodes (each dual-homed, 2 NICs).
    pub storage_nodes: usize,
    /// Reading clients (compute nodes, 1 NIC each).
    pub clients: usize,
    /// Read request size, bytes.
    pub request_bytes: f64,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// RTS concurrency limit per client.
    pub rts_limit: usize,
    /// RTS grant round-trip.
    pub rts_rtt: SimDuration,
}

impl ThroughputConfig {
    /// A laptop-scale run with the paper's shape (1:6.7 storage:client).
    pub fn scaled() -> Self {
        ThroughputConfig {
            storage_nodes: 18,
            clients: 120,
            request_bytes: 4.0 * 1024.0 * 1024.0,
            requests_per_client: 24,
            rts_limit: 8,
            rts_rtt: SimDuration::from_micros(10),
        }
    }

    /// The full paper deployment: 180 storage nodes, 1,200 clients.
    /// Slower to simulate; used by the bench harness.
    pub fn paper() -> Self {
        ThroughputConfig {
            storage_nodes: 180,
            clients: 1200,
            request_bytes: 4.0 * 1024.0 * 1024.0,
            requests_per_client: 16,
            rts_limit: 8,
            rts_rtt: SimDuration::from_micros(10),
        }
    }
}

/// Results of the throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Aggregate delivered read bandwidth, bytes/second.
    pub achieved_bps: f64,
    /// Theoretical ceiling: storage NIC egress total.
    pub theoretical_bps: f64,
    /// achieved / theoretical.
    pub efficiency: f64,
}

/// Run the aggregate read-throughput experiment.
#[allow(clippy::needless_range_loop)] // client index is identity, not iteration artifact
pub fn run(cfg: &ThroughputConfig) -> ThroughputResult {
    let spec = StorageNodeSpec::paper();
    let net = TwoZoneNetwork::build(&TwoZoneSpec::scaled(
        cfg.clients.div_ceil(2),
        cfg.storage_nodes,
    ));
    let mut fluid = FluidSim::new();
    let resources = NetResources::install(&mut fluid, &net.topo, VlConfig::shared());
    // Each storage node's SSD array: aggregate read bandwidth resource.
    let ssd: Vec<ResourceId> = (0..cfg.storage_nodes)
        .map(|i| fluid.add_resource(format!("stor{i}/ssds"), spec.ssd_read_total()))
        .collect();
    let router = Router::new(&net.topo, RoutePolicy::StaticByDestination);

    // Per-client request streams.
    struct Pending {
        at: SimTime,
        client: usize,
        req: usize,
    }
    let mut rts: Vec<RtsController<usize>> = (0..cfg.clients)
        .map(|_| RtsController::new(cfg.rts_limit))
        .collect();
    // Every request asks for a grant up front; the controller admits up to
    // the limit and queues the rest, handing grants over as transfers
    // finish.
    let mut pending: Vec<Pending> = Vec::new();
    for c in 0..cfg.clients {
        for r in 0..cfg.requests_per_client {
            if rts[c].request(r).is_some() {
                pending.push(Pending {
                    at: SimTime::ZERO + cfg.rts_rtt,
                    client: c,
                    req: r,
                });
            }
        }
    }
    pending.sort_by_key(|p| p.at);
    let mut next_pending = 0usize;
    let mut flows: HashMap<FlowId, usize> = HashMap::new(); // flow -> client
    let mut served: Vec<usize> = vec![0; cfg.clients];
    let mut makespan = SimTime::ZERO;
    let mut req_counter = 0u64;

    loop {
        let next_start = pending.get(next_pending).map(|p| p.at);
        let next_done = fluid.next_completion_time();
        match (next_start, next_done) {
            (None, None) => break,
            (Some(ts), nd) if nd.is_none() || ts <= nd.unwrap() => {
                fluid.advance_to(ts);
                let p = &pending[next_pending];
                let (client, _req) = (p.client, p.req);
                next_pending += 1;
                // Spread requests over storage nodes.
                req_counter += 1;
                let stor = (client as u64 * 31 + req_counter) as usize % cfg.storage_nodes;
                let src = net.storage[stor];
                let dst = net.compute[client % net.compute.len()];
                let path = router.route(src, dst, req_counter, &|_| 0.0);
                let mut route = resources.path_route(&net.topo, src, &path, ServiceLevel::Storage);
                route.push(ssd[stor], 1.0);
                let f = fluid.start_flow(cfg.request_bytes, &route);
                flows.insert(f, client);
            }
            _ => {
                let (t, done) = fluid.advance_to_next_completion().expect("active flows");
                makespan = t;
                for f in done {
                    let client = flows.remove(&f).expect("tracked");
                    served[client] += 1;
                    if let Some(next) = rts[client].complete() {
                        pending.push(Pending {
                            at: t + cfg.rts_rtt,
                            client,
                            req: next,
                        });
                        pending[next_pending..].sort_by_key(|p| p.at);
                    }
                }
            }
        }
    }
    let total_requests: usize = served.iter().sum();
    let bytes = total_requests as f64 * cfg.request_bytes;
    let achieved = bytes / makespan.as_secs_f64().max(1e-12);
    let theoretical = cfg.storage_nodes as f64 * spec.outbound_bw();
    ThroughputResult {
        achieved_bps: achieved,
        theoretical_bps: theoretical,
        efficiency: achieved / theoretical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_run_reaches_most_of_theoretical() {
        // Paper: 8 TB/s of a 9 TB/s ceiling ≈ 89%. The scaled run should
        // land in the same efficiency regime.
        // Debug-build-friendly subset of the scaled preset.
        let r = run(&ThroughputConfig {
            storage_nodes: 8,
            clients: 56,
            requests_per_client: 10,
            ..ThroughputConfig::scaled()
        });
        assert!(
            r.efficiency > 0.70 && r.efficiency <= 1.0,
            "efficiency {} (achieved {:.2} GB/s of {:.2} GB/s)",
            r.efficiency,
            r.achieved_bps / 1e9,
            r.theoretical_bps / 1e9
        );
    }

    #[test]
    fn throughput_scales_with_storage_nodes() {
        let small = run(&ThroughputConfig {
            storage_nodes: 3,
            clients: 20,
            requests_per_client: 8,
            ..ThroughputConfig::scaled()
        });
        let big = run(&ThroughputConfig {
            storage_nodes: 6,
            clients: 40,
            requests_per_client: 8,
            ..ThroughputConfig::scaled()
        });
        assert!(
            big.achieved_bps > small.achieved_bps * 1.5,
            "{} vs {}",
            big.achieved_bps,
            small.achieved_bps
        );
    }

    #[test]
    fn starved_clients_cap_throughput() {
        // Few clients: the client NICs (25 GB/s each) bound the system,
        // not the storage NICs.
        let r = run(&ThroughputConfig {
            storage_nodes: 12,
            clients: 6,
            requests_per_client: 12,
            ..ThroughputConfig::scaled()
        });
        let client_bound = 6.0 * 25e9;
        assert!(
            r.achieved_bps <= client_bound * 1.01,
            "{} > {}",
            r.achieved_bps,
            client_bound
        );
        assert!(r.efficiency < 0.6);
    }
}
