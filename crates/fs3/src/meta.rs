//! The meta service: file-system metadata as KV pairs (§VI-B3).
//!
//! "Each file or directory has a unique inode ID. The file inode/directory
//! ID and meta data ... are stored as key-value pairs in the inode table.
//! A separate directory entry table stores key-value pairs of
//! `(parent_dir_inode_id, entry_name): (entry_inode_id, ...)`." Meta
//! services are stateless over the KV store, so "several meta services run
//! concurrently to handle meta requests from clients" — construct as many
//! [`MetaService`] handles as you like over one [`KvStore`].

use crate::kvstore::KvStore;
use ff_util::bytes::Bytes;
use std::sync::Arc;

/// An inode number. Root is `InodeId(1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeId(pub u64);

/// The root directory's inode.
pub const ROOT: InodeId = InodeId(1);

/// Inode kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// Inode contents: attributes plus the file's placement in the chain
/// table ("the meta service selects an offset in the chain table and a
/// stripe size k for each file").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAttr {
    /// Inode id.
    pub ino: InodeId,
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes (files).
    pub size: u64,
    /// Chunk size in bytes.
    pub chunk_size: u64,
    /// Start offset in the chain table.
    pub chain_offset: u64,
    /// Stripe width k.
    pub stripe: u64,
}

impl FileAttr {
    fn encode(&self) -> Bytes {
        let mut v = Vec::with_capacity(41);
        v.extend_from_slice(&self.ino.0.to_be_bytes());
        v.push(match self.kind {
            FileKind::File => 0,
            FileKind::Dir => 1,
        });
        v.extend_from_slice(&self.size.to_be_bytes());
        v.extend_from_slice(&self.chunk_size.to_be_bytes());
        v.extend_from_slice(&self.chain_offset.to_be_bytes());
        v.extend_from_slice(&self.stripe.to_be_bytes());
        Bytes::from(v)
    }

    fn decode(b: &[u8]) -> FileAttr {
        assert_eq!(b.len(), 41, "corrupt inode record");
        let u = |r: std::ops::Range<usize>| u64::from_be_bytes(b[r].try_into().unwrap());
        FileAttr {
            ino: InodeId(u(0..8)),
            kind: if b[8] == 0 {
                FileKind::File
            } else {
                FileKind::Dir
            },
            size: u(9..17),
            chunk_size: u(17..25),
            chain_offset: u(25..33),
            stripe: u(33..41),
        }
    }
}

/// Errors from metadata operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// Path or entry not found.
    NotFound,
    /// Entry already exists.
    Exists,
    /// Operation needs a directory but found a file (or vice versa).
    WrongKind,
    /// Directory not empty on unlink.
    NotEmpty,
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::NotFound => write!(f, "path or entry not found"),
            MetaError::Exists => write!(f, "entry already exists"),
            MetaError::WrongKind => write!(f, "wrong entry kind for operation"),
            MetaError::NotEmpty => write!(f, "directory not empty"),
        }
    }
}

impl std::error::Error for MetaError {}

impl From<MetaError> for ff_util::FfError {
    fn from(e: MetaError) -> Self {
        ff_util::FfError::with_source(ff_util::FfKind::Storage, e.to_string(), e)
    }
}

fn inode_key(ino: InodeId) -> Vec<u8> {
    let mut k = b"i/".to_vec();
    k.extend_from_slice(&ino.0.to_be_bytes());
    k
}

fn dirent_key(parent: InodeId, name: &str) -> Vec<u8> {
    let mut k = b"d/".to_vec();
    k.extend_from_slice(&parent.0.to_be_bytes());
    k.push(b'/');
    k.extend_from_slice(name.as_bytes());
    k
}

fn dirent_prefix(parent: InodeId) -> Vec<u8> {
    let mut k = b"d/".to_vec();
    k.extend_from_slice(&parent.0.to_be_bytes());
    k.push(b'/');
    k
}

const NEXT_INO_KEY: &[u8] = b"meta/next_ino";
const NEXT_CHAIN_KEY: &[u8] = b"meta/next_chain_offset";

/// A stateless metadata service handle over a shared KV store.
#[derive(Clone)]
pub struct MetaService {
    kv: Arc<KvStore>,
    chains: u64,
}

impl MetaService {
    /// Connect a meta service to `kv`; `chains` is the chain-table length
    /// used to place new files. Initializes the root directory on first
    /// use (idempotent across concurrent services).
    pub fn new(kv: Arc<KvStore>, chains: usize) -> MetaService {
        let svc = MetaService {
            kv,
            chains: chains.max(1) as u64,
        };
        let root = FileAttr {
            ino: ROOT,
            kind: FileKind::Dir,
            size: 0,
            chunk_size: 0,
            chain_offset: 0,
            stripe: 0,
        };
        let _ = svc.kv.cas(&inode_key(ROOT), None, root.encode());
        let _ = svc
            .kv
            .cas(NEXT_INO_KEY, None, Bytes::from(2u64.to_be_bytes().to_vec()));
        let _ = svc.kv.cas(
            NEXT_CHAIN_KEY,
            None,
            Bytes::from(0u64.to_be_bytes().to_vec()),
        );
        svc
    }

    fn alloc_u64(&self, key: &[u8]) -> u64 {
        loop {
            let cur = self.kv.get(key).expect("counter initialized");
            let val = u64::from_be_bytes(cur.as_ref().try_into().expect("u64 counter"));
            let next = Bytes::from((val + 1).to_be_bytes().to_vec());
            if self.kv.cas(key, Some(cur.as_ref()), next) {
                return val;
            }
        }
    }

    /// Inode attributes.
    pub fn stat(&self, ino: InodeId) -> Result<FileAttr, MetaError> {
        self.kv
            .get(&inode_key(ino))
            .map(|b| FileAttr::decode(&b))
            .ok_or(MetaError::NotFound)
    }

    /// Look up one directory entry.
    pub fn lookup(&self, parent: InodeId, name: &str) -> Result<InodeId, MetaError> {
        let b = self
            .kv
            .get(&dirent_key(parent, name))
            .ok_or(MetaError::NotFound)?;
        Ok(InodeId(u64::from_be_bytes(
            b.as_ref().try_into().expect("ino"),
        )))
    }

    /// Resolve an absolute `/a/b/c` path to its attributes.
    pub fn resolve(&self, path: &str) -> Result<FileAttr, MetaError> {
        let mut at = ROOT;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            at = self.lookup(at, part)?;
        }
        self.stat(at)
    }

    fn insert_entry(
        &self,
        parent: InodeId,
        name: &str,
        attr: FileAttr,
    ) -> Result<FileAttr, MetaError> {
        assert!(!name.is_empty() && !name.contains('/'), "bad entry name");
        let pattr = self.stat(parent)?;
        if pattr.kind != FileKind::Dir {
            return Err(MetaError::WrongKind);
        }
        // Dirent first (the uniqueness point), inode record second.
        let ino_bytes = Bytes::from(attr.ino.0.to_be_bytes().to_vec());
        if !self.kv.cas(&dirent_key(parent, name), None, ino_bytes) {
            return Err(MetaError::Exists);
        }
        self.kv.put(&inode_key(attr.ino), attr.encode());
        Ok(attr)
    }

    /// Create a directory.
    pub fn mkdir(&self, parent: InodeId, name: &str) -> Result<FileAttr, MetaError> {
        let ino = InodeId(self.alloc_u64(NEXT_INO_KEY));
        self.insert_entry(
            parent,
            name,
            FileAttr {
                ino,
                kind: FileKind::Dir,
                size: 0,
                chunk_size: 0,
                chain_offset: 0,
                stripe: 0,
            },
        )
    }

    /// Create a file, placing it on the chain table: a fresh offset and
    /// the requested stripe width.
    pub fn create(
        &self,
        parent: InodeId,
        name: &str,
        chunk_size: u64,
        stripe: u64,
    ) -> Result<FileAttr, MetaError> {
        assert!(chunk_size > 0 && stripe > 0);
        let ino = InodeId(self.alloc_u64(NEXT_INO_KEY));
        let chain_offset = self.alloc_u64(NEXT_CHAIN_KEY) % self.chains;
        self.insert_entry(
            parent,
            name,
            FileAttr {
                ino,
                kind: FileKind::File,
                size: 0,
                chunk_size,
                chain_offset,
                stripe,
            },
        )
    }

    /// List a directory.
    pub fn readdir(&self, parent: InodeId) -> Result<Vec<(String, InodeId)>, MetaError> {
        let pattr = self.stat(parent)?;
        if pattr.kind != FileKind::Dir {
            return Err(MetaError::WrongKind);
        }
        let prefix = dirent_prefix(parent);
        Ok(self
            .kv
            .scan_prefix(&prefix)
            .into_iter()
            .map(|(k, v)| {
                let name = String::from_utf8_lossy(&k[prefix.len()..]).into_owned();
                let ino = InodeId(u64::from_be_bytes(v.as_ref().try_into().expect("ino")));
                (name, ino)
            })
            .collect())
    }

    /// Remove an entry. Directories must be empty.
    pub fn unlink(&self, parent: InodeId, name: &str) -> Result<FileAttr, MetaError> {
        let ino = self.lookup(parent, name)?;
        let attr = self.stat(ino)?;
        if attr.kind == FileKind::Dir && !self.readdir(ino)?.is_empty() {
            return Err(MetaError::NotEmpty);
        }
        self.kv.delete(&dirent_key(parent, name));
        self.kv.delete(&inode_key(ino));
        Ok(attr)
    }

    /// Rename/move an entry. The new name is claimed atomically (CAS);
    /// the old dirent is then removed. A crash between the two steps
    /// leaves both names pointing at the inode — the benign direction, as
    /// in most distributed file systems' rename.
    pub fn rename(
        &self,
        parent: InodeId,
        name: &str,
        new_parent: InodeId,
        new_name: &str,
    ) -> Result<(), MetaError> {
        let ino = self.lookup(parent, name)?;
        let nattr = self.stat(new_parent)?;
        if nattr.kind != FileKind::Dir {
            return Err(MetaError::WrongKind);
        }
        if parent == new_parent && name == new_name {
            return Ok(());
        }
        let ino_bytes = Bytes::from(ino.0.to_be_bytes().to_vec());
        if !self
            .kv
            .cas(&dirent_key(new_parent, new_name), None, ino_bytes)
        {
            return Err(MetaError::Exists);
        }
        self.kv.delete(&dirent_key(parent, name));
        Ok(())
    }

    /// Set a file's size exactly (truncate/extend).
    pub fn set_size(&self, ino: InodeId, size: u64) -> Result<FileAttr, MetaError> {
        loop {
            let cur = self.kv.get(&inode_key(ino)).ok_or(MetaError::NotFound)?;
            let mut attr = FileAttr::decode(&cur);
            if attr.kind != FileKind::File {
                return Err(MetaError::WrongKind);
            }
            attr.size = size;
            if self
                .kv
                .cas(&inode_key(ino), Some(cur.as_ref()), attr.encode())
            {
                return Ok(attr);
            }
        }
    }

    /// Grow a file's size to at least `size` (concurrent-writer safe).
    pub fn grow_size(&self, ino: InodeId, size: u64) -> Result<FileAttr, MetaError> {
        loop {
            let cur = self.kv.get(&inode_key(ino)).ok_or(MetaError::NotFound)?;
            let mut attr = FileAttr::decode(&cur);
            if attr.size >= size {
                return Ok(attr);
            }
            attr.size = size;
            if self
                .kv
                .cas(&inode_key(ino), Some(cur.as_ref()), attr.encode())
            {
                return Ok(attr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> MetaService {
        MetaService::new(KvStore::new(8, 2), 16)
    }

    #[test]
    fn attr_encoding_roundtrip() {
        let a = FileAttr {
            ino: InodeId(42),
            kind: FileKind::File,
            size: 1 << 40,
            chunk_size: 4 << 20,
            chain_offset: 7,
            stripe: 3,
        };
        assert_eq!(FileAttr::decode(&a.encode()), a);
    }

    #[test]
    fn mkdir_create_resolve() {
        let m = svc();
        let d = m.mkdir(ROOT, "data").unwrap();
        let f = m.create(d.ino, "train.bin", 4 << 20, 4).unwrap();
        assert_eq!(f.kind, FileKind::File);
        let got = m.resolve("/data/train.bin").unwrap();
        assert_eq!(got.ino, f.ino);
        assert_eq!(m.resolve("/").unwrap().ino, ROOT);
        assert_eq!(m.resolve("/nope"), Err(MetaError::NotFound));
    }

    #[test]
    fn duplicate_names_rejected() {
        let m = svc();
        m.mkdir(ROOT, "x").unwrap();
        assert_eq!(m.mkdir(ROOT, "x").map(|_| ()), Err(MetaError::Exists));
        assert_eq!(
            m.create(ROOT, "x", 1, 1).map(|_| ()),
            Err(MetaError::Exists)
        );
    }

    #[test]
    fn readdir_lists_sorted_entries() {
        let m = svc();
        for n in ["b", "a", "c"] {
            m.create(ROOT, n, 1 << 20, 1).unwrap();
        }
        let names: Vec<String> = m
            .readdir(ROOT)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn rename_moves_entries() {
        let m = svc();
        let a = m.mkdir(ROOT, "a").unwrap();
        let b = m.mkdir(ROOT, "b").unwrap();
        let f = m.create(a.ino, "model.bin", 1 << 20, 2).unwrap();
        // Same-directory rename.
        m.rename(a.ino, "model.bin", a.ino, "model-v2.bin").unwrap();
        assert_eq!(m.lookup(a.ino, "model.bin"), Err(MetaError::NotFound));
        assert_eq!(m.lookup(a.ino, "model-v2.bin").unwrap(), f.ino);
        // Cross-directory move.
        m.rename(a.ino, "model-v2.bin", b.ino, "model.bin").unwrap();
        assert_eq!(m.resolve("/b/model.bin").unwrap().ino, f.ino);
        assert!(m.readdir(a.ino).unwrap().is_empty());
        // Target collision is rejected and nothing moves.
        m.create(b.ino, "other", 1, 1).unwrap();
        assert_eq!(
            m.rename(b.ino, "model.bin", b.ino, "other"),
            Err(MetaError::Exists)
        );
        assert_eq!(m.resolve("/b/model.bin").unwrap().ino, f.ino);
        // No-op rename succeeds.
        m.rename(b.ino, "model.bin", b.ino, "model.bin").unwrap();
    }

    #[test]
    fn unlink_semantics() {
        let m = svc();
        let d = m.mkdir(ROOT, "dir").unwrap();
        m.create(d.ino, "f", 1, 1).unwrap();
        assert_eq!(m.unlink(ROOT, "dir").map(|_| ()), Err(MetaError::NotEmpty));
        m.unlink(d.ino, "f").unwrap();
        m.unlink(ROOT, "dir").unwrap();
        assert_eq!(m.resolve("/dir"), Err(MetaError::NotFound));
    }

    #[test]
    fn concurrent_create_same_name_one_winner() {
        let m = svc();
        let wins = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                // Separate stateless service handles over the same KV.
                let m2 = m.clone();
                let wins = &wins;
                s.spawn(move || {
                    if m2.create(ROOT, "model.ckpt", 1 << 20, 2).is_ok() {
                        wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_creates_unique_inodes_and_offsets() {
        let m = svc();
        let inos: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(vec![]);
        std::thread::scope(|s| {
            for t in 0..8 {
                let m2 = m.clone();
                let inos = &inos;
                s.spawn(move || {
                    for i in 0..20 {
                        let f = m2.create(ROOT, &format!("f{t}-{i}"), 1, 1).unwrap();
                        inos.lock().unwrap().push(f.ino.0);
                    }
                });
            }
        });
        let mut v = inos.into_inner().unwrap();
        let n = v.len();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), n, "inode ids must be unique");
    }

    #[test]
    fn grow_size_keeps_maximum_under_races() {
        let m = svc();
        let f = m.create(ROOT, "f", 1, 1).unwrap();
        std::thread::scope(|s| {
            for t in 1..=8u64 {
                let m2 = m.clone();
                s.spawn(move || {
                    m2.grow_size(f.ino, t * 100).unwrap();
                });
            }
        });
        assert_eq!(m.stat(f.ino).unwrap().size, 800);
    }

    #[test]
    fn chain_offsets_rotate() {
        let m = MetaService::new(KvStore::new(4, 1), 4);
        let offs: Vec<u64> = (0..8)
            .map(|i| m.create(ROOT, &format!("f{i}"), 1, 1).unwrap().chain_offset)
            .collect();
        // Round-robin modulo the table length.
        assert_eq!(offs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
