//! Fluid-traffic shapes for scheduled training jobs (§VI-C on §IV's
//! network).
//!
//! The event-driven scheduler models each placed job as a sequence of
//! training steps; a step's wall time *emerges* from the bandwidth its
//! flows get on the shared cluster model rather than being declared. This
//! module builds those flows' routes:
//!
//! * [`step_routes`] — one gradient-allreduce step over the job's nodes,
//!   as the directed ring the steady-state bandwidth analysis reduces to:
//!   node *i* streams to node *i+1* on the HFReduce lane, every edge
//!   carrying the classic `2(N−1)/N` of the gradient bytes. Nodes are
//!   ring-ordered by access leaf ([`leaf_grouped_order`]) so a single-leaf
//!   job never touches the spine and a cross-zone job pays the inter-zone
//!   trunk exactly twice — contention between jobs, storage traffic and
//!   failures then shapes every step's duration.
//! * [`ckpt_routes`] / [`restore_routes`] — the periodic checkpoint
//!   (§VII-A): each job node ships its shard of the checkpoint to (or
//!   back from) a storage node on the storage lane, so checkpoint cost
//!   rises with job size and competes with training traffic.

use crate::cluster::ClusterModel;
use crate::model::leaf_grouped_order;
use ff_desim::Route;
use ff_net::ServiceLevel;

/// Bytes each directed ring edge carries when `n` nodes allreduce
/// `step_bytes` of gradients (reduce-scatter + allgather: `2(n−1)/n`).
/// A single node reduces locally and moves the bytes once.
pub fn ring_edge_bytes(n: usize, step_bytes: f64) -> f64 {
    if n <= 1 {
        step_bytes
    } else {
        step_bytes * 2.0 * (n as f64 - 1.0) / n as f64
    }
}

/// Order a job's nodes for ring construction: by access leaf, then index
/// (the same packing [`leaf_grouped_order`] gives whole-cluster
/// collectives), so ring edges stay under one switch wherever placement
/// allows.
pub fn ring_order(cluster: &ClusterModel, nodes: &[usize]) -> Vec<usize> {
    let order = leaf_grouped_order(cluster);
    let mut pos = vec![usize::MAX; cluster.nodes()];
    for (p, &n) in order.iter().enumerate() {
        pos[n] = p;
    }
    let mut ring: Vec<usize> = nodes.to_vec();
    ring.sort_by_key(|&n| pos[n]);
    ring
}

/// The routes of one allreduce step over `nodes`: the directed ring's
/// edges on the HFReduce lane, receive side reducing. A single-node job
/// reduces in host memory instead (no network). Every returned route
/// should carry [`ring_edge_bytes`] of work.
pub fn step_routes(cluster: &ClusterModel, nodes: &[usize]) -> Vec<Route> {
    if nodes.len() <= 1 {
        let node = nodes.first().copied().unwrap_or(0);
        return vec![cluster.hw[node].cpu_reduce(cluster.hw[node].gpus())];
    }
    let ring = ring_order(cluster, nodes);
    (0..ring.len())
        .map(|i| {
            let src = ring[i];
            let dst = ring[(i + 1) % ring.len()];
            cluster.rdma_edge(src, dst, ServiceLevel::HfReduce, true)
        })
        .collect()
}

/// Bytes each ring edge carries for one decode iteration of a serving
/// replica: the per-layer activation allreduce of tensor parallelism,
/// `tp_bytes_per_token` for every sequence in the batch plus the prompt
/// tokens being prefilled this iteration. Same `2(n−1)/n` ring factor as
/// gradients — the traffic shape is identical, only the payload differs.
pub fn decode_edge_bytes(
    n: usize,
    tp_bytes_per_token: f64,
    batch: usize,
    prefill_tokens: u64,
) -> f64 {
    let payload = tp_bytes_per_token * (batch as u64 + prefill_tokens) as f64;
    ring_edge_bytes(n, payload)
}

/// The routes of one decode iteration over a serving replica's nodes: the
/// same directed HFReduce-lane ring as [`step_routes`] (tensor-parallel
/// activation allreduce), so serving traffic contends with training
/// allreduce on exactly the links they share. A single-node replica
/// reduces in host memory. Every returned route should carry
/// [`decode_edge_bytes`] of work.
pub fn decode_routes(cluster: &ClusterModel, nodes: &[usize]) -> Vec<Route> {
    step_routes(cluster, nodes)
}

/// Checkpoint-save routes: job node `nodes[i]` streams its shard to
/// `storage[i % storage.len()]` on the storage lane (plain RDMA write at
/// the destination). Each route carries `ckpt_bytes / nodes.len()`.
pub fn ckpt_routes(cluster: &ClusterModel, nodes: &[usize], storage: &[usize]) -> Vec<Route> {
    assert!(!storage.is_empty(), "checkpointing needs a storage node");
    nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            cluster.rdma_edge(n, storage[i % storage.len()], ServiceLevel::Storage, false)
        })
        .collect()
}

/// Checkpoint-restore routes: the save pattern reversed — each job node
/// reads its shard back from its storage node.
pub fn restore_routes(cluster: &ClusterModel, nodes: &[usize], storage: &[usize]) -> Vec<Route> {
    assert!(!storage.is_empty(), "restoring needs a storage node");
    nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            cluster.rdma_edge(storage[i % storage.len()], n, ServiceLevel::Storage, false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn ring_edge_bytes_matches_allreduce_theory() {
        assert_eq!(ring_edge_bytes(1, 1024.0), 1024.0);
        assert_eq!(ring_edge_bytes(2, 1024.0), 1024.0);
        assert!((ring_edge_bytes(4, 1024.0) - 1536.0).abs() < 1e-9);
    }

    #[test]
    fn step_routes_form_a_ring() {
        let c = ClusterModel::build(&ClusterConfig::fire_flyer(4));
        let routes = step_routes(&c, &[0, 2, 3]);
        assert_eq!(routes.len(), 3);
        for r in &routes {
            assert!(!r.0.is_empty(), "ring edge routes traverse resources");
        }
    }

    #[test]
    fn single_node_step_stays_local() {
        let c = ClusterModel::build(&ClusterConfig::fire_flyer(2));
        let routes = step_routes(&c, &[1]);
        assert_eq!(routes.len(), 1);
    }

    #[test]
    fn decode_routes_mirror_step_ring() {
        let c = ClusterModel::build(&ClusterConfig::fire_flyer(4));
        assert_eq!(decode_routes(&c, &[0, 1]).len(), 2);
        assert_eq!(decode_routes(&c, &[3]).len(), 1, "single node stays local");
        // Batch of 4 decoding one token each + 100 prompt tokens prefilled,
        // on a 2-node replica: payload moves once (2(n−1)/n = 1).
        assert!((decode_edge_bytes(2, 10.0, 4, 100) - 1040.0).abs() < 1e-9);
        assert!((decode_edge_bytes(4, 10.0, 4, 0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn ckpt_routes_shard_across_storage() {
        let c = ClusterModel::build(&ClusterConfig::fire_flyer(6));
        let save = ckpt_routes(&c, &[0, 1, 2, 3], &[4, 5]);
        let load = restore_routes(&c, &[0, 1, 2, 3], &[4, 5]);
        assert_eq!(save.len(), 4);
        assert_eq!(load.len(), 4);
    }
}
