//! # ff-reduce — HFReduce, the paper's core contribution (§IV)
//!
//! HFReduce is a CPU-asynchronous allreduce designed for PCIe GPU nodes
//! with a single shared NIC: (1) asynchronously copy each GPU's gradients
//! to host memory, (2) reduce them on the CPU with SIMD adds, (3) allreduce
//! the node sums across nodes over a **double binary tree** via RDMA, and
//! (4) return the result to the GPUs — GDRCopy for the fan-out so host
//! memory is read only twice. No GPU kernel ever runs, so communication
//! overlaps backpropagation completely.
//!
//! This crate provides both faces of the system:
//!
//! * **Executable algorithms** — real multithreaded implementations over
//!   a pluggable transport: the reduction kernels ([`kernels`]), the
//!   chunked double-binary-tree allreduce, a ring allreduce baseline, and
//!   the full node-structured HFReduce (intra-node reduce → inter-node
//!   tree → broadcast). The transport is a [`fabric::Fabric`] — in-memory
//!   channels by default, real localhost TCP sockets, or metering /
//!   fault-injecting middleware — and every collective is a method on one
//!   [`comm::Communicator`] handle, orchestrated world-wide by the
//!   drivers in [`exec`]. These compute real numbers and are validated
//!   against serial reference reductions, bit-identically across
//!   backends. [`calibration`] measures a backend's latency/bandwidth for
//!   the `ff_hw` link model.
//! * **Performance models** — discrete-event simulations on the `ff-hw` +
//!   `ff-net` cluster model reproducing Figure 7: HFReduce vs NCCL
//!   allreduce bandwidth from 16 to 1,440 GPUs ([`model`], [`ring`]), and
//!   the NVLink variant (§IV-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod cluster;
pub mod comm;
pub mod exec;
pub mod fabric;
pub mod jobflow;
pub mod kernels;
pub mod model;
pub mod ring;
pub mod sharded;

pub use calibration::{calibrate, Calibration};
pub use cluster::{ClusterConfig, ClusterModel};
pub use comm::{Algo, Communicator, Op, Wire, WireCursor};
#[allow(deprecated)]
pub use exec::{
    allreduce_dbtree, allreduce_dbtree_ft, allreduce_dbtree_ft_traced, allreduce_dbtree_traced,
    allreduce_ring, hfreduce_exec, hfreduce_exec_traced,
};
pub use exec::{
    allreduce_ft, run_allreduce, run_broadcast, run_hfreduce, run_reduce_to_root, CommError,
    ExecFaultPlan, FtReport, ObsCtx,
};
pub use fabric::{
    CalibratedFabric, Fabric, FabricProvider, FaultyFabric, InMemFabric, InMemProvider, RawMsg,
    Tag, TcpFabric, TcpProvider,
};
pub use ff_util::error::{FfError, FfKind};
pub use model::{AllreduceReport, HfReduceOptions, HfReduceVariant};
pub use sharded::{allgather, fsdp_step_exec, reduce_scatter};
