//! # ff-reduce — HFReduce, the paper's core contribution (§IV)
//!
//! HFReduce is a CPU-asynchronous allreduce designed for PCIe GPU nodes
//! with a single shared NIC: (1) asynchronously copy each GPU's gradients
//! to host memory, (2) reduce them on the CPU with SIMD adds, (3) allreduce
//! the node sums across nodes over a **double binary tree** via RDMA, and
//! (4) return the result to the GPUs — GDRCopy for the fan-out so host
//! memory is read only twice. No GPU kernel ever runs, so communication
//! overlaps backpropagation completely.
//!
//! This crate provides both faces of the system:
//!
//! * **Executable algorithms** — real multithreaded implementations over
//!   in-memory ranks: the reduction kernels ([`kernels`]), the chunked
//!   double-binary-tree allreduce, a ring allreduce baseline, and the full
//!   node-structured HFReduce (intra-node reduce → inter-node tree →
//!   broadcast) ([`exec`]). These compute real numbers and are validated
//!   against serial reference reductions.
//! * **Performance models** — discrete-event simulations on the `ff-hw` +
//!   `ff-net` cluster model reproducing Figure 7: HFReduce vs NCCL
//!   allreduce bandwidth from 16 to 1,440 GPUs ([`model`], [`ring`]), and
//!   the NVLink variant (§IV-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod exec;
pub mod jobflow;
pub mod kernels;
pub mod model;
pub mod ring;
pub mod sharded;

pub use cluster::{ClusterConfig, ClusterModel};
pub use exec::{
    allreduce_dbtree, allreduce_dbtree_ft, allreduce_dbtree_ft_traced, allreduce_dbtree_traced,
    allreduce_ring, hfreduce_exec, hfreduce_exec_traced, CommError, ExecFaultPlan, FtReport,
    ObsCtx,
};
pub use ff_util::error::{FfError, FfKind};
pub use model::{AllreduceReport, HfReduceOptions, HfReduceVariant};
pub use sharded::{allgather, fsdp_step_exec, reduce_scatter};
