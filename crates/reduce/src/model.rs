//! Discrete-event performance model of HFReduce (Algorithm 1 + 2),
//! reproducing Figure 7.
//!
//! The DAG per pipeline chunk: 8 asynchronous D2H copies → CPU reduce-add
//! (9× memory traffic) → double-binary-tree allreduce over RDMA (each tree
//! carries half the chunk; receive-side reduce-adds) → broadcast back down
//! the trees → GDRCopy host-to-device fan-out. Chunks are pipelined: every
//! stage is chained on its own predecessor so stage *k* of chunk *c*
//! overlaps stage *k−1* of chunk *c+1*, exactly as Algorithm 1 describes.

use crate::cluster::ClusterModel;
use ff_desim::{DagNodeId, DagSim, Work};
use ff_hw::TransferMethod;
use ff_net::ServiceLevel;
use ff_topo::dbtree::{DoubleBinaryTree, Tree};

/// Which HFReduce data path to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HfReduceVariant {
    /// The original path (§IV-A): all 8 GPUs D2H, CPU 8-way reduce.
    Standard,
    /// HFReduce with NVLink (§IV-C): paired GPUs pre-reduce over the
    /// bridge, halving PCIe/memory traffic; results return split across
    /// pairs with a final NVLink allgather.
    NvLink,
}

/// Tunables of the model.
#[derive(Debug, Clone)]
pub struct HfReduceOptions {
    /// Pipeline chunk count (Algorithm 1's `Chunk_Size` split).
    pub chunks: usize,
    /// Data path variant.
    pub variant: HfReduceVariant,
    /// Host-to-device strategy for the final fan-out.
    pub h2d: TransferMethod,
}

impl Default for HfReduceOptions {
    fn default() -> Self {
        HfReduceOptions {
            chunks: 4,
            variant: HfReduceVariant::Standard,
            h2d: TransferMethod::GdrCopy,
        }
    }
}

/// Result of one simulated allreduce.
#[derive(Debug, Clone)]
pub struct AllreduceReport {
    /// Wall time of the whole allreduce.
    pub seconds: f64,
    /// Algorithm bandwidth: gradient bytes / wall time (the y-axis of
    /// Figure 7).
    pub algbw_bps: f64,
    /// Gradient size per GPU, bytes.
    pub data_bytes: f64,
    /// GPUs participating.
    pub gpus: usize,
}

/// Simulate one HFReduce allreduce of `bytes` (gradient size per GPU)
/// across all nodes of `cluster`. Consumes the cluster's fluid state.
#[allow(clippy::needless_range_loop)] // indices are GPU/pair ids mirrored in chain state
pub fn hfreduce_time(
    cluster: &mut ClusterModel,
    bytes: f64,
    opts: &HfReduceOptions,
) -> AllreduceReport {
    let n = cluster.nodes();
    assert!(n >= 1);
    let gpus = cluster.gpus();
    let fluid = std::mem::take(&mut cluster.fluid);
    let mut dag = DagSim::new(fluid);
    let dt = DoubleBinaryTree::new(n);
    // Rank→node placement: group tree ranks by leaf switch (and therefore
    // by zone), the locality the HAI scheduler provides. The in-order
    // trees connect mostly nearby ranks, so most edges stay leaf-local
    // and only O(log n) cross a zone boundary.
    let rank_to_node = leaf_grouped_order(cluster);
    let chunks = opts.chunks.max(1);
    let chunk_bytes = bytes / chunks as f64;

    // Per-stage "previous chunk" chains, for pipelining order.
    let g_per = cluster.hw[0].gpus();
    let mut prev_d2h: Vec<Vec<Option<DagNodeId>>> = vec![vec![None; g_per]; n];
    let mut prev_reduce: Vec<Option<DagNodeId>> = vec![None; n];
    let mut prev_up: [Vec<Option<DagNodeId>>; 2] = [vec![None; n], vec![None; n]];
    let mut prev_down: [Vec<Option<DagNodeId>>; 2] = [vec![None; n], vec![None; n]];
    let mut prev_h2d: Vec<Vec<Option<DagNodeId>>> = vec![vec![None; g_per]; n];
    let mut prev_nvl: Vec<Vec<Option<DagNodeId>>> = vec![vec![None; g_per / 2]; n];

    for _c in 0..chunks {
        // ---- Intra-node phase ----
        let mut reduce_done: Vec<DagNodeId> = Vec::with_capacity(n);
        for v in 0..n {
            let hw = &cluster.hw[rank_to_node[v]];
            let mut d2h_ids = Vec::new();
            match opts.variant {
                HfReduceVariant::Standard => {
                    for g in 0..g_per {
                        let mut deps = Vec::new();
                        if let Some(p) = prev_d2h[v][g] {
                            deps.push(p);
                        }
                        let id = dag.add(
                            Work::Transfer {
                                work: chunk_bytes,
                                route: hw.d2h(g),
                            },
                            &deps,
                        );
                        prev_d2h[v][g] = Some(id);
                        d2h_ids.push(id);
                    }
                }
                HfReduceVariant::NvLink => {
                    // Pair pre-reduce over NVLink, then D2H from the even
                    // GPU of each pair only.
                    for pair in 0..g_per / 2 {
                        let (a, b) = (2 * pair, 2 * pair + 1);
                        let mut deps = Vec::new();
                        if let Some(p) = prev_nvl[v][pair] {
                            deps.push(p);
                        }
                        let nvl = dag.add(
                            Work::Transfer {
                                work: chunk_bytes,
                                route: hw.nvlink(b, a),
                            },
                            &deps,
                        );
                        prev_nvl[v][pair] = Some(nvl);
                        let mut deps = vec![nvl];
                        if let Some(p) = prev_d2h[v][a] {
                            deps.push(p);
                        }
                        let id = dag.add(
                            Work::Transfer {
                                work: chunk_bytes,
                                route: hw.d2h(a),
                            },
                            &deps,
                        );
                        prev_d2h[v][a] = Some(id);
                        d2h_ids.push(id);
                    }
                }
            }
            let fan_in = d2h_ids.len();
            let mut deps = d2h_ids;
            if let Some(p) = prev_reduce[v] {
                deps.push(p);
            }
            let red = dag.add(
                Work::Transfer {
                    work: chunk_bytes,
                    route: hw.cpu_reduce(fan_in),
                },
                &deps,
            );
            prev_reduce[v] = Some(red);
            reduce_done.push(red);
        }

        // ---- Inter-node double binary tree (each tree: half the chunk) ----
        let mut arrival_deps: Vec<Vec<DagNodeId>> = vec![Vec::new(); n];
        if n > 1 {
            for (ti, tree) in [&dt.a, &dt.b].into_iter().enumerate() {
                let half = chunk_bytes / 2.0;
                let (root_gate, downs) = build_tree_pass(
                    cluster,
                    &mut dag,
                    tree,
                    half,
                    &reduce_done,
                    &rank_to_node,
                    &mut prev_up[ti],
                    &mut prev_down[ti],
                );
                for v in 0..n {
                    match downs[v] {
                        Some(d) => arrival_deps[v].push(d),
                        None => arrival_deps[v].push(root_gate), // the root
                    }
                }
            }
        } else {
            arrival_deps[0].push(reduce_done[0]);
        }

        // ---- Return to GPUs ----
        for v in 0..n {
            let hw = &cluster.hw[rank_to_node[v]];
            let arrive = dag.add(Work::Gate, &arrival_deps[v]);
            match opts.variant {
                HfReduceVariant::Standard => {
                    for g in 0..g_per {
                        let mut deps = vec![arrive];
                        if let Some(p) = prev_h2d[v][g] {
                            deps.push(p);
                        }
                        let id = dag.add(
                            Work::Transfer {
                                work: chunk_bytes,
                                route: hw.h2d(g, opts.h2d),
                            },
                            &deps,
                        );
                        prev_h2d[v][g] = Some(id);
                    }
                }
                HfReduceVariant::NvLink => {
                    // Each GPU receives half the chunk over PCIe, then the
                    // pair allgathers the halves over NVLink.
                    for pair in 0..g_per / 2 {
                        let (a, b) = (2 * pair, 2 * pair + 1);
                        let mut ids = Vec::new();
                        for g in [a, b] {
                            let mut deps = vec![arrive];
                            if let Some(p) = prev_h2d[v][g] {
                                deps.push(p);
                            }
                            let id = dag.add(
                                Work::Transfer {
                                    work: chunk_bytes / 2.0,
                                    route: hw.h2d(g, opts.h2d),
                                },
                                &deps,
                            );
                            prev_h2d[v][g] = Some(id);
                            ids.push(id);
                        }
                        // Allgather: both directions of the bridge at once.
                        dag.add(
                            Work::Transfer {
                                work: chunk_bytes / 2.0,
                                route: hw.nvlink(a, b),
                            },
                            &ids,
                        );
                        dag.add(
                            Work::Transfer {
                                work: chunk_bytes / 2.0,
                                route: hw.nvlink(b, a),
                            },
                            &ids,
                        );
                    }
                }
            }
        }
    }

    let makespan = dag.run();
    cluster.fluid = dag.into_fluid();
    let seconds = makespan.as_secs_f64();
    AllreduceReport {
        seconds,
        algbw_bps: bytes / seconds,
        data_bytes: bytes,
        gpus,
    }
}

/// HFReduce's production chunk size: the pipeline streams ~4 MiB chunks,
/// so a 186 MiB gradient is ~47 chunks deep and the tree-depth fill cost
/// is fully amortized.
pub const TARGET_CHUNK_BYTES: f64 = 4.0 * 1024.0 * 1024.0;

/// Steady-state HFReduce bandwidth with fill-cost extrapolation.
///
/// Simulating 47 pipeline chunks across 180 nodes is needlessly expensive:
/// with the transfer pipeline chained per stage, the makespan follows
/// `T(c) = A/c + B` in the chunk count `c` (fill shrinks as chunks shrink,
/// the steady phase is chunk-count invariant). Two cheap runs at small `c`
/// identify `A` and `B`; the report is evaluated at the production chunk
/// count `⌈bytes / 4 MiB⌉`. Builds fresh clusters from `cfg` for each run.
pub fn hfreduce_steady(
    cfg: &crate::cluster::ClusterConfig,
    bytes: f64,
    opts: &HfReduceOptions,
) -> AllreduceReport {
    let target_chunks = (bytes / TARGET_CHUNK_BYTES).ceil().max(1.0) as usize;
    let (c1, c2) = (3usize, 6usize);
    if target_chunks <= c2 {
        let mut cluster = ClusterModel::build(cfg);
        return hfreduce_time(
            &mut cluster,
            bytes,
            &HfReduceOptions {
                chunks: target_chunks,
                ..opts.clone()
            },
        );
    }
    let run = |c: usize| {
        let mut cluster = ClusterModel::build(cfg);
        hfreduce_time(
            &mut cluster,
            bytes,
            &HfReduceOptions {
                chunks: c,
                ..opts.clone()
            },
        )
    };
    let r1 = run(c1);
    let r2 = run(c2);
    // T = A/c + B.
    let a = (r1.seconds - r2.seconds) / (1.0 / c1 as f64 - 1.0 / c2 as f64);
    let b = (r1.seconds - a / c1 as f64).max(1e-12);
    let seconds = (a.max(0.0) / target_chunks as f64 + b).max(1e-12);
    AllreduceReport {
        seconds,
        algbw_bps: bytes / seconds,
        data_bytes: bytes,
        gpus: r1.gpus,
    }
}

/// Closed-form approximation of the simulated HFReduce bandwidth at 186
/// MiB (Figure 7a): ~9.5 GB/s at 16 GPUs settling to ~8.6 GB/s at scale,
/// where the root-port bidirectional ceiling binds. Used by the `ff-haiscale`
/// step-time models so they don't re-run the DAG simulation per point;
/// `hfreduce_analytic_matches_simulation` keeps it honest.
pub fn hfreduce_analytic_bw(gpus: usize) -> f64 {
    let nodes = (gpus as f64 / 8.0).max(1.0);
    8.6e9 + 0.9e9 * (2.0 / nodes).min(1.0)
}

/// Predicted algorithm bandwidth of the *executable* HFReduce run on a
/// single machine over a loopback fabric whose point-to-point constants
/// were measured by `ff_reduce::calibration` (an α–β
/// [`LinkParams`](ff_hw::LinkParams)).
///
/// On loopback every rank is a thread and all traffic shares one memory
/// subsystem, so the first-order model serializes the whole collective's
/// wire traffic through the measured link: a chunked double-binary-tree
/// allreduce over `n` nodes moves each tree's half-buffer up and down all
/// `n − 1` edges — `2·(n−1)·bytes` on the wire — in
/// `2·2·(n−1)·chunks` messages. Predicted algbw is
/// `bytes / (wire_bytes/β + msgs·α)`; EXPERIMENTS.md compares it against
/// the measured loopback run recorded by `fabric_bench`.
pub fn hfreduce_loopback_algbw(
    nodes: usize,
    bytes: f64,
    chunks: usize,
    link: &ff_hw::LinkParams,
) -> f64 {
    assert!(nodes >= 1 && bytes > 0.0);
    if nodes == 1 {
        // No wire traffic: bounded only by the per-message floor of the
        // two local phases.
        return bytes / link.latency_s.max(1e-12);
    }
    let edges = (nodes - 1) as f64;
    let wire_bytes = 2.0 * edges * bytes;
    let msgs = 2.0 * 2.0 * edges * chunks.max(1) as f64;
    bytes / (wire_bytes / link.bps + msgs * link.latency_s)
}

/// Node indices ordered by access leaf (then node index): tree rank `i`
/// maps to `order[i]`, clustering tree-adjacent ranks on the same leaf.
pub fn leaf_grouped_order(cluster: &ClusterModel) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cluster.nodes()).collect();
    order.sort_by_key(|&i| {
        let leaf = cluster.topo.access_switch(cluster.hosts[i]);
        (leaf, i)
    });
    order
}

/// Build one tree's reduce-up + broadcast-down for one chunk. Returns the
/// root-ready gate and, per node, the broadcast-arrival node (None for the
/// root itself).
#[allow(clippy::too_many_arguments)] // one call site; the args are the pass's state
fn build_tree_pass(
    cluster: &ClusterModel,
    dag: &mut DagSim,
    tree: &Tree,
    half_bytes: f64,
    reduce_done: &[DagNodeId],
    rank_to_node: &[usize],
    prev_up: &mut [Option<DagNodeId>],
    prev_down: &mut [Option<DagNodeId>],
) -> (DagNodeId, Vec<Option<DagNodeId>>) {
    let n = tree.len();
    // Reduce-up in post-order so children's up-edges exist before parents'.
    let mut up_edge: Vec<Option<DagNodeId>> = vec![None; n];
    for v in tree.post_order() {
        let Some(parent) = tree.parent[v] else {
            continue; // root sends nothing up
        };
        let mut deps = vec![reduce_done[v]];
        for &c in &tree.children[v] {
            deps.push(up_edge[c].expect("post-order guarantees children first"));
        }
        if let Some(p) = prev_up[v] {
            deps.push(p);
        }
        let route = cluster.rdma_edge(
            rank_to_node[v],
            rank_to_node[parent],
            ServiceLevel::HfReduce,
            true,
        );
        let id = dag.add(
            Work::Transfer {
                work: half_bytes,
                route,
            },
            &deps,
        );
        up_edge[v] = Some(id);
        prev_up[v] = Some(id);
    }
    // Root ready once its children's up-edges (and its own reduce) land.
    let mut root_deps = vec![reduce_done[tree.root]];
    for &c in &tree.children[tree.root] {
        root_deps.push(up_edge[c].expect("root children reduced"));
    }
    let root_gate = dag.add(Work::Gate, &root_deps);

    // Broadcast down in pre-order (reverse post-order works: parents before
    // children).
    let order = tree.post_order();
    let mut down_edge: Vec<Option<DagNodeId>> = vec![None; n];
    for &v in order.iter().rev() {
        let Some(parent) = tree.parent[v] else {
            continue;
        };
        let mut deps = vec![match tree.parent[parent] {
            None => root_gate,
            Some(_) => down_edge[parent].expect("pre-order guarantees parent first"),
        }];
        if let Some(p) = prev_down[v] {
            deps.push(p);
        }
        let route = cluster.rdma_edge(
            rank_to_node[parent],
            rank_to_node[v],
            ServiceLevel::HfReduce,
            false,
        );
        let id = dag.add(
            Work::Transfer {
                work: half_bytes,
                route,
            },
            &deps,
        );
        down_edge[v] = Some(id);
        prev_down[v] = Some(id);
    }
    (root_gate, down_edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    const MIB: f64 = 1024.0 * 1024.0;

    fn run(nodes: usize, bytes: f64, opts: &HfReduceOptions) -> AllreduceReport {
        let mut cluster = ClusterModel::build(&ClusterConfig::fire_flyer(nodes));
        hfreduce_time(&mut cluster, bytes, opts)
    }

    fn run_nvlink(nodes: usize, bytes: f64) -> AllreduceReport {
        let mut cluster = ClusterModel::build(&ClusterConfig::fire_flyer_nvlink(nodes));
        hfreduce_time(
            &mut cluster,
            bytes,
            &HfReduceOptions {
                variant: HfReduceVariant::NvLink,
                ..Default::default()
            },
        )
    }

    #[test]
    fn single_node_is_memory_and_pcie_bound() {
        let r = run(1, 186.0 * MIB, &HfReduceOptions::default());
        // No network: D2H (8 flows), reduce (9×), H2D. Should finish at
        // multi-GB/s algorithm bandwidth.
        assert!(r.algbw_bps > 5e9, "bw {}", r.algbw_bps);
        assert!(r.algbw_bps < 30e9, "bw {}", r.algbw_bps);
    }

    #[test]
    fn two_nodes_match_paper_band() {
        // Paper Figure 7a: 6.3–8.1 GB/s across scales at 186 MiB.
        let r = run(2, 186.0 * MIB, &HfReduceOptions::default());
        assert!(
            r.algbw_bps > 5.5e9 && r.algbw_bps < 9.5e9,
            "bw {} outside the paper band",
            r.algbw_bps
        );
    }

    #[test]
    fn bandwidth_is_roughly_scale_invariant() {
        // The defining property of the double tree: per-node traffic does
        // not grow with node count.
        let a = run(2, 64.0 * MIB, &HfReduceOptions::default());
        let b = run(8, 64.0 * MIB, &HfReduceOptions::default());
        assert!(
            b.algbw_bps > a.algbw_bps * 0.5,
            "8 nodes {} vs 2 nodes {}",
            b.algbw_bps,
            a.algbw_bps
        );
    }

    #[test]
    fn nvlink_variant_is_faster() {
        // Paper §IV-C: HFReduce-with-NVLink exceeds 10 GB/s where the
        // original is memory-bound near 8 GB/s.
        let std = run(2, 186.0 * MIB, &HfReduceOptions::default());
        let nvl = run_nvlink(2, 186.0 * MIB);
        assert!(
            nvl.algbw_bps > std.algbw_bps * 1.15,
            "nvlink {} vs std {}",
            nvl.algbw_bps,
            std.algbw_bps
        );
        assert!(nvl.algbw_bps > 10e9, "nvlink bw {}", nvl.algbw_bps);
    }

    #[test]
    fn more_chunks_pipeline_better_than_one() {
        let one = run(
            2,
            64.0 * MIB,
            &HfReduceOptions {
                chunks: 1,
                ..Default::default()
            },
        );
        let four = run(
            2,
            64.0 * MIB,
            &HfReduceOptions {
                chunks: 4,
                ..Default::default()
            },
        );
        assert!(
            four.seconds < one.seconds,
            "4 chunks {} vs 1 chunk {}",
            four.seconds,
            one.seconds
        );
    }

    #[test]
    fn memcpy_h2d_is_slower_than_gdrcopy() {
        let gdr = run(2, 64.0 * MIB, &HfReduceOptions::default());
        let mc = run(
            2,
            64.0 * MIB,
            &HfReduceOptions {
                h2d: TransferMethod::MemcpyAsync,
                ..Default::default()
            },
        );
        assert!(
            mc.seconds >= gdr.seconds * 0.999,
            "{} vs {}",
            mc.seconds,
            gdr.seconds
        );
    }

    #[test]
    fn hfreduce_analytic_matches_simulation() {
        for nodes in [2usize, 8] {
            let sim = hfreduce_steady(
                &ClusterConfig::fire_flyer(nodes),
                186.0 * MIB,
                &HfReduceOptions::default(),
            );
            let ana = hfreduce_analytic_bw(nodes * 8);
            let ratio = sim.algbw_bps / ana;
            assert!(
                (0.85..1.15).contains(&ratio),
                "nodes={nodes}: sim {} vs analytic {ana}",
                sim.algbw_bps
            );
        }
    }

    #[test]
    fn cross_zone_allreduce_completes() {
        let mut cluster = ClusterModel::build(&ClusterConfig {
            two_zone: true,
            ..ClusterConfig::fire_flyer(4)
        });
        let r = hfreduce_time(&mut cluster, 32.0 * MIB, &HfReduceOptions::default());
        assert!(r.algbw_bps > 1e9, "bw {}", r.algbw_bps);
    }
}
