//! CPU reduction kernels (§IV-D1: "Intra-Node Reduction: CPU utilizes SIMD
//! instructions and supports FP32 / FP16 / BF16 / FP8 datatypes").
//!
//! Kernels are generic over [`Element`] and accumulate in `f32` — the
//! narrow types are widened once per input, summed in single precision,
//! and narrowed once on the store, matching what the AVX implementation
//! does with hardware convert instructions. Loops are written over fixed
//! blocks so LLVM auto-vectorizes them.

use ff_dtypes::Element;

/// Block size for the unrolled inner loops.
const BLOCK: usize = 64;

/// `dst[i] += src[i]` with f32 accumulation. Slices must be equal length.
pub fn reduce_add_into<E: Element>(dst: &mut [E], src: &[E]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    let mut d = dst.chunks_exact_mut(BLOCK);
    let mut s = src.chunks_exact(BLOCK);
    for (db, sb) in d.by_ref().zip(s.by_ref()) {
        for i in 0..BLOCK {
            db[i] = E::from_f32(db[i].to_f32() + sb[i].to_f32());
        }
    }
    for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x = E::from_f32(x.to_f32() + y.to_f32());
    }
}

/// Reduce `srcs` element-wise into `dst` (overwriting it), accumulating the
/// whole fan-in in `f32` before a single narrowing store — the multi-input
/// form HFReduce uses for the 8-GPU intra-node reduce. All slices must have
/// `dst`'s length; an empty `srcs` zeroes `dst`.
pub fn reduce_n_into<E: Element>(dst: &mut [E], srcs: &[&[E]]) {
    for s in srcs {
        assert_eq!(s.len(), dst.len(), "length mismatch");
    }
    for (i, d) in dst.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for s in srcs {
            acc += s[i].to_f32();
        }
        *d = E::from_f32(acc);
    }
}

/// Split `len` elements into `chunks` contiguous ranges as evenly as
/// possible (the pipelining split of Algorithm 1). Every element is covered
/// exactly once; empty ranges occur only when `chunks > len`.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    assert!(chunks >= 1);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut at = 0;
    for c in 0..chunks {
        let sz = base + usize::from(c < extra);
        out.push(at..at + sz);
        at += sz;
    }
    debug_assert_eq!(at, len);
    out
}

/// Serial reference: the exact element-wise f32 sum of all inputs,
/// narrowed once (what any correct allreduce must produce, up to the
/// summation order of its internal tree).
pub fn reference_sum<E: Element>(inputs: &[Vec<E>]) -> Vec<E> {
    assert!(!inputs.is_empty());
    let len = inputs[0].len();
    let mut out = vec![E::ZERO; len];
    let refs: Vec<&[E]> = inputs.iter().map(|v| v.as_slice()).collect();
    reduce_n_into(&mut out, &refs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_dtypes::{Bf16, F16, F8E4M3};

    #[test]
    fn add_into_f32_exact() {
        let mut a: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..1000).map(|i| (2 * i) as f32).collect();
        reduce_add_into(&mut a, &b);
        for (i, &v) in a.iter().enumerate() {
            assert_eq!(v, (3 * i) as f32);
        }
    }

    #[test]
    fn add_into_handles_non_block_multiple_lengths() {
        for len in [0usize, 1, 63, 64, 65, 127, 129] {
            let mut a = vec![1.0f32; len];
            let b = vec![2.0f32; len];
            reduce_add_into(&mut a, &b);
            assert!(a.iter().all(|&x| x == 3.0), "len {len}");
        }
    }

    #[test]
    fn add_into_f16() {
        let mut a: Vec<F16> = (0..100).map(|i| F16::from_f32(i as f32)).collect();
        let b: Vec<F16> = (0..100).map(|i| F16::from_f32(i as f32)).collect();
        reduce_add_into(&mut a, &b);
        for (i, &v) in a.iter().enumerate() {
            assert_eq!(v.to_f32(), (2 * i) as f32, "index {i}");
        }
    }

    #[test]
    fn n_way_single_rounding_beats_chained_rounding() {
        // 8 values of 0.1 in F8: chained adds round at every step; the
        // single-accumulation kernel rounds once. In f32 the sum is 0.8
        // whose nearest F8 neighbour must be returned.
        let srcs: Vec<Vec<F8E4M3>> = (0..8).map(|_| vec![F8E4M3::from_f32(0.1)]).collect();
        let refs: Vec<&[F8E4M3]> = srcs.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![F8E4M3::ZERO; 1];
        reduce_n_into(&mut out, &refs);
        let exact = 8.0 * F8E4M3::from_f32(0.1).to_f32();
        assert_eq!(out[0], F8E4M3::from_f32(exact));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn n_way_bf16_eight_sources() {
        let srcs: Vec<Vec<Bf16>> = (0..8)
            .map(|g| (0..50).map(|i| Bf16::from_f32((g + i) as f32)).collect())
            .collect();
        let refs: Vec<&[Bf16]> = srcs.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![Bf16::ZERO; 50];
        reduce_n_into(&mut out, &refs);
        for i in 0..50 {
            let want: f32 = (0..8)
                .map(|g| Bf16::from_f32((g + i) as f32).to_f32())
                .sum();
            assert_eq!(out[i], Bf16::from_f32(want), "index {i}");
        }
    }

    #[test]
    fn n_way_empty_sources_zeroes() {
        let mut out = vec![1.5f32; 4];
        reduce_n_into::<f32>(&mut out, &[]);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 8, 13] {
                let rs = chunk_ranges(len, chunks);
                assert_eq!(rs.len(), chunks);
                assert_eq!(rs.first().unwrap().start, 0);
                assert_eq!(rs.last().unwrap().end, len);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                // Sizes differ by at most 1.
                let sizes: Vec<usize> = rs.iter().map(|r| r.len()).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let mut a = vec![0.0f32; 3];
        reduce_add_into(&mut a, &[1.0, 2.0]);
    }

    #[test]
    fn reference_sum_matches_manual() {
        let inputs = vec![vec![1.0f32, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
        assert_eq!(reference_sum(&inputs), vec![111.0, 222.0]);
    }
}
