//! Executable allgather and reduce-scatter — the collectives FSDP/ZeRO-3
//! is built from (§II-B1: "FSDP performs an allgather operation to
//! assemble the complete parameters ... then performs a reduce-scatter
//! operation to synchronize gradients").
//!
//! Ring implementations over threads, plus [`fsdp_step_exec`]: a real
//! sharded-parameter training step (allgather params → local grads →
//! reduce-scatter → each rank updates its 1/n shard) proving the §II-B1
//! protocol end to end.

use crate::kernels::{chunk_ranges, reduce_add_into};
use ff_dtypes::Element;
use ff_util::channel::{unbounded, Receiver, Sender};

struct Ring<E> {
    me: usize,
    tx_next: Sender<Vec<E>>,
    rx_prev: Receiver<Vec<E>>,
}

fn ring_mesh<E: Send>(n: usize) -> Vec<Ring<E>> {
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
    let mut rxs: Vec<Option<Receiver<Vec<E>>>> = rxs.into_iter().map(Some).collect();
    (0..n)
        .map(|me| Ring {
            me,
            // rank r sends into channel (r+1) % n and receives from its own.
            tx_next: txs[(me + 1) % n].clone(),
            rx_prev: rxs[me].take().expect("one receiver per rank"),
        })
        .collect()
}

/// Ring allgather: rank `r` contributes `shards[r]`; everyone ends with
/// the concatenation `shards[0] ++ shards[1] ++ …` (shards may differ in
/// length, as FSDP's last shard usually does).
pub fn allgather<E: Element>(shards: Vec<Vec<E>>) -> Vec<Vec<E>> {
    let n = shards.len();
    assert!(n >= 1);
    if n == 1 {
        return shards;
    }
    let lens: Vec<usize> = shards.iter().map(|s| s.len()).collect();
    let rings = ring_mesh::<E>(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .zip(rings)
            .map(|(own, ring)| {
                let lens = &lens;
                s.spawn(move || {
                    let me = ring.me;
                    let mut pieces: Vec<Option<Vec<E>>> = (0..n).map(|_| None).collect();
                    pieces[me] = Some(own.clone());
                    // Step s: forward the piece originating at (me - s).
                    for step in 0..n - 1 {
                        let src = (me + n - step) % n;
                        let piece = pieces[src].clone().expect("piece present");
                        ring.tx_next.send(piece).expect("peer alive");
                        let incoming_src = (me + n - step - 1) % n;
                        let got = ring.rx_prev.recv().expect("peer alive");
                        assert_eq!(got.len(), lens[incoming_src], "shard length drift");
                        pieces[incoming_src] = Some(got);
                    }
                    pieces
                        .into_iter()
                        .flat_map(|p| p.expect("all pieces arrived"))
                        .collect::<Vec<E>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

/// Ring reduce-scatter: every rank contributes a full-length buffer; rank
/// `r` ends with the *sum* of everyone's `r`-th chunk (chunks from
/// [`chunk_ranges`]). Returns each rank's reduced shard.
pub fn reduce_scatter<E: Element>(inputs: Vec<Vec<E>>) -> Vec<Vec<E>> {
    let n = inputs.len();
    assert!(n >= 1);
    let len = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == len), "unequal buffers");
    if n == 1 {
        return inputs;
    }
    let ranges = chunk_ranges(len, n);
    let rings = ring_mesh::<E>(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .iter()
            .zip(rings)
            .map(|(data, ring)| {
                let ranges = &ranges;
                s.spawn(move || {
                    let me = ring.me;
                    let mut data = data.clone();
                    // Step s: send chunk (me − s − 1), receive chunk
                    // (me − s − 2) and fold our contribution in; the
                    // schedule is arranged so rank r finishes owning the
                    // fully-reduced chunk r (FSDP's shard layout).
                    for step in 0..n - 1 {
                        let send_chunk = (me + n - step - 1) % n;
                        ring.tx_next
                            .send(data[ranges[send_chunk].clone()].to_vec())
                            .expect("peer alive");
                        let recv_chunk = (me + 2 * n - step - 2) % n;
                        let got = ring.rx_prev.recv().expect("peer alive");
                        let seg = &mut data[ranges[recv_chunk].clone()];
                        // got already accumulates upstream contributions;
                        // fold ours in.
                        let mut acc = got;
                        reduce_add_into(&mut acc, seg);
                        seg.copy_from_slice(&acc);
                    }
                    // After n-1 steps, our own chunk holds the full sum.
                    data[ranges[me].clone()].to_vec()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

/// One real FSDP/ZeRO-3 training step over `n` ranks (§II-B1), with the
/// parameters sharded `1/n` per rank:
///
/// 1. allgather the shards into full parameters on every rank;
/// 2. each rank computes its local gradient via `grad_fn(rank, &params)`;
/// 3. reduce-scatter the gradients so each rank holds the summed gradient
///    for *its* shard;
/// 4. each rank applies `lr` to its shard only.
///
/// Returns the updated shards. Note chunk boundaries of the reduce-scatter
/// must match the shard boundaries — both use [`chunk_ranges`].
pub fn fsdp_step_exec<F>(mut shards: Vec<Vec<f32>>, grad_fn: F, lr: f32) -> Vec<Vec<f32>>
where
    F: Fn(usize, &[f32]) -> Vec<f32> + Sync,
{
    let n = shards.len();
    let full_len: usize = shards.iter().map(|s| s.len()).sum();
    let ranges = chunk_ranges(full_len, n);
    for (s, r) in shards.iter().zip(&ranges) {
        assert_eq!(s.len(), r.len(), "shards must follow chunk_ranges");
    }
    // 1. Allgather parameters.
    let full_params = allgather(shards.clone());
    // 2. Local gradients (parallel).
    let grads: Vec<Vec<f32>> = std::thread::scope(|s| {
        let handles: Vec<_> = full_params
            .iter()
            .enumerate()
            .map(|(rank, p)| {
                let grad_fn = &grad_fn;
                s.spawn(move || {
                    let g = grad_fn(rank, p);
                    assert_eq!(g.len(), p.len(), "gradient length mismatch");
                    g
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });
    // 3. Reduce-scatter gradients.
    let grad_shards = reduce_scatter(grads);
    // 4. Sharded update.
    for (rank, (shard, gshard)) in shards.iter_mut().zip(&grad_shards).enumerate() {
        assert_eq!(shard.len(), gshard.len(), "rank {rank} shard mismatch");
        for (w, g) in shard.iter_mut().zip(gshard) {
            *w -= lr * g;
        }
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::reference_sum;

    #[test]
    fn allgather_concatenates() {
        let shards: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0, 6.0]];
        let out = allgather(shards);
        for buf in &out {
            assert_eq!(buf, &vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        }
    }

    #[test]
    fn allgather_single_rank() {
        assert_eq!(allgather(vec![vec![7.0f32]]), vec![vec![7.0]]);
    }

    #[test]
    fn reduce_scatter_matches_reference_chunks() {
        let n = 4usize;
        let len = 37usize;
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..len).map(|i| ((r * 11 + i) % 7) as f32).collect())
            .collect();
        let full = reference_sum(&inputs);
        let ranges = chunk_ranges(len, n);
        let out = reduce_scatter(inputs);
        for (r, shard) in out.iter().enumerate() {
            assert_eq!(shard.as_slice(), &full[ranges[r].clone()], "rank {r}");
        }
    }

    #[test]
    fn reduce_scatter_then_allgather_is_allreduce() {
        let n = 5usize;
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..50).map(|i| ((r + i) % 9) as f32).collect())
            .collect();
        let want = reference_sum(&inputs);
        let gathered = allgather(reduce_scatter(inputs));
        for buf in &gathered {
            assert_eq!(buf, &want);
        }
    }

    #[test]
    fn fsdp_step_trains_a_quadratic() {
        // Minimize ½‖w − t‖² with t known; gradient = w − t, identical on
        // every rank (data parallel summing n copies ⇒ scale lr by 1/n).
        let n = 4usize;
        let dim = 10usize;
        let target: Vec<f32> = (0..dim).map(|i| i as f32 / 2.0).collect();
        let ranges = chunk_ranges(dim, n);
        let mut shards: Vec<Vec<f32>> = ranges.iter().map(|r| vec![0.0; r.len()]).collect();
        for _ in 0..100 {
            let t = target.clone();
            shards = fsdp_step_exec(
                shards,
                move |_rank, params| params.iter().zip(&t).map(|(w, t)| w - t).collect(),
                0.1 / n as f32,
            );
        }
        let learned: Vec<f32> = shards.into_iter().flatten().collect();
        for (w, t) in learned.iter().zip(&target) {
            assert!((w - t).abs() < 1e-3, "{w} vs {t}");
        }
    }

    #[test]
    fn uneven_shards_follow_chunk_ranges() {
        // 7 elements over 3 ranks: shards of 3, 2, 2.
        let ranges = chunk_ranges(7, 3);
        let shards: Vec<Vec<f32>> = ranges
            .iter()
            .map(|r| r.clone().map(|i| i as f32).collect())
            .collect();
        assert_eq!(shards[0].len(), 3);
        let out = allgather(shards);
        assert_eq!(out[2], (0..7).map(|i| i as f32).collect::<Vec<_>>());
    }
}
