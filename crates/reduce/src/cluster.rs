//! The assembled cluster model: node hardware + fat-tree network, shared by
//! the allreduce and training simulators.

use ff_desim::{FluidSim, Route};
use ff_hw::{NodeHw, NodeSpec};
use ff_net::{NetResources, ServiceLevel, VlConfig};
use ff_topo::fattree::{attach_host, build_zone, FatTreeSpec};
use ff_topo::graph::{NodeId, NodeKind, Topology};
use ff_topo::routing::{RoutePolicy, Router};

/// How to build a cluster model.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of compute nodes (8 GPUs each).
    pub nodes: usize,
    /// The node build.
    pub node_spec: NodeSpec,
    /// Virtual-lane configuration.
    pub vl: VlConfig,
    /// Force a two-zone network with nodes split evenly (Figure 7b); with
    /// `false` a single zone is used when the nodes fit.
    pub two_zone: bool,
}

impl ClusterConfig {
    /// A Fire-Flyer-2-like cluster of `nodes` nodes, single zone.
    ///
    /// Uses the shared-lane config: IB VL arbitration is work-conserving,
    /// so a collective running alone sees the full link regardless of lane
    /// weights. The hard-partition [`VlConfig::isolated`] model is for
    /// mixed-traffic congestion ablations, where only the guaranteed share
    /// matters.
    pub fn fire_flyer(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            node_spec: NodeSpec::pcie_a100(),
            vl: VlConfig::shared(),
            two_zone: false,
        }
    }

    /// Same but with NVLink bridges installed.
    pub fn fire_flyer_nvlink(nodes: usize) -> Self {
        ClusterConfig {
            node_spec: NodeSpec::pcie_a100_nvlink(),
            ..Self::fire_flyer(nodes)
        }
    }

    /// The full Fire-Flyer 2 deployment (§III): 1,250 nodes / 10,000 GPUs
    /// split across the paper's two zones, 625 nodes per zone under
    /// radix-40 leaf/spine switches, with the limited inter-zone links.
    /// Only viable with the incremental solver — the brute-force engine's
    /// global recompute makes this scale intractable.
    pub fn fire_flyer_full() -> Self {
        ClusterConfig {
            two_zone: true,
            ..Self::fire_flyer(1250)
        }
    }
}

/// A built cluster: fluid resources for every node's internals and every
/// network link, plus static routing.
pub struct ClusterModel {
    /// The fluid simulator holding all resources. Take it (`std::mem::take`)
    /// to hand to a `DagSim`; the routes remain valid.
    pub fluid: FluidSim,
    /// The network graph.
    pub topo: Topology,
    /// Link-lane resources.
    pub netres: NetResources,
    /// Compute-host topology ids, one per node.
    pub hosts: Vec<NodeId>,
    /// Node hardware handles, parallel to `hosts`.
    pub hw: Vec<NodeHw>,
}

/// Pick a zone shape that fits `nodes_per_zone` hosts: paper-shaped
/// (radix 40, 20 down / 20 up) once the cluster is big enough, a small
/// 8-down tree otherwise.
fn auto_zone(nodes_per_zone: usize) -> FatTreeSpec {
    if nodes_per_zone <= 16 {
        FatTreeSpec::small(nodes_per_zone.div_ceil(8).max(2), 4, 8)
    } else {
        FatTreeSpec {
            radix: 40,
            leaf_down: 20,
            leaves: nodes_per_zone.div_ceil(20).clamp(2, 40),
            spines: 20,
            link_capacity: ff_topo::fattree::IB_200G,
        }
    }
}

impl ClusterModel {
    /// Build the model.
    pub fn build(cfg: &ClusterConfig) -> Self {
        assert!(cfg.nodes >= 1, "cluster needs at least one node");
        let mut fluid = FluidSim::new();
        let mut topo = Topology::new();
        let zones = if cfg.two_zone { 2 } else { 1 };
        let per_zone = cfg.nodes.div_ceil(zones);
        let spec = auto_zone(per_zone);
        assert!(
            per_zone <= spec.endpoints(),
            "{per_zone} nodes exceed zone capacity {}",
            spec.endpoints()
        );
        let mut zone_ids: Vec<_> = (0..zones)
            .map(|z| build_zone(&mut topo, &spec, z as u8))
            .collect();
        if zones == 2 {
            // A limited number of inter-zone links between paired spines.
            let n_ix = spec.spines.min(4);
            for i in 0..n_ix {
                let a = zone_ids[0].spines[i];
                let b = zone_ids[1].spines[i];
                topo.add_link(a, b, spec.link_capacity);
            }
        }
        let mut hosts = Vec::with_capacity(cfg.nodes);
        let mut hw = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            let z = if zones == 2 && i >= per_zone { 1 } else { 0 };
            let h = topo.add_node(NodeKind::ComputeHost, format!("node{i:03}"), Some(z as u8));
            attach_host(&mut topo, &mut zone_ids[z], h, spec.link_capacity);
            hosts.push(h);
            hw.push(NodeHw::install(
                &mut fluid,
                &format!("node{i:03}"),
                &cfg.node_spec,
            ));
        }
        let netres = NetResources::install(&mut fluid, &topo, cfg.vl.clone());
        ClusterModel {
            fluid,
            topo,
            netres,
            hosts,
            hw,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.hosts.len()
    }

    /// Total GPUs.
    pub fn gpus(&self) -> usize {
        self.hw.iter().map(|h| h.gpus()).sum()
    }

    /// The network-only route between two nodes on the lane of `sl`, using
    /// the paper's static (destination-hashed) routing.
    pub fn net_route(&self, src_node: usize, dst_node: usize, sl: ServiceLevel) -> Route {
        let router = Router::new(&self.topo, RoutePolicy::StaticByDestination);
        let src = self.hosts[src_node];
        let dst = self.hosts[dst_node];
        let path = router.route(src, dst, 0, &|_| 0.0);
        self.netres.path_route(&self.topo, src, &path, sl)
    }

    /// Full node→node RDMA edge: sender's IB send path, network, receiver's
    /// IB receive path. `reduce_at_dst` adds the receive-side reduce-add
    /// memory read (tree-up edges) versus a plain write (broadcast edges).
    pub fn rdma_edge(
        &self,
        src_node: usize,
        dst_node: usize,
        sl: ServiceLevel,
        reduce_at_dst: bool,
    ) -> Route {
        let send = self.hw[src_node].ib_send(0);
        let net = self.net_route(src_node, dst_node, sl);
        let recv = if reduce_at_dst {
            self.hw[dst_node].ib_recv_reduce(0)
        } else {
            self.hw[dst_node].ib_recv(0)
        };
        send.join(net).join(recv)
    }

    /// Zone of a node.
    pub fn zone_of(&self, node: usize) -> u8 {
        self.topo.zone(self.hosts[node]).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_builds() {
        let c = ClusterModel::build(&ClusterConfig::fire_flyer(4));
        assert_eq!(c.nodes(), 4);
        assert_eq!(c.gpus(), 32);
        assert_eq!(c.topo.hosts().len(), 4);
    }

    #[test]
    fn paper_scale_cluster_builds() {
        let c = ClusterModel::build(&ClusterConfig::fire_flyer(180));
        assert_eq!(c.gpus(), 1440);
        // Paper-shaped zone: radix-40 switches appear.
        assert!(c.topo.switches().len() >= 9 + 20);
    }

    #[test]
    fn full_cluster_builds_at_paper_scale() {
        let c = ClusterModel::build(&ClusterConfig::fire_flyer_full());
        assert_eq!(c.nodes(), 1250);
        assert_eq!(c.gpus(), 10_000);
        // Two paper-shaped zones with hosts in both.
        assert_eq!(c.zone_of(0), 0);
        assert_eq!(c.zone_of(1249), 1);
        assert!(c.topo.switches().len() >= 2 * (32 + 20));
    }

    #[test]
    fn two_zone_splits_nodes() {
        let c = ClusterModel::build(&ClusterConfig {
            two_zone: true,
            ..ClusterConfig::fire_flyer(8)
        });
        assert_eq!(c.zone_of(0), 0);
        assert_eq!(c.zone_of(7), 1);
        assert_eq!((0..8).filter(|&n| c.zone_of(n) == 0).count(), 4);
    }

    #[test]
    fn rdma_edge_moves_data_at_nic_speed() {
        let mut c = ClusterModel::build(&ClusterConfig::fire_flyer(2));
        let route = c.rdma_edge(0, 1, ServiceLevel::HfReduce, true);
        let f = c.fluid.start_flow(1e9, &route);
        // NIC wire (25e9) binds; membus weights don't (320/3 > 25).
        let rate = c.fluid.flow_rate(f);
        assert!((rate - 25e9).abs() < 1e3, "rate {rate}");
    }

    #[test]
    fn isolated_vl_config_caps_the_storage_lane() {
        let mut c = ClusterModel::build(&ClusterConfig {
            vl: VlConfig::isolated(),
            ..ClusterConfig::fire_flyer(2)
        });
        let r = c.net_route(0, 1, ServiceLevel::Storage);
        let f = c.fluid.start_flow(1e9, &r);
        // Storage lane gets its guaranteed 35% of 25e9.
        let rate = c.fluid.flow_rate(f);
        assert!((rate - 0.35 * 25e9).abs() < 1e3, "rate {rate}");
    }

    #[test]
    fn cross_zone_edge_exists_in_two_zone_mode() {
        let mut c = ClusterModel::build(&ClusterConfig {
            two_zone: true,
            ..ClusterConfig::fire_flyer(4)
        });
        let r = c.rdma_edge(0, 3, ServiceLevel::HfReduce, false);
        let f = c.fluid.start_flow(1e6, &r);
        assert!(c.fluid.flow_rate(f) > 0.0);
    }
}
