//! Empirical transport calibration: measure a fabric backend's
//! per-message latency and large-message bandwidth, and hand the
//! constants to the `ff_hw` link model.
//!
//! The measurement is the classic two-regime ping-pong between ranks 0
//! and 1 of a two-endpoint world, run through [`CalibratedFabric`] so the
//! raw meters (messages, bytes, wall-clock inside `send`) are captured
//! alongside the fitted constants:
//!
//! * **small messages** (8 bytes) — the round-trip is pure per-message
//!   overhead, so `latency ≈ RTT / 2`;
//! * **large messages** — the round-trip is dominated by moving bytes, so
//!   `bandwidth ≈ bytes / (RTT/2 − latency)`.
//!
//! The resulting [`Calibration`] serializes to the committed
//! `calibration.json` (see the `fabric_bench` binary) and converts to an
//! [`ff_hw::LinkParams`] via [`Calibration::link_params`], which is how
//! the simulator's HFReduce prediction gets checked against a measured
//! loopback run (EXPERIMENTS.md).

use crate::fabric::{cal_sink, CalibratedFabric, Fabric, FabricProvider, Tag};
use std::time::{Duration, Instant};

/// Payload of the latency-regime ping.
const SMALL_BYTES: usize = 8;
/// Echo-side patience; generous — the pinger drives the pace.
const ECHO_TIMEOUT: Duration = Duration::from_secs(30);

/// Measured transport constants for one backend, plus the raw meters the
/// [`CalibratedFabric`] middleware accumulated during the run.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Backend name ("inmem", "tcp").
    pub backend: String,
    /// Ping-pong rounds in the latency regime.
    pub rounds: usize,
    /// Payload bytes of the latency-regime ping.
    pub small_bytes: usize,
    /// Payload bytes of the bandwidth-regime ping.
    pub large_bytes: usize,
    /// Fitted one-way per-message latency, microseconds.
    pub latency_us: f64,
    /// Fitted large-message goodput, GB/s.
    pub bandwidth_gbps: f64,
    /// Raw meter: messages sent across both endpoints.
    pub meter_sends: u64,
    /// Raw meter: payload bytes sent across both endpoints.
    pub meter_bytes: u64,
}

impl Calibration {
    /// The measured constants as an `ff_hw` link parameterization.
    pub fn link_params(&self) -> ff_hw::LinkParams {
        ff_hw::LinkParams::new(self.bandwidth_gbps * 1e9, self.latency_us * 1e-6)
    }

    /// Hand-rolled JSON encoding (the repo carries no serializer
    /// dependency), shaped for the committed `calibration.json`.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"backend\": \"{}\",\n",
                "  \"rounds\": {},\n",
                "  \"small_bytes\": {},\n",
                "  \"large_bytes\": {},\n",
                "  \"latency_us\": {:.3},\n",
                "  \"bandwidth_gbps\": {:.3},\n",
                "  \"meter\": {{ \"sends\": {}, \"bytes\": {} }}\n",
                "}}"
            ),
            self.backend,
            self.rounds,
            self.small_bytes,
            self.large_bytes,
            self.latency_us,
            self.bandwidth_gbps,
            self.meter_sends,
            self.meter_bytes,
        )
    }
}

fn ping_tag(i: u32) -> Tag {
    Tag {
        phase: crate::fabric::PHASE_A2A,
        tree: 0,
        chunk: i,
    }
}

/// Echo every data frame straight back until the pinger hangs up.
fn echo_loop<F: Fabric>(fab: &mut F) {
    loop {
        match fab.recv_any(ECHO_TIMEOUT) {
            Ok(m) if m.tag.is_ctrl() => return,
            Ok(m) => {
                if fab.send(m.from, m.tag, &m.bytes).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// One timed ping-pong burst; returns total wall-clock for `count`
/// round trips of `payload`.
fn pingpong<F: Fabric>(fab: &mut F, payload: &[u8], count: usize, base: u32) -> Duration {
    let t0 = Instant::now();
    for i in 0..count {
        let tag = ping_tag(base + i as u32);
        fab.send(1, tag, payload).expect("calibration send");
        let echo = fab
            .recv_any(ECHO_TIMEOUT)
            .expect("calibration echo within timeout");
        assert_eq!(echo.tag, tag, "echo out of order");
    }
    t0.elapsed()
}

/// Measure `provider`'s transport with a two-rank ping-pong: `rounds`
/// small round trips fit the latency, `max(2, rounds/16)` round trips of
/// `large_bytes` fit the bandwidth. Wall-clock-based, so the numbers are
/// machine-dependent — they are calibration inputs, never test oracles.
pub fn calibrate<P: FabricProvider>(
    provider: &P,
    rounds: usize,
    large_bytes: usize,
) -> Calibration {
    assert!(rounds >= 1 && large_bytes > SMALL_BYTES);
    let sink = cal_sink();
    let mut world = provider.world(2).expect("fabric world construction");
    let f1 = world.pop().expect("two endpoints");
    let f0 = world.pop().expect("two endpoints");
    let mut echo = CalibratedFabric::new(f1, sink.clone());
    let mut pinger = CalibratedFabric::new(f0, sink.clone());

    let small = vec![0u8; SMALL_BYTES];
    let large = vec![0u8; large_bytes];
    let large_rounds = (rounds / 16).max(2);
    let (backend, small_elapsed, large_elapsed) = std::thread::scope(|s| {
        let echo_thread = s.spawn(move || echo_loop(&mut echo));
        // Warm-up: first messages pay one-time costs (page faults, TCP
        // slow start) that belong to neither regime.
        pingpong(&mut pinger, &small, 4.min(rounds), 0);
        let small_elapsed = pingpong(&mut pinger, &small, rounds, 1000);
        let large_elapsed = pingpong(&mut pinger, &large, large_rounds, 1_000_000);
        let backend = pinger.backend().to_string();
        drop(pinger); // hangup: the echo thread exits on the ctrl frame
        echo_thread.join().expect("echo thread");
        (backend, small_elapsed, large_elapsed)
    });

    let latency_s = small_elapsed.as_secs_f64() / (2.0 * rounds as f64);
    let per_dir_large = large_elapsed.as_secs_f64() / (2.0 * large_rounds as f64);
    // Subtract the per-message floor; clamp so a noisy run can't produce
    // a non-positive transfer time.
    let transfer_s = (per_dir_large - latency_s).max(per_dir_large * 0.1);
    let stats = *sink.lock();
    Calibration {
        backend,
        rounds,
        small_bytes: SMALL_BYTES,
        large_bytes,
        latency_us: latency_s * 1e6,
        bandwidth_gbps: large_bytes as f64 / transfer_s / 1e9,
        meter_sends: stats.sends,
        meter_bytes: stats.bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{InMemProvider, TcpProvider};

    #[test]
    fn inmem_calibration_produces_positive_constants() {
        let cal = calibrate(&InMemProvider, 16, 1 << 16);
        assert_eq!(cal.backend, "inmem");
        assert!(cal.latency_us > 0.0, "{cal:?}");
        assert!(cal.bandwidth_gbps > 0.0, "{cal:?}");
        assert!(cal.meter_sends >= 2 * 16, "{cal:?}");
        let lp = cal.link_params();
        assert!(lp.bps > 0.0 && lp.latency_s > 0.0);
    }

    #[test]
    fn tcp_calibration_produces_positive_constants() {
        let cal = calibrate(&TcpProvider, 8, 1 << 16);
        assert_eq!(cal.backend, "tcp");
        assert!(cal.latency_us > 0.0 && cal.bandwidth_gbps > 0.0, "{cal:?}");
    }

    #[test]
    fn calibration_json_is_well_formed() {
        let cal = Calibration {
            backend: "inmem".into(),
            rounds: 32,
            small_bytes: 8,
            large_bytes: 1 << 20,
            latency_us: 1.25,
            bandwidth_gbps: 4.5,
            meter_sends: 100,
            meter_bytes: 12345,
        };
        let j = cal.to_json();
        assert!(j.contains("\"backend\": \"inmem\""));
        assert!(j.contains("\"latency_us\": 1.250"));
        assert!(j.contains("\"bytes\": 12345"));
    }
}
