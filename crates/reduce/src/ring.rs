//! The NCCL-style ring-allreduce baseline (§IV-B).
//!
//! On the Fire-Flyer node NCCL's ring is doubly handicapped:
//!
//! 1. **PCIe amplification** — each unit of gradient data makes `2n−1`
//!    hops around the ring, consuming `(2n−1)/n ≈ 2` units of every GPU's
//!    PCIe bandwidth (§IV-B1).
//! 2. **The Rome P2P ceiling** — node-boundary hops are GPUDirect
//!    transfers between a GPU and the NIC, capped at ≈9 GiB/s because EPYC
//!    Rome lacks chained writes (§IV-D2). This is the binding constraint
//!    that explains the observed ~4 GB/s.
//!
//! Two models: an analytic steady-state formula (used for the full Figure
//! 7a sweep) and a full DAG simulation of the reduce-scatter + allgather
//! schedule (used to validate the analytic model at small scale).

use crate::cluster::ClusterModel;
use ff_desim::{DagNodeId, DagSim, SimDuration, Work};
use ff_hw::spec::{GPUS_PER_NODE, PCIE4_X16_BPS, ROME_P2P_BPS};
use ff_net::ServiceLevel;

/// Per-ring-step fixed overhead (kernel launch + protocol), calibrated so
/// the model reproduces NCCL's measured decline from ~4.8 GB/s at 16 GPUs
/// to ~1.6 GB/s at 1,440 GPUs in Figure 7a.
pub const RING_STEP_OVERHEAD_S: f64 = 28e-6;

/// Analytic ring-allreduce algorithm bandwidth for `gpus` GPUs moving
/// `bytes` per GPU (bytes/second).
pub fn ring_analytic_bw(gpus: usize, bytes: f64) -> f64 {
    assert!(gpus >= 2);
    let n = gpus as f64;
    // Steady-state bus bandwidth: the slowest link on the ring. Intra-node
    // hops run over PCIe but carry (2n-1)/n units per gradient unit; the
    // node-boundary hop is P2P-ceiling-bound.
    let pcie_eff = PCIE4_X16_BPS / ((2.0 * n - 1.0) / n);
    let busbw = if gpus > GPUS_PER_NODE {
        ROME_P2P_BPS.min(pcie_eff)
    } else {
        pcie_eff
    };
    // 2(n-1) steps of bytes/n each, plus fixed per-step overhead.
    let steps = 2.0 * (n - 1.0);
    let t = steps * (bytes / n / busbw + RING_STEP_OVERHEAD_S);
    bytes / t
}

/// Full DAG simulation of the ring allreduce (reduce-scatter + allgather)
/// on a cluster model. Feasible up to roughly 64 GPUs; each of the
/// `2(n−1)` steps creates `n` flows.
pub fn ring_simulate(cluster: &mut ClusterModel, bytes: f64) -> f64 {
    let n = cluster.gpus();
    assert!(n >= 2);
    let g_per = cluster.hw[0].gpus();
    let fluid = std::mem::take(&mut cluster.fluid);
    let mut dag = DagSim::new(fluid);
    let chunk = bytes / n as f64;
    // Ring order: node-major, GPUs in index order.
    let node_of = |rank: usize| rank / g_per;
    let gpu_of = |rank: usize| rank % g_per;
    let steps = 2 * (n - 1);
    let mut prev_step: Vec<Option<DagNodeId>> = vec![None; n];
    for _s in 0..steps {
        let mut this_step: Vec<Option<DagNodeId>> = vec![None; n];
        for r in 0..n {
            let dst = (r + 1) % n;
            let (nu, nv) = (node_of(r), node_of(dst));
            let route = if nu == nv {
                cluster.hw[nu].gpu_p2p(gpu_of(r), gpu_of(dst))
            } else {
                let up = cluster.hw[nu].gpu_nic_send(gpu_of(r), 0);
                let net = cluster.net_route(nu, nv, ServiceLevel::Nccl);
                let down = cluster.hw[nv].nic_gpu_recv(0, gpu_of(dst));
                up.join(net).join(down)
            };
            // Rank r's send at step s needs: its own previous send done
            // (serialized NIC/kernel) and the data it received at step s-1
            // from rank r-1.
            let mut deps = Vec::new();
            if let Some(p) = prev_step[r] {
                deps.push(p);
            }
            if let Some(p) = prev_step[(r + n - 1) % n] {
                deps.push(p);
            }
            // Per-step launch overhead.
            let gate = dag.add(
                Work::Delay(SimDuration::from_secs_f64(RING_STEP_OVERHEAD_S)),
                &deps,
            );
            let id = dag.add(Work::Transfer { work: chunk, route }, &[gate]);
            this_step[r] = Some(id);
        }
        prev_step = this_step;
    }
    let makespan = dag.run();
    cluster.fluid = dag.into_fluid();
    bytes / makespan.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ClusterModel};

    const MIB: f64 = 1024.0 * 1024.0;

    #[test]
    fn analytic_matches_paper_endpoints() {
        // Figure 7a: NCCL ≈ 4.8 GB/s at 16 GPUs, 1.6–2 GB/s at 1,440.
        let small = ring_analytic_bw(16, 186.0 * MIB);
        let large = ring_analytic_bw(1440, 186.0 * MIB);
        assert!(
            (4.0e9..6.0e9).contains(&small),
            "16-GPU bw {small} outside paper band"
        );
        assert!(
            (1.2e9..2.4e9).contains(&large),
            "1440-GPU bw {large} outside paper band"
        );
    }

    #[test]
    fn analytic_decreases_with_scale() {
        let mut prev = f64::INFINITY;
        for gpus in [16, 64, 256, 512, 1440] {
            let bw = ring_analytic_bw(gpus, 186.0 * MIB);
            assert!(bw < prev, "bw should fall with scale");
            prev = bw;
        }
    }

    #[test]
    fn single_node_ring_is_pcie_bound_not_p2p_bound() {
        let bw = ring_analytic_bw(8, 186.0 * MIB);
        // Intra-node only: no NIC boundary, so well above the 4.5 GB/s
        // inter-node regime.
        assert!(bw > 8e9, "bw {bw}");
    }

    #[test]
    fn simulation_agrees_with_analytic_at_small_scale() {
        let mut cluster = ClusterModel::build(&ClusterConfig::fire_flyer(2));
        let sim = ring_simulate(&mut cluster, 32.0 * MIB);
        let ana = ring_analytic_bw(16, 32.0 * MIB);
        let ratio = sim / ana;
        assert!(
            (0.4..2.5).contains(&ratio),
            "sim {sim} vs analytic {ana} (ratio {ratio})"
        );
    }

    #[test]
    fn hfreduce_beats_nccl_everywhere_in_figure7a() {
        // The paper's headline comparison: 6.3–8.1 vs 1.6–4.8 GB/s.
        use crate::model::{hfreduce_time, HfReduceOptions};
        let mut cluster = ClusterModel::build(&ClusterConfig::fire_flyer(4));
        let hf = hfreduce_time(&mut cluster, 64.0 * MIB, &HfReduceOptions::default());
        let nccl = ring_analytic_bw(32, 64.0 * MIB);
        assert!(
            hf.algbw_bps > nccl,
            "HFReduce {} must beat NCCL {}",
            hf.algbw_bps,
            nccl
        );
    }
}
