//! The redesigned collectives API: one [`Communicator`] handle per rank.
//!
//! A `Communicator<F: Fabric>` wraps one rank's [`Fabric`] endpoint and
//! provides every executable collective as a method — `allreduce` (double
//! binary tree or ring), `reduce_to_root`, `broadcast`, `hfreduce`, and
//! `all2all` — plus the plumbing they share: tag matching with an
//! out-of-order stash, element serialization, peer-death bookkeeping, and
//! the per-rank logical-clock observability discipline (a staged
//! [`TrackBuf`] whose clock counts *elements moved*). The world-level
//! drivers in [`exec`](crate::exec) spawn one thread per rank, hand each
//! a `Communicator`, and commit the staged observability buffers only for
//! clean executions.
//!
//! Elements travel the wire as little-endian `f32` (4 bytes each): every
//! dtype in `ff_dtypes` widens to `f32` exactly and rounds back to itself,
//! so the encoding is lossless while keeping one frame format across all
//! precisions. Arbitrary payloads (the MoE all2all routes structured
//! tokens) implement [`Wire`] instead.

use crate::fabric::{
    CommError, Fabric, RecvAnyError, Tag, DEFAULT_RECV_TIMEOUT, PHASE_A2A, PHASE_DOWN, PHASE_RING,
    PHASE_UP,
};
use crate::kernels::{chunk_ranges, reduce_add_into, reduce_n_into};
use ff_dtypes::Element;
use ff_obs::TrackBuf;
use ff_topo::dbtree::DoubleBinaryTree;
use std::collections::HashMap;
use std::time::Duration;

/// Reduction operator for [`Communicator::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Op {
    /// Elementwise sum — the gradient-accumulation operator HFReduce
    /// serves (§IV).
    Sum,
}

/// Which allreduce algorithm runs under [`Communicator::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Chunked double-binary-tree allreduce (Algorithm 2): tree A carries
    /// the lower half of each chunk, tree B the upper half.
    DbTree {
        /// Number of pipeline chunks (clamped to `1..=len`).
        chunks: usize,
    },
    /// Ring allreduce (reduce-scatter + allgather) — the NCCL-style
    /// baseline. Needs at least one element per rank.
    Ring,
}

// ---------------------------------------------------------------------------
// Wire serialization for arbitrary all2all payloads
// ---------------------------------------------------------------------------

/// Read cursor over a received frame, consumed by [`Wire::wire_read`].
pub struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireCursor<'a> {
        WireCursor { buf, pos: 0 }
    }

    /// Take the next `n` bytes, or `None` past the end.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// True once every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Self-describing byte serialization for all2all payloads — the typed
/// messages (routed MoE tokens, index pairs) that must cross a byte
/// transport. Collective element buffers do *not* go through `Wire`; they
/// use the fixed `f32` frame format directly.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn wire_write(&self, out: &mut Vec<u8>);
    /// Decode one value, or `None` on malformed bytes.
    fn wire_read(cur: &mut WireCursor<'_>) -> Option<Self>;
}

macro_rules! wire_le_bytes {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn wire_write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn wire_read(cur: &mut WireCursor<'_>) -> Option<Self> {
                let b = cur.take(std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(b.try_into().ok()?))
            }
        }
    )*};
}

wire_le_bytes!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Wire for usize {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (*self as u64).wire_write(out);
    }
    fn wire_read(cur: &mut WireCursor<'_>) -> Option<Self> {
        usize::try_from(u64::wire_read(cur)?).ok()
    }
}

impl Wire for bool {
    fn wire_write(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn wire_read(cur: &mut WireCursor<'_>) -> Option<Self> {
        match cur.take(1)? {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.0.wire_write(out);
        self.1.wire_write(out);
    }
    fn wire_read(cur: &mut WireCursor<'_>) -> Option<Self> {
        Some((A::wire_read(cur)?, B::wire_read(cur)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.0.wire_write(out);
        self.1.wire_write(out);
        self.2.wire_write(out);
    }
    fn wire_read(cur: &mut WireCursor<'_>) -> Option<Self> {
        Some((A::wire_read(cur)?, B::wire_read(cur)?, C::wire_read(cur)?))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (self.len() as u32).wire_write(out);
        for x in self {
            x.wire_write(out);
        }
    }
    fn wire_read(cur: &mut WireCursor<'_>) -> Option<Self> {
        let n = u32::wire_read(cur)? as usize;
        let mut v = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push(T::wire_read(cur)?);
        }
        Some(v)
    }
}

impl Wire for String {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (self.len() as u32).wire_write(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn wire_read(cur: &mut WireCursor<'_>) -> Option<Self> {
        let n = u32::wire_read(cur)? as usize;
        String::from_utf8(cur.take(n)?.to_vec()).ok()
    }
}

// ---------------------------------------------------------------------------
// Elements on the wire
// ---------------------------------------------------------------------------

/// Bytes per element on the wire: everything travels as little-endian
/// `f32`, which every `ff_dtypes` element widens to exactly.
const ELEM_WIRE_BYTES: usize = 4;

fn encode_elems<E: Element>(data: &[E]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * ELEM_WIRE_BYTES);
    for x in data {
        out.extend_from_slice(&x.to_f32().to_le_bytes());
    }
    out
}

fn decode_elems<E: Element>(bytes: &[u8]) -> Option<Vec<E>> {
    if !bytes.len().is_multiple_of(ELEM_WIRE_BYTES) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(ELEM_WIRE_BYTES)
            .map(|c| E::from_f32(f32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect(),
    )
}

fn phase_char(phase: u8) -> char {
    match phase {
        PHASE_UP => 'u',
        PHASE_DOWN => 'd',
        PHASE_A2A => 'a',
        _ => 'g', // ring
    }
}

// ---------------------------------------------------------------------------
// The Communicator
// ---------------------------------------------------------------------------

/// One rank's handle onto the collectives: the headline API every call
/// site uses (`comm.allreduce(..)`, `comm.hfreduce(..)`,
/// `comm.all2all(..)`). Generic over the transport; the algorithms above
/// it are transport-invariant by construction, which the trace-digest
/// harness verifies bit-for-bit across backends.
pub struct Communicator<F: Fabric> {
    fab: F,
    /// Out-of-order arrivals, keyed by `(sender, tag)`.
    stash: HashMap<(usize, Tag), Vec<u8>>,
    /// Peers that delivered a hangup control frame.
    dead: Vec<bool>,
    recv_timeout: Duration,
    /// Staged observability events; the world driver commits them only
    /// for clean executions (see [`ObsCtx`](crate::exec::ObsCtx)).
    obs: Option<TrackBuf>,
}

impl<F: Fabric> Communicator<F> {
    /// Wrap a fabric endpoint with the default receive timeout.
    pub fn new(fab: F) -> Communicator<F> {
        Self::with_timeout(fab, DEFAULT_RECV_TIMEOUT)
    }

    /// Wrap a fabric endpoint with a custom receive timeout — the
    /// liveness-detection latency for all collectives run through it.
    pub fn with_timeout(fab: F, recv_timeout: Duration) -> Communicator<F> {
        let n = fab.world_size();
        Communicator {
            fab,
            stash: HashMap::new(),
            dead: vec![false; n],
            recv_timeout,
            obs: None,
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.fab.rank()
    }

    /// Ranks in the world.
    pub fn world_size(&self) -> usize {
        self.fab.world_size()
    }

    /// The underlying fabric endpoint (e.g. to ask a
    /// [`FaultyFabric`](crate::fabric::FaultyFabric) whether its injected
    /// death fired).
    pub fn fabric(&self) -> &F {
        &self.fab
    }

    /// Attach a staged observability buffer; send/recv events accumulate
    /// there until the world driver commits or discards them.
    pub fn set_obs(&mut self, buf: TrackBuf) {
        self.obs = Some(buf);
    }

    /// Detach the staged observability buffer, if any.
    pub fn take_obs(&mut self) -> Option<TrackBuf> {
        self.obs.take()
    }

    /// Record a non-communication span (e.g. HFReduce's intra-node
    /// reduce) onto the staged observability buffer.
    pub fn note(&mut self, name: &str, ticks: u64, value: f64) {
        if let Some(buf) = &mut self.obs {
            buf.op(name, ticks, value);
        }
    }

    /// Send `data` to `to` under the collective leg `(tree, chunk, phase)`.
    pub fn send_elems<E: Element>(
        &mut self,
        to: usize,
        tree: u8,
        chunk: u32,
        phase: u8,
        data: &[E],
    ) -> Result<(), CommError> {
        if let Some(buf) = &mut self.obs {
            let len = data.len() as u64;
            let name = format!("send:{}:t{tree}:c{chunk}->r{to}", phase_char(phase));
            buf.op(&name, len, len as f64);
        }
        let tag = Tag { phase, tree, chunk };
        self.fab.send(to, tag, &encode_elems(data))
    }

    /// Receive the element buffer `from` sent under `(tree, chunk, phase)`,
    /// stashing any other traffic that arrives first.
    pub fn recv_elems<E: Element>(
        &mut self,
        from: usize,
        tree: u8,
        chunk: u32,
        phase: u8,
    ) -> Result<Vec<E>, CommError> {
        let tag = Tag { phase, tree, chunk };
        let bytes = self.recv_raw(from, tag)?;
        let data = decode_elems::<E>(&bytes).ok_or(CommError::Protocol { peer: from })?;
        if let Some(buf) = &mut self.obs {
            let len = data.len() as u64;
            let name = format!("recv:{}:t{tree}:c{chunk}<-r{from}", phase_char(tag.phase));
            buf.op(&name, len, len as f64);
        }
        Ok(data)
    }

    /// Tag-matched receive over the raw fabric. The stash is consulted
    /// before the dead-peer flag: a message sent before a hangup must
    /// still be deliverable after it (per-pair FIFO guarantees data
    /// frames precede the hangup frame).
    fn recv_raw(&mut self, from: usize, tag: Tag) -> Result<Vec<u8>, CommError> {
        if let Some(b) = self.stash.remove(&(from, tag)) {
            return Ok(b);
        }
        if self.dead[from] {
            return Err(CommError::Disconnected { peer: from });
        }
        loop {
            let msg = match self.fab.recv_any(self.recv_timeout) {
                Ok(m) => m,
                Err(RecvAnyError::Timeout) => {
                    return Err(CommError::Timeout {
                        peer: from,
                        deadline: self.recv_timeout,
                    })
                }
                Err(RecvAnyError::Closed) => return Err(CommError::Disconnected { peer: from }),
            };
            if msg.tag.is_ctrl() {
                self.dead[msg.from] = true;
                if msg.from == from {
                    return Err(CommError::Disconnected { peer: from });
                }
                continue;
            }
            if msg.from == from && msg.tag == tag {
                return Ok(msg.bytes);
            }
            let dup = self.stash.insert((msg.from, msg.tag), msg.bytes);
            assert!(
                dup.is_none(),
                "duplicate message from rank {} tag {:?}",
                msg.from,
                msg.tag
            );
        }
    }

    // -- collectives ------------------------------------------------------

    /// Allreduce `data` in place across the world: every rank ends up
    /// holding the elementwise sum.
    pub fn allreduce<E: Element>(
        &mut self,
        data: &mut [E],
        _op: Op,
        algo: Algo,
    ) -> Result<(), CommError> {
        let n = self.world_size();
        if n == 1 {
            return Ok(());
        }
        match algo {
            Algo::DbTree { chunks } => {
                let dt = DoubleBinaryTree::new(n);
                let chunks = chunks.clamp(1, data.len().max(1));
                self.dbtree_allreduce_rank(&dt, data, chunks)
            }
            Algo::Ring => {
                assert!(data.len() >= n, "ring needs at least one element per rank");
                self.ring_allreduce_rank(data)
            }
        }
    }

    /// This rank's side of the chunked double-binary-tree allreduce:
    /// reduces `data` in place to the global sum. Tree A carries the
    /// lower half of each chunk, tree B the upper half.
    fn dbtree_allreduce_rank<E: Element>(
        &mut self,
        dt: &DoubleBinaryTree,
        data: &mut [E],
        chunks: usize,
    ) -> Result<(), CommError> {
        let rank = self.rank();
        let ranges = chunk_ranges(data.len(), chunks);
        for (c, range) in ranges.iter().enumerate() {
            let mid = range.start + range.len() / 2;
            let halves = [range.start..mid, mid..range.end];
            for (ti, tree) in [&dt.a, &dt.b].into_iter().enumerate() {
                let seg = halves[ti].clone();
                let mut acc: Vec<E> = data[seg.clone()].to_vec();
                for &child in &tree.children[rank] {
                    let got = self.recv_elems(child, ti as u8, c as u32, PHASE_UP)?;
                    reduce_add_into(&mut acc, &got);
                }
                let result = match tree.parent[rank] {
                    Some(parent) => {
                        self.send_elems(parent, ti as u8, c as u32, PHASE_UP, &acc)?;
                        self.recv_elems(parent, ti as u8, c as u32, PHASE_DOWN)?
                    }
                    None => acc,
                };
                for &child in &tree.children[rank] {
                    self.send_elems(child, ti as u8, c as u32, PHASE_DOWN, &result)?;
                }
                data[seg].copy_from_slice(&result);
            }
        }
        Ok(())
    }

    /// This rank's ring allreduce (reduce-scatter + allgather).
    fn ring_allreduce_rank<E: Element>(&mut self, data: &mut [E]) -> Result<(), CommError> {
        let n = self.world_size();
        let rank = self.rank();
        let ranges = chunk_ranges(data.len(), n);
        let next = (rank + 1) % n;
        let prev = (rank + n - 1) % n;
        let mut step = 0u32;
        // Reduce-scatter: after n-1 steps rank r owns the sum of chunk
        // (r+1)%n.
        for s in 0..n - 1 {
            let send_chunk = (rank + n - s) % n;
            let recv_chunk = (rank + n - s - 1) % n;
            let out = data[ranges[send_chunk].clone()].to_vec();
            self.send_elems(next, 0, step, PHASE_RING, &out)?;
            let got = self.recv_elems(prev, 0, step, PHASE_RING)?;
            reduce_add_into(&mut data[ranges[recv_chunk].clone()], &got);
            step += 1;
        }
        // Allgather: circulate the finished chunks.
        for s in 0..n - 1 {
            let send_chunk = (rank + 1 + n - s) % n;
            let recv_chunk = (rank + n - s) % n;
            let out = data[ranges[send_chunk].clone()].to_vec();
            self.send_elems(next, 0, step, PHASE_RING, &out)?;
            let got = self.recv_elems(prev, 0, step, PHASE_RING)?;
            data[ranges[recv_chunk].clone()].copy_from_slice(&got);
            step += 1;
        }
        Ok(())
    }

    /// This rank's side of a single-tree (tree A) reduce with no
    /// broadcast-down pass — the "general reduce" operation HFReduce also
    /// serves (§IV). Returns `Some(sum)` on the tree root, `None`
    /// elsewhere.
    pub fn reduce_to_root<E: Element>(
        &mut self,
        mut data: Vec<E>,
        chunks: usize,
    ) -> Result<Option<Vec<E>>, CommError> {
        let n = self.world_size();
        if n == 1 {
            return Ok(Some(data));
        }
        let dt = DoubleBinaryTree::new(n);
        let tree = &dt.a;
        let rank = self.rank();
        let chunks = chunks.clamp(1, data.len().max(1));
        let ranges = chunk_ranges(data.len(), chunks);
        for (c, range) in ranges.iter().enumerate() {
            let mut acc: Vec<E> = data[range.clone()].to_vec();
            for &child in &tree.children[rank] {
                let got = self.recv_elems(child, 0, c as u32, PHASE_UP)?;
                reduce_add_into(&mut acc, &got);
            }
            if let Some(parent) = tree.parent[rank] {
                self.send_elems(parent, 0, c as u32, PHASE_UP, &acc)?;
            } else {
                data[range.clone()].copy_from_slice(&acc);
            }
        }
        Ok(if tree.parent[rank].is_none() {
            Some(data)
        } else {
            None
        })
    }

    /// This rank's side of a tree-A broadcast from the root: the root's
    /// `buf` holds the payload, every other rank's `buf` is overwritten
    /// with it chunk by chunk.
    pub fn broadcast<E: Element>(&mut self, buf: &mut [E], chunks: usize) -> Result<(), CommError> {
        let n = self.world_size();
        if n == 1 {
            return Ok(());
        }
        let dt = DoubleBinaryTree::new(n);
        let rank = self.rank();
        let chunks = chunks.clamp(1, buf.len().max(1));
        let ranges = chunk_ranges(buf.len(), chunks);
        for (c, range) in ranges.iter().enumerate() {
            if let Some(parent) = dt.a.parent[rank] {
                let got = self.recv_elems(parent, 0, c as u32, PHASE_DOWN)?;
                buf[range.clone()].copy_from_slice(&got);
            }
            for &child in &dt.a.children[rank] {
                let out = buf[range.clone()].to_vec();
                self.send_elems(child, 0, c as u32, PHASE_DOWN, &out)?;
            }
        }
        Ok(())
    }

    /// This node's full HFReduce data path: reduce the GPU buffers on the
    /// "CPU" (one fused multi-input reduction), allreduce the node sum
    /// across nodes with the double binary tree, and broadcast the result
    /// back to every GPU buffer.
    pub fn hfreduce<E: Element>(
        &mut self,
        gpu_bufs: Vec<Vec<E>>,
        chunks: usize,
    ) -> Result<Vec<Vec<E>>, CommError> {
        let len = gpu_bufs
            .first()
            .map(|b| b.len())
            .expect("nodes must have at least one GPU buffer");
        assert!(gpu_bufs.iter().all(|b| b.len() == len), "unequal buffers");
        // Intra-node reduce (Algorithm 1): one widened pass.
        let mut node_sum = vec![E::ZERO; len];
        let refs: Vec<&[E]> = gpu_bufs.iter().map(|b| b.as_slice()).collect();
        reduce_n_into(&mut node_sum, &refs);
        let gpus = gpu_bufs.len();
        self.note("reduce:intra", len as u64, (len * gpus) as f64);
        // Inter-node allreduce (Algorithm 2).
        if self.world_size() > 1 {
            let dt = DoubleBinaryTree::new(self.world_size());
            let chunks = chunks.clamp(1, len.max(1));
            self.dbtree_allreduce_rank(&dt, &mut node_sum, chunks)?;
        }
        self.note("bcast:h2d", len as u64, (len * gpus) as f64);
        // H2D broadcast: every GPU buffer gets the result.
        Ok(vec![node_sum; gpus])
    }

    /// This rank's all2all: `sends[dst]` goes to rank `dst`, the result's
    /// `out[src]` is what rank `src` sent here. The self-row never touches
    /// the fabric. `seq` disambiguates successive all2alls on one
    /// communicator (e.g. MoE dispatch vs combine).
    ///
    /// Send failures toward already-dead peers are tolerated — survivors
    /// still need this rank's data — but a missing *inbound* payload is a
    /// typed [`CommError::Disconnected`] naming the dead peer.
    pub fn all2all<T: Wire>(
        &mut self,
        sends: Vec<Vec<T>>,
        seq: u32,
    ) -> Result<Vec<Vec<T>>, CommError> {
        let n = self.world_size();
        let me = self.rank();
        assert_eq!(sends.len(), n, "all2all needs one send row per rank");
        let mut out: Vec<Option<Vec<T>>> = (0..n).map(|_| None).collect();
        for (dst, payload) in sends.into_iter().enumerate() {
            if dst == me {
                out[dst] = Some(payload);
                continue;
            }
            let mut bytes = Vec::new();
            payload.wire_write(&mut bytes);
            if let Some(buf) = &mut self.obs {
                let len = payload.len() as u64;
                let name = format!("send:a:t0:c{seq}->r{dst}");
                buf.op(&name, len, len as f64);
            }
            let tag = Tag {
                phase: PHASE_A2A,
                tree: 0,
                chunk: seq,
            };
            // A dead destination cannot abort the exchange: the survivors
            // still complete theirs. Its silence surfaces below when this
            // rank waits for the dead peer's payload.
            let _ = self.fab.send(dst, tag, &bytes);
        }
        for (src, slot) in out.iter_mut().enumerate() {
            if src == me {
                continue;
            }
            let tag = Tag {
                phase: PHASE_A2A,
                tree: 0,
                chunk: seq,
            };
            let bytes = self.recv_raw(src, tag)?;
            let mut cur = WireCursor::new(&bytes);
            let payload = Vec::<T>::wire_read(&mut cur).ok_or(CommError::Protocol { peer: src })?;
            if !cur.is_done() {
                return Err(CommError::Protocol { peer: src });
            }
            if let Some(buf) = &mut self.obs {
                let len = payload.len() as u64;
                let name = format!("recv:a:t0:c{seq}<-r{src}");
                buf.op(&name, len, len as f64);
            }
            *slot = Some(payload);
        }
        Ok(out
            .into_iter()
            .map(|p| p.expect("every peer delivered"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::InMemFabric;

    #[test]
    fn wire_roundtrips() {
        fn rt<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
            let mut b = Vec::new();
            v.wire_write(&mut b);
            let mut cur = WireCursor::new(&b);
            assert_eq!(T::wire_read(&mut cur), Some(v));
            assert!(cur.is_done());
        }
        rt(42i32);
        rt(7u32);
        rt(-9i64);
        rt(1.5f64);
        rt(usize::MAX);
        rt((3usize, 4usize));
        rt(vec![1i32, 2, 3]);
        rt(Vec::<i64>::new());
        rt((1u32, vec![2.0f32, 3.0], true));
        rt("héllo".to_string());
    }

    #[test]
    fn truncated_wire_bytes_decode_to_none() {
        let mut b = Vec::new();
        vec![1i64, 2, 3].wire_write(&mut b);
        b.truncate(b.len() - 1);
        let mut cur = WireCursor::new(&b);
        assert_eq!(Vec::<i64>::wire_read(&mut cur), None);
    }

    #[test]
    fn element_wire_format_is_exact_for_all_dtypes() {
        use ff_dtypes::{Bf16, F16, F8E4M3};
        let f16s: Vec<F16> = (0..64).map(|i| F16::from_f32(i as f32 * 0.25)).collect();
        assert_eq!(decode_elems::<F16>(&encode_elems(&f16s)), Some(f16s));
        let bf16s: Vec<Bf16> = (0..64).map(|i| Bf16::from_f32(i as f32 * 2.0)).collect();
        assert_eq!(decode_elems::<Bf16>(&encode_elems(&bf16s)), Some(bf16s));
        let f8s: Vec<F8E4M3> = (0..16).map(|i| F8E4M3::from_f32(i as f32)).collect();
        assert_eq!(decode_elems::<F8E4M3>(&encode_elems(&f8s)), Some(f8s));
        let f32s = vec![1.0f32, -2.5, 3.25e-8, f32::MAX];
        assert_eq!(decode_elems::<f32>(&encode_elems(&f32s)), Some(f32s));
    }

    #[test]
    fn two_rank_allreduce_over_raw_communicators() {
        let mut world = InMemFabric::mesh(2);
        let c1 = Communicator::new(world.pop().expect("two"));
        let c0 = Communicator::new(world.pop().expect("two"));
        let h = std::thread::spawn(move || {
            let mut comm = c1;
            let mut data = vec![10.0f32, 20.0];
            comm.allreduce(&mut data, Op::Sum, Algo::DbTree { chunks: 1 })
                .expect("allreduce");
            data
        });
        let mut comm = c0;
        let mut data = vec![1.0f32, 2.0];
        comm.allreduce(&mut data, Op::Sum, Algo::DbTree { chunks: 1 })
            .expect("allreduce");
        assert_eq!(data, vec![11.0, 22.0]);
        assert_eq!(h.join().expect("rank 1"), vec![11.0, 22.0]);
    }
}
