//! World-level drivers for the executable collectives.
//!
//! Every rank is a thread holding a [`Communicator`] over a pluggable
//! [`Fabric`](crate::fabric::Fabric); RDMA is replaced by tagged messages
//! over an ordered reliable transport — in-memory channels by default,
//! real localhost TCP with [`TcpProvider`](crate::fabric::TcpProvider)
//! (see DESIGN.md's substitution table). The algorithms are the real
//! ones: the chunked double-binary-tree allreduce of Algorithm 2, a ring
//! allreduce baseline, and the full node-structured HFReduce
//! (Algorithm 1 + 2: intra-node reduce → inter-node tree → broadcast back
//! to every GPU buffer).
//!
//! The communication layer is `Result`-based: a peer that dies mid-step
//! surfaces as a typed [`CommError`] (disconnect or receive timeout), not
//! a process-wide panic. On top of that, [`allreduce_ft`] runs the
//! allreduce under an injected [`ExecFaultPlan`] — realized as
//! [`FaultyFabric`] transport middleware — and recovers by shrinking to
//! the survivor set and retrying — the executable core of the paper's
//! §VII failure-handling machinery.
//!
//! The old free-function entry points ([`allreduce_dbtree`],
//! [`hfreduce_exec`], …) survive as thin deprecated shims over the
//! drivers; new code calls the drivers directly or holds a
//! [`Communicator`] itself.

use crate::comm::{Algo, Communicator, Op};
use crate::fabric::{FabricProvider, FaultyFabric, InMemProvider, DEFAULT_RECV_TIMEOUT};
use ff_dtypes::Element;
use ff_obs::{Recorder, TrackBuf};
use ff_topo::dbtree::DoubleBinaryTree;
use std::sync::Arc;
use std::time::Duration;

pub use crate::fabric::CommError;

/// Observability context for traced collective runs.
///
/// Each rank records onto track `{track_prefix}/rank{r}` through a
/// per-thread [`TrackBuf`] whose logical clock counts *elements moved*
/// (one tick per element), starting at `base_ns`. Buffers are committed
/// only for **clean** executions: a failed fault-tolerant attempt has racy
/// abort points (which receive times out first, where each rank stops),
/// so its staged events are discarded and only deterministic facts — the
/// attempt index, the ranks that died, the shrink — are recorded as
/// instants on `{track_prefix}/ctl`. That discipline is what keeps the
/// trace digest byte-identical across runs of the same fault plan — and
/// across fabric backends.
#[derive(Clone)]
pub struct ObsCtx {
    /// Destination recorder.
    pub rec: Arc<Recorder>,
    /// Track name prefix, e.g. `reduce/step3`.
    pub track_prefix: String,
    /// Offset added to every logical timestamp (lets callers lay repeated
    /// collectives out side by side on one timeline).
    pub base_ns: u64,
}

impl ObsCtx {
    /// A context recording to `rec` under `track_prefix` starting at
    /// `base_ns`.
    pub fn new(rec: &Arc<Recorder>, track_prefix: impl Into<String>, base_ns: u64) -> ObsCtx {
        ObsCtx {
            rec: Arc::clone(rec),
            track_prefix: track_prefix.into(),
            base_ns,
        }
    }

    fn rank_buf(&self, rank: usize) -> TrackBuf {
        TrackBuf::new(format!("{}/rank{rank}", self.track_prefix), self.base_ns)
    }
}

/// Spawn one thread per rank over a fresh fabric world, run `f` on each,
/// and commit staged observability buffers (fault-free executions are
/// Kahn-deterministic, so every rank commits).
fn run_world<P, A, R>(
    provider: &P,
    timeout: Duration,
    obs: Option<&ObsCtx>,
    args: Vec<A>,
    f: impl Fn(usize, A, &mut Communicator<P::F>) -> R + Sync,
) -> Vec<R>
where
    P: FabricProvider,
    A: Send,
    R: Send,
{
    let n = args.len();
    let fabrics = provider.world(n).expect("fabric world construction");
    let mut comms: Vec<Communicator<P::F>> = fabrics
        .into_iter()
        .map(|fb| Communicator::with_timeout(fb, timeout))
        .collect();
    if let Some(o) = obs {
        for (r, c) in comms.iter_mut().enumerate() {
            c.set_obs(o.rank_buf(r));
        }
    }
    let (results, bufs): (Vec<R>, Vec<Option<TrackBuf>>) = std::thread::scope(|s| {
        let handles: Vec<_> = args
            .into_iter()
            .zip(comms)
            .enumerate()
            .map(|(rank, (arg, mut comm))| {
                let f = &f;
                s.spawn(move || {
                    let r = f(rank, arg, &mut comm);
                    (r, comm.take_obs())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .unzip()
    });
    if let Some(o) = obs {
        for buf in bufs.into_iter().flatten() {
            buf.commit(&o.rec);
        }
    }
    results
}

/// Allreduce `inputs` (one buffer per rank) over `provider`'s fabric;
/// returns each rank's resulting buffer (all equal to the sum). Traced
/// when `obs` is given (tracks `{prefix}/rank{r}`, logical clocks in
/// elements).
///
/// ```
/// use ff_reduce::{run_allreduce, Algo, InMemProvider};
/// let out = run_allreduce(
///     vec![vec![1.0f32, 2.0], vec![10.0, 20.0]],
///     Algo::DbTree { chunks: 1 },
///     &InMemProvider,
///     None,
/// );
/// assert_eq!(out[0], vec![11.0, 22.0]);
/// assert_eq!(out[1], vec![11.0, 22.0]);
/// ```
pub fn run_allreduce<E: Element, P: FabricProvider>(
    inputs: Vec<Vec<E>>,
    algo: Algo,
    provider: &P,
    obs: Option<&ObsCtx>,
) -> Vec<Vec<E>> {
    let n = inputs.len();
    assert!(n >= 1, "need at least one rank");
    let len = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == len), "unequal buffers");
    if matches!(algo, Algo::Ring) {
        assert!(
            len >= n || n == 1,
            "ring needs at least one element per rank"
        );
    }
    if n == 1 {
        return inputs;
    }
    run_world(
        provider,
        DEFAULT_RECV_TIMEOUT,
        obs,
        inputs,
        |_, mut data, comm| {
            comm.allreduce(&mut data, Op::Sum, algo)
                .expect("fault-free allreduce must not fail");
            data
        },
    )
}

/// Reduce `inputs` to the root of the double binary tree only (the
/// "general reduce" operation HFReduce also serves, §IV). Returns
/// `(root_rank, sum)`.
pub fn run_reduce_to_root<E: Element, P: FabricProvider>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    provider: &P,
) -> (usize, Vec<E>) {
    let n = inputs.len();
    assert!(n >= 1);
    let len = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == len), "unequal buffers");
    let root = DoubleBinaryTree::new(n).a.root;
    if n == 1 {
        return (0, inputs.into_iter().next().expect("one rank"));
    }
    let mut results = run_world(
        provider,
        DEFAULT_RECV_TIMEOUT,
        None,
        inputs,
        |_, data, comm| {
            comm.reduce_to_root(data, chunks)
                .expect("fault-free reduce must not fail")
        },
    );
    (root, results[root].take().expect("root holds the sum"))
}

/// Broadcast `data` from the tree root to every rank (the "broadcast"
/// operation, §IV). Returns each rank's received buffer.
pub fn run_broadcast<E: Element, P: FabricProvider>(
    data: Vec<E>,
    ranks: usize,
    chunks: usize,
    provider: &P,
) -> Vec<Vec<E>> {
    assert!(ranks >= 1);
    if ranks == 1 {
        return vec![data];
    }
    let root = DoubleBinaryTree::new(ranks).a.root;
    let len = data.len();
    let seeds: Vec<Option<Vec<E>>> = (0..ranks)
        .map(|r| if r == root { Some(data.clone()) } else { None })
        .collect();
    run_world(
        provider,
        DEFAULT_RECV_TIMEOUT,
        None,
        seeds,
        |_, seed, comm| {
            let mut buf = seed.unwrap_or_else(|| vec![E::ZERO; len]);
            comm.broadcast(&mut buf, chunks)
                .expect("fault-free broadcast must not fail");
            buf
        },
    )
}

/// The full HFReduce data path, executed for real over `provider`'s
/// fabric: per node, reduce the 8 GPU buffers on the "CPU" (one fused
/// multi-input reduction), allreduce the node sums across nodes with the
/// double binary tree, and broadcast the result back to every GPU buffer.
///
/// `inputs[node][gpu]` are the GPU gradient buffers; the result has the
/// same shape with every buffer equal to the global sum. Traced when
/// `obs` is given: the intra-node reduce, every inter-node send/recv, and
/// the H2D broadcast become spans on tracks `{prefix}/rank{node}`.
pub fn run_hfreduce<E: Element, P: FabricProvider>(
    inputs: Vec<Vec<Vec<E>>>,
    chunks: usize,
    provider: &P,
    obs: Option<&ObsCtx>,
) -> Vec<Vec<Vec<E>>> {
    let n = inputs.len();
    assert!(n >= 1, "need at least one node");
    let len = inputs[0]
        .first()
        .map(|b| b.len())
        .expect("nodes must have at least one GPU buffer");
    for node in &inputs {
        assert!(!node.is_empty());
        assert!(node.iter().all(|b| b.len() == len), "unequal buffers");
    }
    run_world(
        provider,
        DEFAULT_RECV_TIMEOUT,
        obs,
        inputs,
        |_, gpu_bufs, comm| {
            comm.hfreduce(gpu_bufs, chunks)
                .expect("fault-free allreduce must not fail")
        },
    )
}

/// Injected faults for the executable allreduce: which ranks die, and how
/// patient survivors are before declaring a peer dead. Deaths are
/// realized as [`FaultyFabric`] middleware under each doomed rank's
/// communicator — no algorithm carries fault hooks of its own.
#[derive(Debug, Clone)]
pub struct ExecFaultPlan {
    /// `(rank, after_sends)` — the rank's endpoint goes silent after it
    /// has issued that many messages (0 = before sending anything).
    pub deaths: Vec<(usize, usize)>,
    /// Survivor-side receive timeout — the liveness-detection latency.
    pub recv_timeout: Duration,
}

impl ExecFaultPlan {
    /// No faults: [`allreduce_ft`] behaves like [`run_allreduce`].
    pub fn none() -> ExecFaultPlan {
        ExecFaultPlan {
            deaths: Vec::new(),
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }

    /// Kill one rank after `after_sends` messages; survivors detect the
    /// loss within `recv_timeout`.
    pub fn kill_rank(rank: usize, after_sends: usize, recv_timeout: Duration) -> ExecFaultPlan {
        ExecFaultPlan {
            deaths: vec![(rank, after_sends)],
            recv_timeout,
        }
    }
}

/// Outcome of a fault-tolerant allreduce.
#[derive(Debug, Clone, PartialEq)]
pub struct FtReport<E> {
    /// Original rank ids that survived and hold a result.
    pub survivors: Vec<usize>,
    /// Original rank ids observed dead.
    pub dead: Vec<usize>,
    /// Attempts run (1 = no fault fired).
    pub attempts: usize,
    /// Per-original-rank output: `None` for dead ranks; every survivor
    /// holds the identical survivor-set sum.
    pub outputs: Vec<Option<Vec<E>>>,
}

enum RankOutcome<E> {
    Done(Vec<E>, Option<TrackBuf>),
    Died,
    Errored(CommError),
}

/// Fault-tolerant chunked double-binary-tree allreduce under `plan`'s
/// injected deaths, over `provider`'s fabric. When a rank dies
/// mid-collective, survivors detect it (receive timeout or disconnect)
/// and return a [`CommError`] instead of panicking; the orchestrator —
/// standing in for the platform's job manager — then rebuilds the tree
/// over the survivor set and retries from the original inputs. One failed
/// rank never aborts the process.
///
/// The returned buffers are the sum over the **survivor** set: the dead
/// rank's contribution is lost exactly as a dead GPU's gradients would
/// be, and the training layer above decides whether the step is usable or
/// must be replayed from a checkpoint (see `ff-platform`).
///
/// With `obs`, clean attempts commit per-rank send/recv spans (tracks
/// `{prefix}/rank{orig}`, named by *original* rank id so the track set is
/// stable across shrinks), while failed attempts record only their
/// deterministic summary — attempt index, which ranks died, the shrink —
/// as instants on `{prefix}/ctl`.
pub fn allreduce_ft<E: Element, P: FabricProvider>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    plan: &ExecFaultPlan,
    provider: &P,
    obs: Option<&ObsCtx>,
) -> FtReport<E> {
    let ctl = obs.map(|o| o.rec.track(&format!("{}/ctl", o.track_prefix)));
    let ctl_instant = |name: &str, attempt: usize, value: f64| {
        if let (Some(o), Some(t)) = (obs, ctl) {
            o.rec.instant(t, name, o.base_ns + attempt as u64, value);
        }
    };
    let n = inputs.len();
    assert!(n >= 1, "need at least one rank");
    let len = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == len), "unequal buffers");
    let chunks = chunks.clamp(1, len.max(1));

    let mut alive: Vec<usize> = (0..n).collect();
    let mut dead: Vec<usize> = Vec::new();
    // Deaths not yet fired, keyed by original rank id.
    let mut pending: Vec<(usize, usize)> = plan.deaths.clone();
    let mut attempts = 0usize;
    let mut stale_retries = 0usize;

    loop {
        attempts += 1;
        if alive.len() == 1 {
            let only = alive[0];
            ctl_instant(&format!("sole survivor rank {only}"), attempts, only as f64);
            let mut outputs: Vec<Option<Vec<E>>> = vec![None; n];
            outputs[only] = Some(inputs[only].clone());
            return FtReport {
                survivors: alive,
                dead,
                attempts,
                outputs,
            };
        }
        // Injected deaths remapped onto this attempt's compacted ids.
        let deaths: Vec<(usize, usize)> = pending
            .iter()
            .filter_map(|&(orig, k)| alive.iter().position(|&a| a == orig).map(|i| (i, k)))
            .collect();
        let m = alive.len();
        let fabrics = provider.world(m).expect("fabric world construction");
        let mut comms: Vec<Communicator<FaultyFabric<P::F>>> = fabrics
            .into_iter()
            .enumerate()
            .map(|(i, fb)| {
                let die = deaths
                    .iter()
                    .find(|&&(r, _)| r == i)
                    .map(|&(_, k)| k)
                    .unwrap_or(usize::MAX);
                // Silent deaths: a dead host stops talking, it does not
                // hang up politely — survivors must detect the loss by
                // timeout (in-memory) or transport teardown (TCP).
                Communicator::with_timeout(FaultyFabric::new(fb, die, true), plan.recv_timeout)
            })
            .collect();
        if let Some(o) = obs {
            for (&orig, c) in alive.iter().zip(comms.iter_mut()) {
                c.set_obs(o.rank_buf(orig));
            }
        }
        let results: Vec<RankOutcome<E>> = std::thread::scope(|s| {
            let handles: Vec<_> = alive
                .iter()
                .zip(comms)
                .map(|(&orig, mut comm)| {
                    let inputs = &inputs;
                    s.spawn(move || {
                        // Survivors restart from their original gradients:
                        // a half-reduced buffer from an abandoned attempt
                        // is never reused.
                        let mut data = inputs[orig].clone();
                        let res = comm.allreduce(&mut data, Op::Sum, Algo::DbTree { chunks });
                        let died = comm.fabric().died();
                        let buf = comm.take_obs();
                        // Death drops the endpoint: peers now observe
                        // silence, exactly like a host that went down.
                        drop(comm);
                        match res {
                            Ok(()) => RankOutcome::Done(data, buf),
                            Err(_) if died => RankOutcome::Died,
                            Err(e) => RankOutcome::Errored(e),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        });

        let mut newly_dead: Vec<usize> = Vec::new();
        let mut done: Vec<(usize, Vec<E>, Option<TrackBuf>)> = Vec::new();
        let mut last_error: Option<CommError> = None;
        for (&orig, outcome) in alive.iter().zip(results) {
            match outcome {
                RankOutcome::Done(data, buf) => done.push((orig, data, buf)),
                RankOutcome::Died => newly_dead.push(orig),
                RankOutcome::Errored(e) => last_error = Some(e),
            }
        }
        if newly_dead.is_empty() && last_error.is_none() {
            // Clean attempt: every survivor agreed on the sum. Only now do
            // the staged per-rank events reach the recorder — a clean
            // Kahn-network execution is deterministic, a failed one isn't.
            let mut outputs: Vec<Option<Vec<E>>> = vec![None; n];
            for (orig, data, buf) in done {
                outputs[orig] = Some(data);
                if let (Some(o), Some(b)) = (obs, buf) {
                    b.commit(&o.rec);
                }
            }
            return FtReport {
                survivors: alive,
                dead,
                attempts,
                outputs,
            };
        }
        // Failed attempt: the staged buffers in `done` drop here,
        // unrecorded — their contents depend on which timeout fired first.
        if newly_dead.is_empty() {
            // Errors with no death: spurious timeouts (timeout shorter
            // than a slow scheduler hiccup). Retrying with the same set
            // is correct, but bound it so a malformed plan can't loop
            // forever.
            stale_retries += 1;
            assert!(
                stale_retries <= 3,
                "allreduce kept failing with no observed rank death: {}",
                last_error.expect("errored attempt carries an error")
            );
            continue;
        }
        stale_retries = 0;
        for &orig in &newly_dead {
            ctl_instant(&format!("rank {orig} died"), attempts, orig as f64);
        }
        pending.retain(|&(orig, _)| !newly_dead.contains(&orig));
        alive.retain(|r| !newly_dead.contains(r));
        ctl_instant(
            &format!("shrink to {} survivors", alive.len()),
            attempts,
            alive.len() as f64,
        );
        dead.extend(newly_dead);
        dead.sort_unstable();
        assert!(!alive.is_empty(), "all ranks died");
    }
}

// ---------------------------------------------------------------------------
// Deprecated free-function shims (one release of grace)
// ---------------------------------------------------------------------------

/// Allreduce `inputs` with the chunked double binary tree over the
/// default in-memory fabric.
#[deprecated(
    note = "use `run_allreduce(.., Algo::DbTree { chunks }, &InMemProvider, None)` \
                     or `Communicator::allreduce`"
)]
pub fn allreduce_dbtree<E: Element>(inputs: Vec<Vec<E>>, chunks: usize) -> Vec<Vec<E>> {
    run_allreduce(inputs, Algo::DbTree { chunks }, &InMemProvider, None)
}

/// Traced [`allreduce_dbtree`].
#[deprecated(note = "use `run_allreduce(.., Algo::DbTree { chunks }, &InMemProvider, Some(obs))`")]
pub fn allreduce_dbtree_traced<E: Element>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    obs: &ObsCtx,
) -> Vec<Vec<E>> {
    run_allreduce(inputs, Algo::DbTree { chunks }, &InMemProvider, Some(obs))
}

/// Fault-tolerant allreduce over the default in-memory fabric.
#[deprecated(note = "use `allreduce_ft(.., &InMemProvider, None)`")]
pub fn allreduce_dbtree_ft<E: Element>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    plan: &ExecFaultPlan,
) -> FtReport<E> {
    allreduce_ft(inputs, chunks, plan, &InMemProvider, None)
}

/// Traced fault-tolerant allreduce over the default in-memory fabric.
#[deprecated(note = "use `allreduce_ft(.., &InMemProvider, Some(obs))`")]
pub fn allreduce_dbtree_ft_traced<E: Element>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    plan: &ExecFaultPlan,
    obs: &ObsCtx,
) -> FtReport<E> {
    allreduce_ft(inputs, chunks, plan, &InMemProvider, Some(obs))
}

/// Ring allreduce over the default in-memory fabric; the NCCL-style
/// baseline.
#[deprecated(note = "use `run_allreduce(.., Algo::Ring, &InMemProvider, None)` \
                     or `Communicator::allreduce`")]
pub fn allreduce_ring<E: Element>(inputs: Vec<Vec<E>>) -> Vec<Vec<E>> {
    run_allreduce(inputs, Algo::Ring, &InMemProvider, None)
}

/// Reduce to the tree root over the default in-memory fabric.
#[deprecated(note = "use `run_reduce_to_root(.., &InMemProvider)` \
                     or `Communicator::reduce_to_root`")]
pub fn reduce_to_root<E: Element>(inputs: Vec<Vec<E>>, chunks: usize) -> (usize, Vec<E>) {
    run_reduce_to_root(inputs, chunks, &InMemProvider)
}

/// Broadcast from the tree root over the default in-memory fabric.
#[deprecated(note = "use `run_broadcast(.., &InMemProvider)` or `Communicator::broadcast`")]
pub fn broadcast<E: Element>(data: Vec<E>, ranks: usize, chunks: usize) -> Vec<Vec<E>> {
    run_broadcast(data, ranks, chunks, &InMemProvider)
}

/// HFReduce over the default in-memory fabric.
#[deprecated(note = "use `run_hfreduce(.., &InMemProvider, None)` or `Communicator::hfreduce`")]
pub fn hfreduce_exec<E: Element>(inputs: Vec<Vec<Vec<E>>>, chunks: usize) -> Vec<Vec<Vec<E>>> {
    run_hfreduce(inputs, chunks, &InMemProvider, None)
}

/// Traced HFReduce over the default in-memory fabric.
#[deprecated(note = "use `run_hfreduce(.., &InMemProvider, Some(obs))`")]
pub fn hfreduce_exec_traced<E: Element>(
    inputs: Vec<Vec<Vec<E>>>,
    chunks: usize,
    obs: &ObsCtx,
) -> Vec<Vec<Vec<E>>> {
    run_hfreduce(inputs, chunks, &InMemProvider, Some(obs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::TcpProvider;
    use crate::kernels::reference_sum;
    use ff_dtypes::{Bf16, F16};

    fn dbtree(chunks: usize) -> Algo {
        Algo::DbTree { chunks }
    }

    /// Integer-valued f32 inputs make every summation order exact.
    fn int_inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| (0..len).map(|i| ((r * 31 + i * 7) % 50) as f32).collect())
            .collect()
    }

    #[test]
    fn dbtree_matches_reference_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 8, 13, 16] {
            for len in [1usize, 2, 17, 128, 1001] {
                let inputs = int_inputs(n, len);
                let want = reference_sum(&inputs);
                let out = run_allreduce(inputs, dbtree(4), &InMemProvider, None);
                for (r, buf) in out.iter().enumerate() {
                    assert_eq!(buf, &want, "rank {r}, n={n}, len={len}");
                }
            }
        }
    }

    #[test]
    fn dbtree_over_tcp_matches_reference() {
        let inputs = int_inputs(4, 129);
        let want = reference_sum(&inputs);
        let out = run_allreduce(inputs, dbtree(3), &TcpProvider, None);
        for buf in &out {
            assert_eq!(buf, &want);
        }
    }

    #[test]
    fn ring_matches_reference() {
        for n in [2usize, 3, 4, 8] {
            let inputs = int_inputs(n, 240);
            let want = reference_sum(&inputs);
            let out = run_allreduce(inputs, Algo::Ring, &InMemProvider, None);
            for buf in &out {
                assert_eq!(buf, &want, "n={n}");
            }
        }
    }

    #[test]
    fn ring_and_tree_agree() {
        let inputs = int_inputs(6, 600);
        let a = run_allreduce(inputs.clone(), Algo::Ring, &InMemProvider, None);
        let b = run_allreduce(inputs, dbtree(3), &InMemProvider, None);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn hfreduce_exec_full_path() {
        // 3 nodes × 8 GPUs of integer-valued gradients.
        let inputs: Vec<Vec<Vec<f32>>> = (0..3)
            .map(|v| {
                (0..8)
                    .map(|g| (0..100).map(|i| ((v * 8 + g + i) % 20) as f32).collect())
                    .collect()
            })
            .collect();
        let flat: Vec<Vec<f32>> = inputs.iter().flatten().cloned().collect();
        let want = reference_sum(&flat);
        let out = run_hfreduce(inputs, 2, &InMemProvider, None);
        for (v, node) in out.iter().enumerate() {
            assert_eq!(node.len(), 8);
            for (g, buf) in node.iter().enumerate() {
                assert_eq!(buf, &want, "node {v} gpu {g}");
            }
        }
    }

    #[test]
    fn hfreduce_exec_single_node() {
        let inputs = vec![vec![vec![1.0f32, 2.0], vec![3.0, 4.0]]];
        let out = run_hfreduce(inputs, 1, &InMemProvider, None);
        assert_eq!(out[0][0], vec![4.0, 6.0]);
        assert_eq!(out[0][1], vec![4.0, 6.0]);
    }

    #[test]
    fn hfreduce_over_tcp_matches_inmem() {
        let inputs: Vec<Vec<Vec<f32>>> = (0..3)
            .map(|v| {
                (0..4)
                    .map(|g| (0..64).map(|i| ((v * 4 + g + i) % 20) as f32).collect())
                    .collect()
            })
            .collect();
        let a = run_hfreduce(inputs.clone(), 2, &InMemProvider, None);
        let b = run_hfreduce(inputs, 2, &TcpProvider, None);
        assert_eq!(a, b);
    }

    #[test]
    fn f16_allreduce_small_integers_exact() {
        // Sums stay ≤ 2048 so binary16 is exact.
        let inputs: Vec<Vec<F16>> = (0..8)
            .map(|r| {
                (0..64)
                    .map(|i| F16::from_f32(((r + i) % 16) as f32))
                    .collect()
            })
            .collect();
        let want = reference_sum(&inputs);
        let out = run_allreduce(inputs, dbtree(2), &InMemProvider, None);
        assert_eq!(out[3], want);
    }

    #[test]
    fn bf16_hfreduce_exact_small_integers() {
        let inputs: Vec<Vec<Vec<Bf16>>> = (0..2)
            .map(|v| {
                (0..8)
                    .map(|g| {
                        (0..32)
                            .map(|i| Bf16::from_f32(((v + g + i) % 8) as f32))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let flat: Vec<Vec<Bf16>> = inputs.iter().flatten().cloned().collect();
        let want = reference_sum(&flat);
        let out = run_hfreduce(inputs, 4, &InMemProvider, None);
        assert_eq!(out[1][5], want);
    }

    #[test]
    fn odd_length_and_chunk_interplay() {
        // Lengths not divisible by chunks or halves still reduce exactly.
        let inputs = int_inputs(5, 97);
        let want = reference_sum(&inputs);
        for chunks in [1usize, 2, 3, 7, 97] {
            let out = run_allreduce(inputs.clone(), dbtree(chunks), &InMemProvider, None);
            assert_eq!(out[0], want, "chunks={chunks}");
        }
    }

    #[test]
    #[should_panic(expected = "unequal buffers")]
    fn mismatched_rank_buffers_rejected() {
        run_allreduce(
            vec![vec![1.0f32], vec![1.0, 2.0]],
            dbtree(1),
            &InMemProvider,
            None,
        );
    }

    // ---- fault tolerance ----

    const FAST_TIMEOUT: Duration = Duration::from_millis(200);

    #[test]
    fn ft_no_fault_matches_plain_allreduce() {
        let inputs = int_inputs(6, 120);
        let want = reference_sum(&inputs);
        let report = allreduce_ft(inputs, 3, &ExecFaultPlan::none(), &InMemProvider, None);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.survivors, (0..6).collect::<Vec<_>>());
        assert!(report.dead.is_empty());
        for out in report.outputs.iter() {
            assert_eq!(out.as_ref().unwrap(), &want);
        }
    }

    #[test]
    fn ft_rank_death_shrinks_to_survivors() {
        for victim in [0usize, 2, 5] {
            let inputs = int_inputs(6, 120);
            // Reference excludes the victim's contribution.
            let surviving: Vec<Vec<f32>> = inputs
                .iter()
                .enumerate()
                .filter(|&(r, _)| r != victim)
                .map(|(_, v)| v.clone())
                .collect();
            let want = reference_sum(&surviving);
            let plan = ExecFaultPlan::kill_rank(victim, 1, FAST_TIMEOUT);
            let report = allreduce_ft(inputs, 3, &plan, &InMemProvider, None);
            assert_eq!(report.dead, vec![victim]);
            assert_eq!(report.attempts, 2, "one failed attempt + one clean retry");
            assert_eq!(report.survivors.len(), 5);
            assert!(report.outputs[victim].is_none());
            for (r, out) in report.outputs.iter().enumerate() {
                if r != victim {
                    assert_eq!(out.as_ref().unwrap(), &want, "rank {r}");
                }
            }
        }
    }

    #[test]
    fn ft_death_before_any_send() {
        let inputs = int_inputs(4, 64);
        let surviving: Vec<Vec<f32>> = inputs[..3].to_vec();
        let want = reference_sum(&surviving);
        let plan = ExecFaultPlan::kill_rank(3, 0, FAST_TIMEOUT);
        let report = allreduce_ft(inputs, 2, &plan, &InMemProvider, None);
        assert_eq!(report.dead, vec![3]);
        for r in 0..3 {
            assert_eq!(report.outputs[r].as_ref().unwrap(), &want);
        }
    }

    #[test]
    fn ft_two_deaths_two_shrinks_or_one() {
        let inputs = int_inputs(5, 80);
        let surviving: Vec<Vec<f32>> =
            vec![inputs[0].clone(), inputs[2].clone(), inputs[4].clone()];
        let want = reference_sum(&surviving);
        let plan = ExecFaultPlan {
            deaths: vec![(1, 0), (3, 0)],
            recv_timeout: FAST_TIMEOUT,
        };
        let report = allreduce_ft(inputs, 2, &plan, &InMemProvider, None);
        assert_eq!(report.dead, vec![1, 3]);
        assert_eq!(report.survivors, vec![0, 2, 4]);
        for &r in &[0usize, 2, 4] {
            assert_eq!(report.outputs[r].as_ref().unwrap(), &want, "rank {r}");
        }
    }

    #[test]
    fn ft_shrinks_to_single_survivor() {
        let inputs = int_inputs(2, 16);
        let want = inputs[0].clone();
        let plan = ExecFaultPlan::kill_rank(1, 0, FAST_TIMEOUT);
        let report = allreduce_ft(inputs, 1, &plan, &InMemProvider, None);
        assert_eq!(report.survivors, vec![0]);
        assert_eq!(report.outputs[0].as_ref().unwrap(), &want);
        assert!(report.outputs[1].is_none());
    }

    #[test]
    fn ft_trajectory_identical_over_tcp() {
        // The shrink-to-survivors trajectory is transport-invariant: over
        // TCP the death is detected by teardown (FIN) rather than
        // timeout, but survivors, dead set, and attempt count agree.
        let inputs = int_inputs(5, 64);
        let plan = ExecFaultPlan::kill_rank(2, 1, Duration::from_millis(500));
        let inmem = allreduce_ft(inputs.clone(), 2, &plan, &InMemProvider, None);
        let tcp = allreduce_ft(inputs, 2, &plan, &TcpProvider, None);
        assert_eq!(inmem, tcp);
    }
}
