//! Executable allreduce implementations over in-memory ranks.
//!
//! Every rank is a thread; RDMA is replaced by tagged messages over
//! mpmc channels (an ordered reliable transport, which is all the
//! algorithms assume — see DESIGN.md's substitution table). The algorithms
//! are the real ones: the chunked double-binary-tree allreduce of
//! Algorithm 2, a ring allreduce baseline, and the full node-structured
//! HFReduce (Algorithm 1 + 2: intra-node reduce → inter-node tree →
//! broadcast back to every GPU buffer).
//!
//! The communication layer is `Result`-based: a peer that dies mid-step
//! surfaces as a typed [`CommError`] (disconnect or receive timeout), not
//! a process-wide panic. On top of that, [`allreduce_dbtree_ft`] runs the
//! allreduce under an injected [`ExecFaultPlan`] and recovers by
//! shrinking to the survivor set and retrying — the executable core of
//! the paper's §VII failure-handling machinery.

use crate::kernels::{chunk_ranges, reduce_add_into, reduce_n_into};

/// Alias used by the single-tree reduce helper.
type TreeRef<'a> = &'a ff_topo::dbtree::Tree;
use ff_dtypes::Element;
use ff_obs::{Recorder, TrackBuf};
use ff_topo::dbtree::DoubleBinaryTree;
use ff_util::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Observability context for the `*_traced` entry points.
///
/// Each rank records onto track `{track_prefix}/rank{r}` through a
/// per-thread [`TrackBuf`] whose logical clock counts *elements moved*
/// (one tick per element), starting at `base_ns`. Buffers are committed
/// only for **clean** executions: a failed fault-tolerant attempt has racy
/// abort points (which receive times out first, where each rank stops),
/// so its staged events are discarded and only deterministic facts — the
/// attempt index, the ranks that died, the shrink — are recorded as
/// instants on `{track_prefix}/ctl`. That discipline is what keeps the
/// trace digest byte-identical across runs of the same fault plan.
#[derive(Clone)]
pub struct ObsCtx {
    /// Destination recorder.
    pub rec: Arc<Recorder>,
    /// Track name prefix, e.g. `reduce/step3`.
    pub track_prefix: String,
    /// Offset added to every logical timestamp (lets callers lay repeated
    /// collectives out side by side on one timeline).
    pub base_ns: u64,
}

impl ObsCtx {
    /// A context recording to `rec` under `track_prefix` starting at
    /// `base_ns`.
    pub fn new(rec: &Arc<Recorder>, track_prefix: impl Into<String>, base_ns: u64) -> ObsCtx {
        ObsCtx {
            rec: Arc::clone(rec),
            track_prefix: track_prefix.into(),
            base_ns,
        }
    }

    fn rank_buf(&self, rank: usize) -> TrackBuf {
        TrackBuf::new(format!("{}/rank{rank}", self.track_prefix), self.base_ns)
    }
}

/// Communication failure observed by one rank. The process survives; the
/// caller decides whether to retry, shrink, or abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// The peer's endpoint is gone (its communicator was dropped).
    Disconnected {
        /// The peer rank that hung up.
        peer: usize,
    },
    /// No message from the peer within the receive timeout — the liveness
    /// signal a real collective gets from a transport-level timeout.
    Timeout {
        /// The peer rank that went silent.
        peer: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            CommError::Timeout { peer } => write!(f, "timed out waiting for peer rank {peer}"),
        }
    }
}

impl std::error::Error for CommError {}

impl From<CommError> for ff_util::FfError {
    fn from(e: CommError) -> Self {
        ff_util::FfError::with_source(ff_util::FfKind::Comm, e.to_string(), e)
    }
}

/// Default receive timeout for the fault-free entry points: generous
/// enough that scheduler hiccups never fire it.
const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Tag {
    tree: u8,
    chunk: u32,
    phase: u8, // 0 = reduce-up, 1 = broadcast-down, 2 = ring
    from: u32,
}

const UP: u8 = 0;
const DOWN: u8 = 1;
const RING: u8 = 2;

struct Msg<E> {
    tag: Tag,
    data: Vec<E>,
}

/// Per-rank communicator: one inbox, senders to every rank, and a stash
/// for out-of-order arrivals.
struct Comm<E> {
    me: usize,
    txs: Vec<Sender<Msg<E>>>,
    rx: Receiver<Msg<E>>,
    stash: HashMap<Tag, Vec<E>>,
    recv_timeout: Duration,
    /// Injected fault: the rank "dies" once it has issued this many
    /// sends (`usize::MAX` = never).
    die_after_sends: usize,
    sends: usize,
    /// Set once the injected death has fired.
    died: bool,
    /// Staged observability events; committed by the orchestrator only
    /// for clean executions (see [`ObsCtx`]).
    obs: Option<TrackBuf>,
}

impl<E: Element> Comm<E> {
    fn mesh(n: usize) -> Vec<Comm<E>> {
        Self::mesh_with(n, DEFAULT_RECV_TIMEOUT, &[])
    }

    /// A mesh with a custom receive timeout and injected rank deaths
    /// given as `(rank, after_sends)` pairs.
    fn mesh_with(n: usize, recv_timeout: Duration, deaths: &[(usize, usize)]) -> Vec<Comm<E>> {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(me, rx)| Comm {
                me,
                txs: txs.clone(),
                rx,
                stash: HashMap::new(),
                recv_timeout,
                die_after_sends: deaths
                    .iter()
                    .find(|&&(r, _)| r == me)
                    .map(|&(_, k)| k)
                    .unwrap_or(usize::MAX),
                sends: 0,
                died: false,
                obs: None,
            })
            .collect()
    }

    fn phase_char(phase: u8) -> char {
        match phase {
            UP => 'u',
            DOWN => 'd',
            _ => 'g', // ring
        }
    }

    fn send(
        &mut self,
        to: usize,
        tree: u8,
        chunk: u32,
        phase: u8,
        data: Vec<E>,
    ) -> Result<(), CommError> {
        if self.sends >= self.die_after_sends {
            // The injected Xid fires here: this rank's endpoint goes
            // silent. Reported as a self-disconnect so the rank's own
            // stack unwinds without touching any peer.
            self.died = true;
            return Err(CommError::Disconnected { peer: self.me });
        }
        self.sends += 1;
        let tag = Tag {
            tree,
            chunk,
            phase,
            from: self.me as u32,
        };
        if let Some(buf) = &mut self.obs {
            let len = data.len() as u64;
            let name = format!("send:{}:t{tree}:c{chunk}->r{to}", Self::phase_char(phase));
            buf.op(&name, len, len as f64);
        }
        self.txs[to]
            .send(Msg { tag, data })
            .map_err(|_| CommError::Disconnected { peer: to })
    }

    fn recv(&mut self, from: usize, tree: u8, chunk: u32, phase: u8) -> Result<Vec<E>, CommError> {
        let want = Tag {
            tree,
            chunk,
            phase,
            from: from as u32,
        };
        if let Some(d) = self.stash.remove(&want) {
            self.note_recv(&want, d.len());
            return Ok(d);
        }
        loop {
            let msg = match self.rx.recv_timeout(self.recv_timeout) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { peer: from }),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { peer: from })
                }
            };
            if msg.tag == want {
                self.note_recv(&want, msg.data.len());
                return Ok(msg.data);
            }
            let dup = self.stash.insert(msg.tag, msg.data);
            assert!(dup.is_none(), "duplicate message {:?}", msg.tag);
        }
    }

    fn note_recv(&mut self, tag: &Tag, len: usize) {
        if let Some(buf) = &mut self.obs {
            let name = format!(
                "recv:{}:t{}:c{}<-r{}",
                Self::phase_char(tag.phase),
                tag.tree,
                tag.chunk,
                tag.from
            );
            buf.op(&name, len as u64, len as f64);
        }
    }
}

/// One rank's side of the chunked double-binary-tree allreduce: reduces
/// `data` in place to the global sum. Tree A carries the lower half of
/// each chunk, tree B the upper half.
fn tree_allreduce_rank<E: Element>(
    comm: &mut Comm<E>,
    dt: &DoubleBinaryTree,
    data: &mut [E],
    chunks: usize,
) -> Result<(), CommError> {
    let rank = comm.me;
    let ranges = chunk_ranges(data.len(), chunks);
    for (c, range) in ranges.iter().enumerate() {
        let mid = range.start + range.len() / 2;
        let halves = [range.start..mid, mid..range.end];
        for (ti, tree) in [&dt.a, &dt.b].into_iter().enumerate() {
            let seg = halves[ti].clone();
            let mut acc: Vec<E> = data[seg.clone()].to_vec();
            for &child in &tree.children[rank] {
                let got = comm.recv(child, ti as u8, c as u32, UP)?;
                reduce_add_into(&mut acc, &got);
            }
            let result = match tree.parent[rank] {
                Some(parent) => {
                    comm.send(parent, ti as u8, c as u32, UP, acc)?;
                    comm.recv(parent, ti as u8, c as u32, DOWN)?
                }
                None => acc,
            };
            for &child in &tree.children[rank] {
                comm.send(child, ti as u8, c as u32, DOWN, result.clone())?;
            }
            data[seg].copy_from_slice(&result);
        }
    }
    Ok(())
}

/// Allreduce `inputs` (one buffer per rank) with the chunked double binary
/// tree; returns each rank's resulting buffer (all equal to the sum).
///
/// ```
/// use ff_reduce::allreduce_dbtree;
/// let out = allreduce_dbtree(vec![vec![1.0f32, 2.0], vec![10.0, 20.0]], 1);
/// assert_eq!(out[0], vec![11.0, 22.0]);
/// assert_eq!(out[1], vec![11.0, 22.0]);
/// ```
pub fn allreduce_dbtree<E: Element>(inputs: Vec<Vec<E>>, chunks: usize) -> Vec<Vec<E>> {
    allreduce_dbtree_impl(inputs, chunks, None)
}

/// [`allreduce_dbtree`] with per-rank send/recv spans recorded to
/// `obs.rec` (tracks `{prefix}/rank{r}`, logical clocks in elements).
pub fn allreduce_dbtree_traced<E: Element>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    obs: &ObsCtx,
) -> Vec<Vec<E>> {
    allreduce_dbtree_impl(inputs, chunks, Some(obs))
}

fn allreduce_dbtree_impl<E: Element>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    obs: Option<&ObsCtx>,
) -> Vec<Vec<E>> {
    let n = inputs.len();
    assert!(n >= 1, "need at least one rank");
    let len = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == len), "unequal buffers");
    if n == 1 {
        return inputs;
    }
    let dt = DoubleBinaryTree::new(n);
    let mut comms = Comm::<E>::mesh(n);
    if let Some(o) = obs {
        for (r, c) in comms.iter_mut().enumerate() {
            c.obs = Some(o.rank_buf(r));
        }
    }
    let chunks = chunks.clamp(1, len.max(1));
    let (outputs, bufs): (Vec<Vec<E>>, Vec<Option<TrackBuf>>) = std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .into_iter()
            .zip(comms)
            .map(|(mut data, mut comm)| {
                let dt = &dt;
                s.spawn(move || {
                    tree_allreduce_rank(&mut comm, dt, &mut data, chunks)
                        .expect("fault-free allreduce must not fail");
                    (data, comm.obs.take())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .unzip()
    });
    if let Some(o) = obs {
        // Fault-free executions are Kahn-deterministic: commit every rank.
        for buf in bufs.into_iter().flatten() {
            buf.commit(&o.rec);
        }
    }
    outputs
}

/// Injected faults for the executable allreduce: which ranks die, and how
/// patient survivors are before declaring a peer dead.
#[derive(Debug, Clone)]
pub struct ExecFaultPlan {
    /// `(rank, after_sends)` — the rank's endpoint goes silent after it
    /// has issued that many messages (0 = before sending anything).
    pub deaths: Vec<(usize, usize)>,
    /// Survivor-side receive timeout — the liveness-detection latency.
    pub recv_timeout: Duration,
}

impl ExecFaultPlan {
    /// No faults: `allreduce_dbtree_ft` behaves like `allreduce_dbtree`.
    pub fn none() -> ExecFaultPlan {
        ExecFaultPlan {
            deaths: Vec::new(),
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }

    /// Kill one rank after `after_sends` messages; survivors detect the
    /// loss within `recv_timeout`.
    pub fn kill_rank(rank: usize, after_sends: usize, recv_timeout: Duration) -> ExecFaultPlan {
        ExecFaultPlan {
            deaths: vec![(rank, after_sends)],
            recv_timeout,
        }
    }
}

/// Outcome of a fault-tolerant allreduce.
#[derive(Debug, Clone, PartialEq)]
pub struct FtReport<E> {
    /// Original rank ids that survived and hold a result.
    pub survivors: Vec<usize>,
    /// Original rank ids observed dead.
    pub dead: Vec<usize>,
    /// Attempts run (1 = no fault fired).
    pub attempts: usize,
    /// Per-original-rank output: `None` for dead ranks; every survivor
    /// holds the identical survivor-set sum.
    pub outputs: Vec<Option<Vec<E>>>,
}

enum RankOutcome<E> {
    Done(Vec<E>, Option<TrackBuf>),
    Died,
    Errored(CommError),
}

/// Fault-tolerant chunked double-binary-tree allreduce under `plan`'s
/// injected deaths. When a rank dies mid-collective, survivors detect it
/// (receive timeout or disconnect) and return a [`CommError`] instead of
/// panicking; the orchestrator — standing in for the platform's job
/// manager — then rebuilds the tree over the survivor set and retries
/// from the original inputs. One failed rank never aborts the process.
///
/// The returned buffers are the sum over the **survivor** set: the dead
/// rank's contribution is lost exactly as a dead GPU's gradients would
/// be, and the training layer above decides whether the step is usable or
/// must be replayed from a checkpoint (see `ff-platform`).
pub fn allreduce_dbtree_ft<E: Element>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    plan: &ExecFaultPlan,
) -> FtReport<E> {
    allreduce_dbtree_ft_impl(inputs, chunks, plan, None)
}

/// [`allreduce_dbtree_ft`] with observability: clean attempts commit
/// per-rank send/recv spans (tracks `{prefix}/rank{orig}`, named by
/// *original* rank id so the track set is stable across shrinks), while
/// failed attempts record only their deterministic summary — attempt
/// index, which ranks died, the shrink — as instants on `{prefix}/ctl`.
pub fn allreduce_dbtree_ft_traced<E: Element>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    plan: &ExecFaultPlan,
    obs: &ObsCtx,
) -> FtReport<E> {
    allreduce_dbtree_ft_impl(inputs, chunks, plan, Some(obs))
}

fn allreduce_dbtree_ft_impl<E: Element>(
    inputs: Vec<Vec<E>>,
    chunks: usize,
    plan: &ExecFaultPlan,
    obs: Option<&ObsCtx>,
) -> FtReport<E> {
    let ctl = obs.map(|o| o.rec.track(&format!("{}/ctl", o.track_prefix)));
    let ctl_instant = |name: &str, attempt: usize, value: f64| {
        if let (Some(o), Some(t)) = (obs, ctl) {
            o.rec.instant(t, name, o.base_ns + attempt as u64, value);
        }
    };
    let n = inputs.len();
    assert!(n >= 1, "need at least one rank");
    let len = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == len), "unequal buffers");
    let chunks = chunks.clamp(1, len.max(1));

    let mut alive: Vec<usize> = (0..n).collect();
    let mut dead: Vec<usize> = Vec::new();
    // Deaths not yet fired, keyed by original rank id.
    let mut pending: Vec<(usize, usize)> = plan.deaths.clone();
    let mut attempts = 0usize;
    let mut stale_retries = 0usize;

    loop {
        attempts += 1;
        if alive.len() == 1 {
            let only = alive[0];
            ctl_instant(&format!("sole survivor rank {only}"), attempts, only as f64);
            let mut outputs: Vec<Option<Vec<E>>> = vec![None; n];
            outputs[only] = Some(inputs[only].clone());
            return FtReport {
                survivors: alive,
                dead,
                attempts,
                outputs,
            };
        }
        // Injected deaths remapped onto this attempt's compacted ids.
        let deaths: Vec<(usize, usize)> = pending
            .iter()
            .filter_map(|&(orig, k)| alive.iter().position(|&a| a == orig).map(|i| (i, k)))
            .collect();
        let m = alive.len();
        let dt = DoubleBinaryTree::new(m);
        let mut comms = Comm::<E>::mesh_with(m, plan.recv_timeout, &deaths);
        if let Some(o) = obs {
            for (&orig, c) in alive.iter().zip(comms.iter_mut()) {
                c.obs = Some(o.rank_buf(orig));
            }
        }
        let results: Vec<RankOutcome<E>> = std::thread::scope(|s| {
            let handles: Vec<_> = alive
                .iter()
                .zip(comms)
                .map(|(&orig, mut comm)| {
                    // Survivors restart from their original gradients: a
                    // half-reduced buffer from an abandoned attempt is
                    // never reused.
                    let mut data = inputs[orig].clone();
                    let dt = &dt;
                    s.spawn(move || {
                        let res = tree_allreduce_rank(&mut comm, dt, &mut data, chunks);
                        let died = comm.died;
                        let buf = comm.obs.take();
                        // Death drops the endpoint: peers now observe
                        // silence, exactly like a host that went down.
                        drop(comm);
                        match res {
                            Ok(()) => RankOutcome::Done(data, buf),
                            Err(_) if died => RankOutcome::Died,
                            Err(e) => RankOutcome::Errored(e),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        });

        let mut newly_dead: Vec<usize> = Vec::new();
        let mut done: Vec<(usize, Vec<E>, Option<TrackBuf>)> = Vec::new();
        let mut last_error: Option<CommError> = None;
        for (&orig, outcome) in alive.iter().zip(results) {
            match outcome {
                RankOutcome::Done(data, buf) => done.push((orig, data, buf)),
                RankOutcome::Died => newly_dead.push(orig),
                RankOutcome::Errored(e) => last_error = Some(e),
            }
        }
        if newly_dead.is_empty() && last_error.is_none() {
            // Clean attempt: every survivor agreed on the sum. Only now do
            // the staged per-rank events reach the recorder — a clean
            // Kahn-network execution is deterministic, a failed one isn't.
            let mut outputs: Vec<Option<Vec<E>>> = vec![None; n];
            for (orig, data, buf) in done {
                outputs[orig] = Some(data);
                if let (Some(o), Some(b)) = (obs, buf) {
                    b.commit(&o.rec);
                }
            }
            return FtReport {
                survivors: alive,
                dead,
                attempts,
                outputs,
            };
        }
        // Failed attempt: the staged buffers in `done` drop here,
        // unrecorded — their contents depend on which timeout fired first.
        if newly_dead.is_empty() {
            // Errors with no death: spurious timeouts (timeout shorter
            // than a slow scheduler hiccup). Retrying with the same set
            // is correct, but bound it so a malformed plan can't loop
            // forever.
            stale_retries += 1;
            assert!(
                stale_retries <= 3,
                "allreduce kept failing with no observed rank death: {}",
                last_error.expect("errored attempt carries an error")
            );
            continue;
        }
        stale_retries = 0;
        for &orig in &newly_dead {
            ctl_instant(&format!("rank {orig} died"), attempts, orig as f64);
        }
        pending.retain(|&(orig, _)| !newly_dead.contains(&orig));
        alive.retain(|r| !newly_dead.contains(r));
        ctl_instant(
            &format!("shrink to {} survivors", alive.len()),
            attempts,
            alive.len() as f64,
        );
        dead.extend(newly_dead);
        dead.sort_unstable();
        assert!(!alive.is_empty(), "all ranks died");
    }
}

/// One rank's ring allreduce (reduce-scatter + allgather) over `n` ranks.
fn ring_allreduce_rank<E: Element>(
    comm: &mut Comm<E>,
    n: usize,
    data: &mut [E],
) -> Result<(), CommError> {
    let rank = comm.me;
    let ranges = chunk_ranges(data.len(), n);
    let next = (rank + 1) % n;
    let prev = (rank + n - 1) % n;
    let mut step = 0u32;
    // Reduce-scatter: after n-1 steps rank r owns the sum of chunk (r+1)%n.
    for s in 0..n - 1 {
        let send_chunk = (rank + n - s) % n;
        let recv_chunk = (rank + n - s - 1) % n;
        comm.send(
            next,
            0,
            step,
            RING,
            data[ranges[send_chunk].clone()].to_vec(),
        )?;
        let got = comm.recv(prev, 0, step, RING)?;
        reduce_add_into(&mut data[ranges[recv_chunk].clone()], &got);
        step += 1;
    }
    // Allgather: circulate the finished chunks.
    for s in 0..n - 1 {
        let send_chunk = (rank + 1 + n - s) % n;
        let recv_chunk = (rank + n - s) % n;
        comm.send(
            next,
            0,
            step,
            RING,
            data[ranges[send_chunk].clone()].to_vec(),
        )?;
        let got = comm.recv(prev, 0, step, RING)?;
        data[ranges[recv_chunk].clone()].copy_from_slice(&got);
        step += 1;
    }
    Ok(())
}

/// Ring allreduce across `inputs`; the NCCL-style baseline.
pub fn allreduce_ring<E: Element>(inputs: Vec<Vec<E>>) -> Vec<Vec<E>> {
    let n = inputs.len();
    assert!(n >= 1);
    let len = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == len), "unequal buffers");
    assert!(
        len >= n || n == 1,
        "ring needs at least one element per rank"
    );
    if n == 1 {
        return inputs;
    }
    let comms = Comm::<E>::mesh(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .into_iter()
            .zip(comms)
            .map(|(mut data, mut comm)| {
                s.spawn(move || {
                    ring_allreduce_rank(&mut comm, n, &mut data)
                        .expect("fault-free allreduce must not fail");
                    data
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

/// Reduce `inputs` to the root of the double binary tree only (the
/// "general reduce" operation HFReduce also serves, §IV). Returns
/// `(root_rank, sum)`.
pub fn reduce_to_root<E: Element>(inputs: Vec<Vec<E>>, chunks: usize) -> (usize, Vec<E>) {
    let n = inputs.len();
    assert!(n >= 1);
    let len = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == len), "unequal buffers");
    let dt = DoubleBinaryTree::new(n);
    let root = dt.a.root;
    if n == 1 {
        return (0, inputs.into_iter().next().expect("one rank"));
    }
    let comms = Comm::<E>::mesh(n);
    let chunks = chunks.clamp(1, len.max(1));
    let mut results: Vec<Option<Vec<E>>> = std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .into_iter()
            .zip(comms)
            .map(|(data, mut comm)| {
                let dt = &dt;
                s.spawn(move || {
                    reduce_rank(&mut comm, &dt.a, data, chunks)
                        .expect("fault-free reduce must not fail")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });
    (root, results[root].take().expect("root holds the sum"))
}

/// One rank's side of a single-tree reduce (no broadcast-down pass).
fn reduce_rank<E: Element>(
    comm: &mut Comm<E>,
    tree: TreeRef<'_>,
    mut data: Vec<E>,
    chunks: usize,
) -> Result<Option<Vec<E>>, CommError> {
    let rank = comm.me;
    let ranges = chunk_ranges(data.len(), chunks);
    for (c, range) in ranges.iter().enumerate() {
        let mut acc: Vec<E> = data[range.clone()].to_vec();
        for &child in &tree.children[rank] {
            let got = comm.recv(child, 0, c as u32, UP)?;
            reduce_add_into(&mut acc, &got);
        }
        if let Some(parent) = tree.parent[rank] {
            comm.send(parent, 0, c as u32, UP, acc)?;
        } else {
            data[range.clone()].copy_from_slice(&acc);
        }
    }
    Ok(if tree.parent[rank].is_none() {
        Some(data)
    } else {
        None
    })
}

/// Broadcast `data` from the tree root to every rank (the "broadcast"
/// operation, §IV). Returns each rank's received buffer.
pub fn broadcast<E: Element>(data: Vec<E>, ranks: usize, chunks: usize) -> Vec<Vec<E>> {
    assert!(ranks >= 1);
    if ranks == 1 {
        return vec![data];
    }
    let dt = DoubleBinaryTree::new(ranks);
    let root = dt.a.root;
    let len = data.len();
    let comms = Comm::<E>::mesh(ranks);
    let chunks = chunks.clamp(1, len.max(1));
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, mut comm)| {
                let dt = &dt;
                let seed = if rank == root {
                    Some(data.clone())
                } else {
                    None
                };
                s.spawn(move || {
                    let mut buf = seed.unwrap_or_else(|| vec![E::ZERO; len]);
                    let ranges = chunk_ranges(len, chunks);
                    for (c, range) in ranges.iter().enumerate() {
                        if dt.a.parent[rank].is_some() {
                            let got = comm
                                .recv(dt.a.parent[rank].expect("non-root"), 0, c as u32, DOWN)
                                .expect("fault-free broadcast must not fail");
                            buf[range.clone()].copy_from_slice(&got);
                        }
                        for &child in &dt.a.children[rank] {
                            comm.send(child, 0, c as u32, DOWN, buf[range.clone()].to_vec())
                                .expect("fault-free broadcast must not fail");
                        }
                    }
                    buf
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

/// The full HFReduce data path, executed for real: per node, reduce the 8
/// GPU buffers on the "CPU" (one fused multi-input reduction), allreduce
/// the node sums across nodes with the double binary tree, and broadcast
/// the result back to every GPU buffer.
///
/// `inputs[node][gpu]` are the GPU gradient buffers; the result has the
/// same shape with every buffer equal to the global sum.
pub fn hfreduce_exec<E: Element>(inputs: Vec<Vec<Vec<E>>>, chunks: usize) -> Vec<Vec<Vec<E>>> {
    hfreduce_exec_impl(inputs, chunks, None)
}

/// [`hfreduce_exec`] with per-node observability: the intra-node reduce,
/// every inter-node send/recv, and the H2D broadcast become spans on
/// tracks `{prefix}/rank{node}`.
pub fn hfreduce_exec_traced<E: Element>(
    inputs: Vec<Vec<Vec<E>>>,
    chunks: usize,
    obs: &ObsCtx,
) -> Vec<Vec<Vec<E>>> {
    hfreduce_exec_impl(inputs, chunks, Some(obs))
}

fn hfreduce_exec_impl<E: Element>(
    inputs: Vec<Vec<Vec<E>>>,
    chunks: usize,
    obs: Option<&ObsCtx>,
) -> Vec<Vec<Vec<E>>> {
    let n = inputs.len();
    assert!(n >= 1, "need at least one node");
    let len = inputs[0]
        .first()
        .map(|b| b.len())
        .expect("nodes must have at least one GPU buffer");
    for node in &inputs {
        assert!(!node.is_empty());
        assert!(node.iter().all(|b| b.len() == len), "unequal buffers");
    }
    let dt = DoubleBinaryTree::new(n);
    let mut comms = Comm::<E>::mesh(n);
    if let Some(o) = obs {
        for (r, c) in comms.iter_mut().enumerate() {
            c.obs = Some(o.rank_buf(r));
        }
    }
    let chunks = chunks.clamp(1, len.max(1));
    let (outputs, bufs): (Vec<Vec<Vec<E>>>, Vec<Option<TrackBuf>>) = std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .into_iter()
            .zip(comms)
            .map(|(gpu_bufs, mut comm)| {
                let dt = &dt;
                s.spawn(move || {
                    // Intra-node reduce (Algorithm 1): one widened pass.
                    let mut node_sum = vec![E::ZERO; len];
                    let refs: Vec<&[E]> = gpu_bufs.iter().map(|b| b.as_slice()).collect();
                    reduce_n_into(&mut node_sum, &refs);
                    let gpus = gpu_bufs.len();
                    if let Some(buf) = &mut comm.obs {
                        buf.op("reduce:intra", len as u64, (len * gpus) as f64);
                    }
                    // Inter-node allreduce (Algorithm 2).
                    if dt.len() > 1 {
                        tree_allreduce_rank(&mut comm, dt, &mut node_sum, chunks)
                            .expect("fault-free allreduce must not fail");
                    }
                    if let Some(buf) = &mut comm.obs {
                        buf.op("bcast:h2d", len as u64, (len * gpus) as f64);
                    }
                    // H2D broadcast: every GPU buffer gets the result.
                    (vec![node_sum; gpus], comm.obs.take())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node panicked"))
            .unzip()
    });
    if let Some(o) = obs {
        for buf in bufs.into_iter().flatten() {
            buf.commit(&o.rec);
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::reference_sum;
    use ff_dtypes::{Bf16, F16};

    /// Integer-valued f32 inputs make every summation order exact.
    fn int_inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| (0..len).map(|i| ((r * 31 + i * 7) % 50) as f32).collect())
            .collect()
    }

    #[test]
    fn dbtree_matches_reference_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 8, 13, 16] {
            for len in [1usize, 2, 17, 128, 1001] {
                let inputs = int_inputs(n, len);
                let want = reference_sum(&inputs);
                let out = allreduce_dbtree(inputs, 4);
                for (r, buf) in out.iter().enumerate() {
                    assert_eq!(buf, &want, "rank {r}, n={n}, len={len}");
                }
            }
        }
    }

    #[test]
    fn ring_matches_reference() {
        for n in [2usize, 3, 4, 8] {
            let inputs = int_inputs(n, 240);
            let want = reference_sum(&inputs);
            let out = allreduce_ring(inputs);
            for buf in &out {
                assert_eq!(buf, &want, "n={n}");
            }
        }
    }

    #[test]
    fn ring_and_tree_agree() {
        let inputs = int_inputs(6, 600);
        let a = allreduce_ring(inputs.clone());
        let b = allreduce_dbtree(inputs, 3);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn hfreduce_exec_full_path() {
        // 3 nodes × 8 GPUs of integer-valued gradients.
        let inputs: Vec<Vec<Vec<f32>>> = (0..3)
            .map(|v| {
                (0..8)
                    .map(|g| (0..100).map(|i| ((v * 8 + g + i) % 20) as f32).collect())
                    .collect()
            })
            .collect();
        let flat: Vec<Vec<f32>> = inputs.iter().flatten().cloned().collect();
        let want = reference_sum(&flat);
        let out = hfreduce_exec(inputs, 2);
        for (v, node) in out.iter().enumerate() {
            assert_eq!(node.len(), 8);
            for (g, buf) in node.iter().enumerate() {
                assert_eq!(buf, &want, "node {v} gpu {g}");
            }
        }
    }

    #[test]
    fn hfreduce_exec_single_node() {
        let inputs = vec![vec![vec![1.0f32, 2.0], vec![3.0, 4.0]]];
        let out = hfreduce_exec(inputs, 1);
        assert_eq!(out[0][0], vec![4.0, 6.0]);
        assert_eq!(out[0][1], vec![4.0, 6.0]);
    }

    #[test]
    fn f16_allreduce_small_integers_exact() {
        // Sums stay ≤ 2048 so binary16 is exact.
        let inputs: Vec<Vec<F16>> = (0..8)
            .map(|r| {
                (0..64)
                    .map(|i| F16::from_f32(((r + i) % 16) as f32))
                    .collect()
            })
            .collect();
        let want = reference_sum(&inputs);
        let out = allreduce_dbtree(inputs, 2);
        assert_eq!(out[3], want);
    }

    #[test]
    fn bf16_hfreduce_exact_small_integers() {
        let inputs: Vec<Vec<Vec<Bf16>>> = (0..2)
            .map(|v| {
                (0..8)
                    .map(|g| {
                        (0..32)
                            .map(|i| Bf16::from_f32(((v + g + i) % 8) as f32))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let flat: Vec<Vec<Bf16>> = inputs.iter().flatten().cloned().collect();
        let want = reference_sum(&flat);
        let out = hfreduce_exec(inputs, 4);
        assert_eq!(out[1][5], want);
    }

    #[test]
    fn odd_length_and_chunk_interplay() {
        // Lengths not divisible by chunks or halves still reduce exactly.
        let inputs = int_inputs(5, 97);
        let want = reference_sum(&inputs);
        for chunks in [1usize, 2, 3, 7, 97] {
            let out = allreduce_dbtree(inputs.clone(), chunks);
            assert_eq!(out[0], want, "chunks={chunks}");
        }
    }

    #[test]
    #[should_panic(expected = "unequal buffers")]
    fn mismatched_rank_buffers_rejected() {
        allreduce_dbtree(vec![vec![1.0f32], vec![1.0, 2.0]], 1);
    }

    // ---- fault tolerance ----

    const FAST_TIMEOUT: Duration = Duration::from_millis(200);

    #[test]
    fn ft_no_fault_matches_plain_allreduce() {
        let inputs = int_inputs(6, 120);
        let want = reference_sum(&inputs);
        let report = allreduce_dbtree_ft(inputs, 3, &ExecFaultPlan::none());
        assert_eq!(report.attempts, 1);
        assert_eq!(report.survivors, (0..6).collect::<Vec<_>>());
        assert!(report.dead.is_empty());
        for out in report.outputs.iter() {
            assert_eq!(out.as_ref().unwrap(), &want);
        }
    }

    #[test]
    fn ft_rank_death_shrinks_to_survivors() {
        for victim in [0usize, 2, 5] {
            let inputs = int_inputs(6, 120);
            // Reference excludes the victim's contribution.
            let surviving: Vec<Vec<f32>> = inputs
                .iter()
                .enumerate()
                .filter(|&(r, _)| r != victim)
                .map(|(_, v)| v.clone())
                .collect();
            let want = reference_sum(&surviving);
            let plan = ExecFaultPlan::kill_rank(victim, 1, FAST_TIMEOUT);
            let report = allreduce_dbtree_ft(inputs, 3, &plan);
            assert_eq!(report.dead, vec![victim]);
            assert_eq!(report.attempts, 2, "one failed attempt + one clean retry");
            assert_eq!(report.survivors.len(), 5);
            assert!(report.outputs[victim].is_none());
            for (r, out) in report.outputs.iter().enumerate() {
                if r != victim {
                    assert_eq!(out.as_ref().unwrap(), &want, "rank {r}");
                }
            }
        }
    }

    #[test]
    fn ft_death_before_any_send() {
        let inputs = int_inputs(4, 64);
        let surviving: Vec<Vec<f32>> = inputs[..3].to_vec();
        let want = reference_sum(&surviving);
        let plan = ExecFaultPlan::kill_rank(3, 0, FAST_TIMEOUT);
        let report = allreduce_dbtree_ft(inputs, 2, &plan);
        assert_eq!(report.dead, vec![3]);
        for r in 0..3 {
            assert_eq!(report.outputs[r].as_ref().unwrap(), &want);
        }
    }

    #[test]
    fn ft_two_deaths_two_shrinks_or_one() {
        let inputs = int_inputs(5, 80);
        let surviving: Vec<Vec<f32>> =
            vec![inputs[0].clone(), inputs[2].clone(), inputs[4].clone()];
        let want = reference_sum(&surviving);
        let plan = ExecFaultPlan {
            deaths: vec![(1, 0), (3, 0)],
            recv_timeout: FAST_TIMEOUT,
        };
        let report = allreduce_dbtree_ft(inputs, 2, &plan);
        assert_eq!(report.dead, vec![1, 3]);
        assert_eq!(report.survivors, vec![0, 2, 4]);
        for &r in &[0usize, 2, 4] {
            assert_eq!(report.outputs[r].as_ref().unwrap(), &want, "rank {r}");
        }
    }

    #[test]
    fn ft_shrinks_to_single_survivor() {
        let inputs = int_inputs(2, 16);
        let want = inputs[0].clone();
        let plan = ExecFaultPlan::kill_rank(1, 0, FAST_TIMEOUT);
        let report = allreduce_dbtree_ft(inputs, 1, &plan);
        assert_eq!(report.survivors, vec![0]);
        assert_eq!(report.outputs[0].as_ref().unwrap(), &want);
        assert!(report.outputs[1].is_none());
    }
}
