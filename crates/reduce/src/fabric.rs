//! The pluggable transport under every executable collective.
//!
//! A [`Fabric`] is one rank's endpoint into an ordered, reliable,
//! tag-addressed message transport — the role RDMA plays under the real
//! HFReduce (DESIGN.md's substitution table). Algorithms never talk to a
//! fabric directly; they go through
//! [`Communicator`](crate::comm::Communicator), which adds tag matching,
//! out-of-order stashing, element serialization, and the per-rank
//! logical-clock observability discipline. Three backends ship:
//!
//! * [`InMemFabric`] — the default: `ff_util::channel` mpmc queues, one
//!   inbox per rank, exactly the behaviour the collectives always had.
//! * [`TcpFabric`] — ranks as OS threads exchanging length-prefixed
//!   frames over real localhost TCP sockets (one full-duplex stream per
//!   rank pair, `TCP_NODELAY`). Teardown is reconnect-free: a peer that
//!   goes away surfaces as [`CommError::Disconnected`], never a hang.
//! * [`FaultyFabric`] — middleware wrapping any backend: the rank's
//!   endpoint goes silent after a configured number of sends, which is
//!   how [`ExecFaultPlan`](crate::exec::ExecFaultPlan) injections reach
//!   the transport without any algorithm-side plumbing.
//!
//! [`CalibratedFabric`] wraps any backend and meters per-message latency
//! and bytes; [`calibrate`](crate::calibration::calibrate) turns ping-pong
//! runs over a backend into `(latency, bandwidth)` constants for
//! `ff_hw::LinkParams`.
//!
//! Both concrete backends share one liveness protocol: a fabric that is
//! dropped (cleanly or because its rank died) delivers a *hangup* control
//! frame to every peer — explicitly for in-memory channels, via FIN/EOF
//! for TCP — so survivors observe [`CommError::Disconnected`] rather than
//! waiting out their receive timeout. [`Fabric::set_silent_teardown`]
//! suppresses the explicit hangup for injected deaths, which must look
//! like a host falling silent (liveness then comes from the timeout, as
//! on real hardware).

use ff_util::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

/// Default receive timeout for fault-free collectives: generous enough
/// that scheduler hiccups never fire it.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Communication failure observed by one rank. The process survives; the
/// caller decides whether to retry, shrink, or abort.
///
/// The fabric layer attaches peer context itself: `peer` is always the
/// *logical rank* the operation concerned (the rank being sent to or
/// awaited), never a transport-internal endpoint, so every backend
/// reports the same rank for the same failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// The peer's endpoint is gone (hangup frame, closed socket, or
    /// dropped channel).
    Disconnected {
        /// The peer rank that hung up.
        peer: usize,
    },
    /// No message from the peer within the receive timeout — the liveness
    /// signal a real collective gets from a transport-level timeout.
    /// Always carries the deadline that was configured, so "how long did
    /// we wait" never has to be reconstructed from context.
    Timeout {
        /// The peer rank that went silent.
        peer: usize,
        /// The configured receive deadline that expired.
        deadline: Duration,
    },
    /// The peer delivered bytes that do not decode as the expected
    /// message type — a framing or serialization bug, never expected
    /// in-tree.
    Protocol {
        /// The peer rank whose message failed to decode.
        peer: usize,
    },
}

impl CommError {
    /// The logical peer rank this error concerns.
    pub fn peer(&self) -> usize {
        match *self {
            CommError::Disconnected { peer }
            | CommError::Timeout { peer, .. }
            | CommError::Protocol { peer } => peer,
        }
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            CommError::Timeout { peer, deadline } => write!(
                f,
                "timed out after {:?} waiting for peer rank {peer}",
                deadline
            ),
            CommError::Protocol { peer } => {
                write!(f, "undecodable message from peer rank {peer}")
            }
        }
    }
}

impl std::error::Error for CommError {}

impl From<CommError> for ff_util::FfError {
    fn from(e: CommError) -> Self {
        ff_util::FfError::with_source(ff_util::FfKind::Comm, e.to_string(), e)
    }
}

/// Phase byte: reduce-up leg of a tree collective.
pub const PHASE_UP: u8 = 0;
/// Phase byte: broadcast-down leg of a tree collective.
pub const PHASE_DOWN: u8 = 1;
/// Phase byte: ring step.
pub const PHASE_RING: u8 = 2;
/// Phase byte: all2all exchange.
pub const PHASE_A2A: u8 = 3;
/// Phase byte: hangup control frame (fabric-internal, never user data).
pub const PHASE_CTRL: u8 = 0xFF;

/// Message tag: which collective leg a payload belongs to. The sending
/// rank is not part of the tag — the fabric attaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag {
    /// One of the `PHASE_*` constants.
    pub phase: u8,
    /// Tree index (double binary tree: 0 = A, 1 = B).
    pub tree: u8,
    /// Chunk / step / sequence number within the phase.
    pub chunk: u32,
}

impl Tag {
    /// The hangup control tag.
    pub const fn ctrl() -> Tag {
        Tag {
            phase: PHASE_CTRL,
            tree: 0,
            chunk: 0,
        }
    }

    /// True for fabric-internal control frames.
    pub fn is_ctrl(&self) -> bool {
        self.phase == PHASE_CTRL
    }
}

/// One framed message as delivered by a fabric: who sent it, its tag, and
/// its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawMsg {
    /// Sending rank.
    pub from: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload (empty for control frames).
    pub bytes: Vec<u8>,
}

/// Why [`Fabric::recv_any`] returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvAnyError {
    /// The deadline passed without any inbound frame.
    Timeout,
    /// Every peer endpoint is gone and the inbox is drained.
    Closed,
}

/// One rank's endpoint into the transport: send bytes to a peer by rank,
/// receive the next inbound frame from anyone. Ordered and reliable per
/// peer pair — which is all the collectives assume of RDMA.
pub trait Fabric: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;
    /// Total ranks in the world.
    fn world_size(&self) -> usize;
    /// Short backend name for diagnostics ("inmem", "tcp", ...).
    fn backend(&self) -> &'static str;
    /// Send `bytes` under `tag` to `to`. Self-sends are a caller bug.
    fn send(&mut self, to: usize, tag: Tag, bytes: &[u8]) -> Result<(), CommError>;
    /// Next inbound frame from any peer, waiting at most `timeout`.
    fn recv_any(&mut self, timeout: Duration) -> Result<RawMsg, RecvAnyError>;
    /// Suppress the explicit goodbye on drop: an injected death must look
    /// like silence, not a polite hangup. Backends whose teardown is
    /// inherently visible (TCP FIN) may ignore this.
    fn set_silent_teardown(&mut self, _silent: bool) {}
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// The default backend: one mpmc inbox per rank over `ff_util::channel`,
/// exactly the transport the collectives were originally wired to.
pub struct InMemFabric {
    rank: usize,
    txs: Vec<Sender<RawMsg>>,
    rx: Receiver<RawMsg>,
    silent: bool,
}

impl InMemFabric {
    /// A fully-connected world of `n` endpoints.
    pub fn mesh(n: usize) -> Vec<InMemFabric> {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| InMemFabric {
                rank,
                txs: txs.clone(),
                rx,
                silent: false,
            })
            .collect()
    }
}

impl Fabric for InMemFabric {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.txs.len()
    }

    fn backend(&self) -> &'static str {
        "inmem"
    }

    fn send(&mut self, to: usize, tag: Tag, bytes: &[u8]) -> Result<(), CommError> {
        debug_assert_ne!(to, self.rank, "self-sends never reach the fabric");
        self.txs[to]
            .send(RawMsg {
                from: self.rank,
                tag,
                bytes: bytes.to_vec(),
            })
            .map_err(|_| CommError::Disconnected { peer: to })
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<RawMsg, RecvAnyError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvAnyError::Timeout,
            RecvTimeoutError::Disconnected => RecvAnyError::Closed,
        })
    }

    fn set_silent_teardown(&mut self, silent: bool) {
        self.silent = silent;
    }
}

impl Drop for InMemFabric {
    fn drop(&mut self) {
        if self.silent {
            return;
        }
        // Goodbye to every peer: survivors observe a hangup frame instead
        // of waiting out their receive timeout. Peers already gone are
        // fine — the send just fails.
        for (to, tx) in self.txs.iter().enumerate() {
            if to != self.rank {
                let _ = tx.send(RawMsg {
                    from: self.rank,
                    tag: Tag::ctrl(),
                    bytes: Vec::new(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------------

/// Wire frame header: phase, tree, chunk, payload length.
const TCP_HEADER_LEN: usize = 1 + 1 + 4 + 4;

fn encode_header(tag: Tag, len: usize) -> [u8; TCP_HEADER_LEN] {
    let mut h = [0u8; TCP_HEADER_LEN];
    h[0] = tag.phase;
    h[1] = tag.tree;
    h[2..6].copy_from_slice(&tag.chunk.to_le_bytes());
    h[6..10].copy_from_slice(&(len as u32).to_le_bytes());
    h
}

/// The real-network backend: a full-duplex localhost TCP stream per rank
/// pair, length-prefixed frames, one demux reader thread per inbound
/// stream feeding the rank's inbox. Ranks run as OS threads in one
/// process; the bytes cross the kernel loopback path for real.
pub struct TcpFabric {
    rank: usize,
    world: usize,
    writers: Vec<Option<TcpStream>>,
    rx: Receiver<RawMsg>,
}

impl TcpFabric {
    /// A fully-connected world of `n` endpoints over ephemeral localhost
    /// ports. Connection setup is sequential and deterministic; reader
    /// threads exit on peer EOF, so no explicit shutdown choreography is
    /// needed beyond dropping the fabrics.
    pub fn mesh(n: usize) -> std::io::Result<Vec<TcpFabric>> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addrs: Vec<std::net::SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()?;
        let (txs, rxs): (Vec<Sender<RawMsg>>, Vec<Receiver<RawMsg>>) =
            (0..n).map(|_| unbounded()).unzip();
        let mut writers: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                // connect() completes via the listen backlog, so the
                // matching accept() can follow sequentially.
                let a = TcpStream::connect(addrs[j])?;
                let (b, _) = listeners[j].accept()?;
                a.set_nodelay(true)?;
                b.set_nodelay(true)?;
                spawn_reader(a.try_clone()?, j, txs[i].clone());
                spawn_reader(b.try_clone()?, i, txs[j].clone());
                writers[i][j] = Some(a);
                writers[j][i] = Some(b);
            }
        }
        drop(txs); // inboxes close once every reader thread exits
        Ok(writers
            .into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(rank, (w, rx))| TcpFabric {
                rank,
                world: n,
                writers: w,
                rx,
            })
            .collect())
    }
}

/// Demux thread: read frames from one peer's stream into the inbox until
/// EOF or error, then deliver the hangup frame.
fn spawn_reader(mut stream: TcpStream, from: usize, tx: Sender<RawMsg>) {
    std::thread::spawn(move || {
        loop {
            let mut header = [0u8; TCP_HEADER_LEN];
            if stream.read_exact(&mut header).is_err() {
                break;
            }
            let tag = Tag {
                phase: header[0],
                tree: header[1],
                chunk: u32::from_le_bytes(header[2..6].try_into().expect("4 bytes")),
            };
            let len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes")) as usize;
            let mut bytes = vec![0u8; len];
            if stream.read_exact(&mut bytes).is_err() {
                break;
            }
            if tx.send(RawMsg { from, tag, bytes }).is_err() {
                return; // local fabric gone; no hangup needed
            }
        }
        // Peer closed (or died mid-frame): reconnect-free teardown — the
        // hangup frame is what survivors see as `Disconnected`.
        let _ = tx.send(RawMsg {
            from,
            tag: Tag::ctrl(),
            bytes: Vec::new(),
        });
    });
}

impl Fabric for TcpFabric {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn backend(&self) -> &'static str {
        "tcp"
    }

    fn send(&mut self, to: usize, tag: Tag, bytes: &[u8]) -> Result<(), CommError> {
        debug_assert_ne!(to, self.rank, "self-sends never reach the fabric");
        let stream = self.writers[to]
            .as_mut()
            .ok_or(CommError::Disconnected { peer: to })?;
        let header = encode_header(tag, bytes.len());
        if stream.write_all(&header).is_err() || stream.write_all(bytes).is_err() {
            self.writers[to] = None;
            return Err(CommError::Disconnected { peer: to });
        }
        Ok(())
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<RawMsg, RecvAnyError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvAnyError::Timeout,
            RecvTimeoutError::Disconnected => RecvAnyError::Closed,
        })
    }
    // TCP teardown is inherently visible (FIN → reader EOF → hangup), so
    // `set_silent_teardown` keeps its no-op default: injected deaths over
    // TCP are detected fast rather than by timeout. Documented on
    // `FaultyFabric`.
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        // Reader threads hold fd clones, so dropping the writers alone
        // would not close the sockets; shutdown() terminates the socket
        // itself and unblocks every clone.
        for w in self.writers.iter().flatten() {
            let _ = w.shutdown(Shutdown::Both);
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injection middleware
// ---------------------------------------------------------------------------

/// Transport middleware that kills the rank after a configured number of
/// sends — the single place `ExecFaultPlan` deaths are realized, for any
/// backend. A fired death turns the endpoint silent (`silent = true`,
/// the in-memory default used by the fault-tolerant allreduce: survivors
/// must detect the loss by timeout, as with a real dead host) or into an
/// abrupt hangup (`silent = false`, how a process crash looks to TCP
/// peers — and the only mode a TCP backend can express, since closing a
/// socket always emits FIN).
pub struct FaultyFabric<F: Fabric> {
    inner: F,
    die_after_sends: usize,
    silent_death: bool,
    sends: usize,
    died: bool,
}

impl<F: Fabric> FaultyFabric<F> {
    /// Wrap `inner`; the rank dies once it has issued `die_after_sends`
    /// messages (`usize::MAX` = never).
    pub fn new(inner: F, die_after_sends: usize, silent_death: bool) -> FaultyFabric<F> {
        FaultyFabric {
            inner,
            die_after_sends,
            silent_death,
            sends: 0,
            died: false,
        }
    }

    /// A wrapper that never fires — useful to keep one fabric type across
    /// faulted and unfaulted ranks.
    pub fn immortal(inner: F) -> FaultyFabric<F> {
        Self::new(inner, usize::MAX, true)
    }

    /// True once the injected death has fired.
    pub fn died(&self) -> bool {
        self.died
    }
}

impl<F: Fabric> Fabric for FaultyFabric<F> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn backend(&self) -> &'static str {
        self.inner.backend()
    }

    fn send(&mut self, to: usize, tag: Tag, bytes: &[u8]) -> Result<(), CommError> {
        if self.died || self.sends >= self.die_after_sends {
            // The injected Xid fires here: this rank's endpoint goes
            // silent. Reported as a self-disconnect so the rank's own
            // stack unwinds without touching any peer.
            if !self.died {
                self.died = true;
                if self.silent_death {
                    self.inner.set_silent_teardown(true);
                }
            }
            return Err(CommError::Disconnected {
                peer: self.inner.rank(),
            });
        }
        self.sends += 1;
        self.inner.send(to, tag, bytes)
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<RawMsg, RecvAnyError> {
        self.inner.recv_any(timeout)
    }

    fn set_silent_teardown(&mut self, silent: bool) {
        self.inner.set_silent_teardown(silent);
    }
}

// ---------------------------------------------------------------------------
// Calibration middleware
// ---------------------------------------------------------------------------

/// Wall-clock transport meters accumulated by [`CalibratedFabric`],
/// shared across the ranks of a world via `Arc`.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct CalStats {
    /// Messages sent.
    pub sends: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Wall-clock nanoseconds spent inside `send` calls.
    pub send_ns: u64,
    /// Messages received (data frames only).
    pub recvs: u64,
}

impl CalStats {
    /// Mean wall-clock microseconds per sent message.
    pub fn latency_us_per_msg(&self) -> f64 {
        if self.sends == 0 {
            return 0.0;
        }
        self.send_ns as f64 / 1e3 / self.sends as f64
    }

    /// Send-side goodput in GB/s (payload bytes over time inside `send`).
    pub fn send_gbps(&self) -> f64 {
        if self.send_ns == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.send_ns as f64 // bytes/ns == GB/s
    }
}

/// Shared handle to a world's calibration meters.
pub type CalSink = std::sync::Arc<ff_util::sync::Mutex<CalStats>>;

/// A fresh, zeroed [`CalSink`].
pub fn cal_sink() -> CalSink {
    std::sync::Arc::new(ff_util::sync::Mutex::new(CalStats::default()))
}

/// Transport middleware that meters every message: per-send wall-clock
/// latency and bytes into a shared [`CalSink`]. Wrap any backend to turn
/// a run into measured constants (see `ff_reduce::calibration`).
pub struct CalibratedFabric<F: Fabric> {
    inner: F,
    sink: CalSink,
}

impl<F: Fabric> CalibratedFabric<F> {
    /// Wrap `inner`, metering into `sink`.
    pub fn new(inner: F, sink: CalSink) -> CalibratedFabric<F> {
        CalibratedFabric { inner, sink }
    }
}

impl<F: Fabric> Fabric for CalibratedFabric<F> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn backend(&self) -> &'static str {
        self.inner.backend()
    }

    fn send(&mut self, to: usize, tag: Tag, bytes: &[u8]) -> Result<(), CommError> {
        let t0 = std::time::Instant::now();
        let res = self.inner.send(to, tag, bytes);
        let dt = t0.elapsed().as_nanos() as u64;
        let mut s = self.sink.lock();
        s.sends += 1;
        s.bytes += bytes.len() as u64;
        s.send_ns += dt;
        res
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<RawMsg, RecvAnyError> {
        let res = self.inner.recv_any(timeout);
        if let Ok(m) = &res {
            if !m.tag.is_ctrl() {
                self.sink.lock().recvs += 1;
            }
        }
        res
    }

    fn set_silent_teardown(&mut self, silent: bool) {
        self.inner.set_silent_teardown(silent);
    }
}

// ---------------------------------------------------------------------------
// Providers
// ---------------------------------------------------------------------------

/// Builds whole worlds of one fabric backend — what the orchestration
/// layer (world runners, the fault-tolerant allreduce's per-attempt
/// re-mesh) is generic over.
pub trait FabricProvider: Sync {
    /// The fabric type this provider builds.
    type F: Fabric;
    /// Short backend name ("inmem", "tcp").
    fn name(&self) -> &'static str;
    /// A fully-connected world of `n` endpoints.
    fn world(&self, n: usize) -> std::io::Result<Vec<Self::F>>;
}

/// Provider for [`InMemFabric`] worlds — the default transport.
#[derive(Debug, Clone, Copy, Default)]
pub struct InMemProvider;

impl FabricProvider for InMemProvider {
    type F = InMemFabric;

    fn name(&self) -> &'static str {
        "inmem"
    }

    fn world(&self, n: usize) -> std::io::Result<Vec<InMemFabric>> {
        Ok(InMemFabric::mesh(n))
    }
}

/// Provider for [`TcpFabric`] worlds over ephemeral localhost ports.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpProvider;

impl FabricProvider for TcpProvider {
    type F = TcpFabric;

    fn name(&self) -> &'static str {
        "tcp"
    }

    fn world(&self, n: usize) -> std::io::Result<Vec<TcpFabric>> {
        TcpFabric::mesh(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<F: Fabric + 'static>(mut world: Vec<F>) {
        let mut f1 = world.pop().expect("two endpoints");
        let mut f0 = world.pop().expect("two endpoints");
        let tag = Tag {
            phase: PHASE_UP,
            tree: 1,
            chunk: 7,
        };
        let h = std::thread::spawn(move || {
            f1.send(0, tag, b"pong").expect("send");
            f1
        });
        f0.send(1, tag, b"ping").expect("send");
        let got = f0.recv_any(Duration::from_secs(5)).expect("recv");
        assert_eq!(got.from, 1);
        assert_eq!(got.tag, tag);
        assert_eq!(got.bytes, b"pong");
        let f1 = h.join().expect("peer thread");
        drop(f1);
        // Teardown surfaces as a hangup frame, not a hang.
        let bye = f0.recv_any(Duration::from_secs(5)).expect("hangup");
        assert!(bye.tag.is_ctrl());
        assert_eq!(bye.from, 1);
    }

    #[test]
    fn inmem_roundtrip_and_hangup() {
        roundtrip(InMemFabric::mesh(2));
    }

    #[test]
    fn tcp_roundtrip_and_hangup() {
        roundtrip(TcpFabric::mesh(2).expect("localhost sockets"));
    }

    #[test]
    fn tcp_frames_preserve_order_and_tags() {
        let mut world = TcpFabric::mesh(2).expect("sockets");
        let mut f1 = world.pop().expect("two");
        let mut f0 = world.pop().expect("two");
        for chunk in 0..32u32 {
            let tag = Tag {
                phase: PHASE_RING,
                tree: 0,
                chunk,
            };
            f0.send(1, tag, &chunk.to_le_bytes()).expect("send");
        }
        for chunk in 0..32u32 {
            let m = f1.recv_any(Duration::from_secs(5)).expect("recv");
            assert_eq!(m.tag.chunk, chunk, "per-pair FIFO order");
            assert_eq!(m.bytes, chunk.to_le_bytes());
        }
    }

    #[test]
    fn faulty_fabric_dies_after_n_sends() {
        let mut world = InMemFabric::mesh(2);
        let f1 = world.pop().expect("two");
        let mut faulty = FaultyFabric::new(f1, 2, true);
        let tag = Tag {
            phase: PHASE_UP,
            tree: 0,
            chunk: 0,
        };
        assert!(faulty.send(0, tag, b"a").is_ok());
        assert!(faulty.send(0, tag, b"b").is_ok());
        assert!(!faulty.died());
        assert_eq!(
            faulty.send(0, tag, b"c"),
            Err(CommError::Disconnected { peer: 1 })
        );
        assert!(faulty.died());
        // Dead stays dead.
        assert_eq!(
            faulty.send(0, tag, b"d"),
            Err(CommError::Disconnected { peer: 1 })
        );
    }

    #[test]
    fn silent_death_sends_no_hangup() {
        let mut world = InMemFabric::mesh(2);
        let f1 = world.pop().expect("two");
        let mut f0 = world.pop().expect("two");
        let mut faulty = FaultyFabric::new(f1, 0, true);
        let tag = Tag {
            phase: PHASE_UP,
            tree: 0,
            chunk: 0,
        };
        assert!(faulty.send(0, tag, b"x").is_err());
        drop(faulty); // silent: no ctrl frame may arrive
        assert_eq!(
            f0.recv_any(Duration::from_millis(50)),
            Err(RecvAnyError::Timeout)
        );
    }

    #[test]
    fn calibrated_fabric_meters_bytes_and_messages() {
        let sink = cal_sink();
        let mut world = InMemFabric::mesh(2);
        let f1 = world.pop().expect("two");
        let mut f0 = CalibratedFabric::new(world.pop().expect("two"), sink.clone());
        let tag = Tag {
            phase: PHASE_A2A,
            tree: 0,
            chunk: 0,
        };
        f0.send(1, tag, &[0u8; 100]).expect("send");
        f0.send(1, tag, &[0u8; 28]).expect("send");
        drop(f1);
        let s = *sink.lock();
        assert_eq!(s.sends, 2);
        assert_eq!(s.bytes, 128);
        assert!(s.latency_us_per_msg() >= 0.0);
    }
}
