//! Tests for the general reduce and broadcast collectives (§IV:
//! "HFReduce is versatile and can be applied to any scenario requiring
//! allreduce, as well as general reduce and broadcast operations").

use ff_reduce::kernels::reference_sum;
use ff_reduce::{run_broadcast, run_reduce_to_root, InMemProvider, TcpProvider};

fn int_inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|r| (0..len).map(|i| ((r * 13 + i * 5) % 40) as f32).collect())
        .collect()
}

#[test]
fn reduce_to_root_matches_reference() {
    for n in [1usize, 2, 3, 5, 8, 12] {
        let inputs = int_inputs(n, 333);
        let want = reference_sum(&inputs);
        let (root, sum) = run_reduce_to_root(inputs, 3, &InMemProvider);
        assert!(root < n);
        assert_eq!(sum, want, "n={n}");
    }
}

#[test]
fn reduce_root_is_the_tree_root() {
    use ff_topo::dbtree::DoubleBinaryTree;
    for n in [2usize, 4, 9] {
        let (root, _) = run_reduce_to_root(int_inputs(n, 16), 2, &InMemProvider);
        assert_eq!(root, DoubleBinaryTree::new(n).a.root);
    }
}

#[test]
fn broadcast_delivers_to_every_rank() {
    let data: Vec<f32> = (0..500).map(|i| (i % 23) as f32).collect();
    for n in [1usize, 2, 3, 7, 16] {
        let out = run_broadcast(data.clone(), n, 4, &InMemProvider);
        assert_eq!(out.len(), n);
        for (r, buf) in out.iter().enumerate() {
            assert_eq!(buf, &data, "rank {r}, n={n}");
        }
    }
}

#[test]
fn broadcast_then_reduce_roundtrip() {
    // Broadcasting x to n ranks then reducing gives n·x.
    let n = 6usize;
    let data: Vec<f32> = (0..100).map(|i| (i % 10) as f32).collect();
    let copies = run_broadcast(data.clone(), n, 2, &InMemProvider);
    let (_, sum) = run_reduce_to_root(copies, 2, &InMemProvider);
    for (i, &v) in sum.iter().enumerate() {
        assert_eq!(v, n as f32 * data[i]);
    }
}

#[test]
fn chunking_does_not_change_results() {
    let inputs = int_inputs(7, 97);
    let want = reference_sum(&inputs);
    for chunks in [1usize, 2, 5, 97] {
        let (_, sum) = run_reduce_to_root(inputs.clone(), chunks, &InMemProvider);
        assert_eq!(sum, want, "chunks={chunks}");
    }
}

#[test]
fn reduce_and_broadcast_transport_invariant() {
    // The same collectives over real TCP sockets produce byte-identical
    // results to the in-memory fabric.
    let inputs = int_inputs(4, 97);
    let (root_m, sum_m) = run_reduce_to_root(inputs.clone(), 3, &InMemProvider);
    let (root_t, sum_t) = run_reduce_to_root(inputs, 3, &TcpProvider);
    assert_eq!((root_m, sum_m), (root_t, sum_t));

    let data: Vec<f32> = (0..64).map(|i| (i % 23) as f32).collect();
    assert_eq!(
        run_broadcast(data.clone(), 5, 2, &InMemProvider),
        run_broadcast(data, 5, 2, &TcpProvider)
    );
}
