//! Compatibility tests for the deprecated free-function shims: each one
//! must keep delegating to the `Communicator`-based drivers with the old
//! signature and semantics until its removal release. Everything in here
//! intentionally calls deprecated API — this is the only in-tree caller.

#![allow(deprecated)]

use ff_obs::Recorder;
use ff_reduce::exec::{broadcast, reduce_to_root};
use ff_reduce::kernels::reference_sum;
use ff_reduce::{
    allreduce_dbtree, allreduce_dbtree_ft, allreduce_dbtree_ft_traced, allreduce_dbtree_traced,
    allreduce_ring, hfreduce_exec, hfreduce_exec_traced, ExecFaultPlan, ObsCtx,
};
use std::time::Duration;

fn int_inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|r| (0..len).map(|i| ((r * 13 + i * 5) % 40) as f32).collect())
        .collect()
}

#[test]
fn allreduce_shims_match_reference() {
    let inputs = int_inputs(5, 77);
    let want = reference_sum(&inputs);
    for buf in allreduce_dbtree(inputs.clone(), 3) {
        assert_eq!(buf, want);
    }
    for buf in allreduce_ring(inputs) {
        assert_eq!(buf, want);
    }
}

#[test]
fn traced_allreduce_shim_still_traces() {
    let rec = Recorder::new();
    let obs = ObsCtx::new(&rec, "reduce", 0);
    let out = allreduce_dbtree_traced(int_inputs(4, 32), 2, &obs);
    assert_eq!(out[0], reference_sum(&int_inputs(4, 32)));
    assert!(rec.event_count() > 0, "shim must keep emitting obs events");
}

#[test]
fn reduce_and_broadcast_shims() {
    let inputs = int_inputs(6, 50);
    let want = reference_sum(&inputs);
    let (root, sum) = reduce_to_root(inputs, 2);
    assert!(root < 6);
    assert_eq!(sum, want);

    let data: Vec<f32> = (0..40).map(|i| i as f32).collect();
    for buf in broadcast(data.clone(), 5, 3) {
        assert_eq!(buf, data);
    }
}

#[test]
fn hfreduce_shims_match_reference() {
    let bufs: Vec<Vec<Vec<f32>>> = (0..3)
        .map(|v| {
            (0..2)
                .map(|g| (0..48).map(|i| ((v * 7 + g * 3 + i) % 13) as f32).collect())
                .collect()
        })
        .collect();
    let flat: Vec<Vec<f32>> = bufs.iter().flatten().cloned().collect();
    let want = reference_sum(&flat);
    for node in hfreduce_exec(bufs.clone(), 2) {
        for buf in node {
            assert_eq!(buf, want);
        }
    }
    let rec = Recorder::new();
    let out = hfreduce_exec_traced(bufs, 2, &ObsCtx::new(&rec, "reduce", 0));
    assert_eq!(out[0][0], want);
    assert!(rec.event_count() > 0);
}

#[test]
fn ft_shims_still_shrink_to_survivors() {
    let inputs = int_inputs(5, 40);
    let plan = ExecFaultPlan::kill_rank(1, 1, Duration::from_millis(200));
    let rep = allreduce_dbtree_ft(inputs.clone(), 2, &plan);
    assert_eq!(rep.dead, vec![1]);
    assert_eq!(rep.survivors, vec![0, 2, 3, 4]);

    let rec = Recorder::new();
    let obs = ObsCtx::new(&rec, "reduce", 0);
    let traced = allreduce_dbtree_ft_traced(inputs, 2, &plan, &obs);
    assert_eq!(traced.dead, vec![1]);
    assert!(rec.event_count() > 0, "ft shim must keep the ctl track");
}
