//! Randomized property tests: the executable collectives agree with the
//! serial reference reduction for arbitrary shapes and dtypes (seeded,
//! reproducible).

use ff_dtypes::{Bf16, F16};
use ff_reduce::kernels::reference_sum;
use ff_reduce::{run_allreduce, run_hfreduce, Algo, InMemProvider};
use ff_util::rng::ChaCha8Rng;

const CASES: usize = 32;

// Integer-valued entries keep every summation order exact.
fn f32_inputs(rng: &mut ChaCha8Rng) -> Vec<Vec<f32>> {
    let n = rng.gen_range(1usize..10);
    let len = rng.gen_range(1usize..200);
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen_range(-50i32..50) as f32).collect())
        .collect()
}

#[test]
fn dbtree_equals_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA801);
    for _ in 0..CASES {
        let inputs = f32_inputs(&mut rng);
        let chunks = rng.gen_range(1usize..6);
        let want = reference_sum(&inputs);
        let out = run_allreduce(inputs, Algo::DbTree { chunks }, &InMemProvider, None);
        for buf in &out {
            assert_eq!(buf, &want);
        }
    }
}

#[test]
fn ring_equals_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA802);
    let mut done = 0;
    while done < CASES {
        let inputs = f32_inputs(&mut rng);
        if inputs[0].len() < inputs.len() {
            continue;
        }
        done += 1;
        let want = reference_sum(&inputs);
        let out = run_allreduce(inputs, Algo::Ring, &InMemProvider, None);
        for buf in &out {
            assert_eq!(buf, &want);
        }
    }
}

#[test]
fn hfreduce_exec_equals_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA803);
    for _ in 0..CASES {
        let nodes = rng.gen_range(1usize..5);
        let gpus = rng.gen_range(1usize..5);
        let len = rng.gen_range(1usize..100);
        let chunks = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0i32..1000);
        let inputs: Vec<Vec<Vec<f32>>> = (0..nodes)
            .map(|v| {
                (0..gpus)
                    .map(|g| {
                        (0..len)
                            .map(|i| {
                                (((seed as usize + v * 31 + g * 7 + i) % 41) as i32 - 20) as f32
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let flat: Vec<Vec<f32>> = inputs.iter().flatten().cloned().collect();
        let want = reference_sum(&flat);
        let out = run_hfreduce(inputs, chunks, &InMemProvider, None);
        for node in &out {
            for buf in node {
                assert_eq!(buf, &want);
            }
        }
    }
}

/// Narrow dtypes: the tree result must be within the accumulated
/// rounding tolerance of the wide reference (each element is rounded
/// once per tree level at worst).
#[test]
fn f16_tree_close_to_wide_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA804);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..9);
        let len = rng.gen_range(1usize..64);
        let seed = rng.gen_range(0u32..500);
        let inputs: Vec<Vec<F16>> = (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| {
                        F16::from_f32(
                            (((seed as usize + r * 13 + i * 3) % 200) as f32 - 100.0) / 16.0,
                        )
                    })
                    .collect()
            })
            .collect();
        let wide: Vec<f32> = (0..len)
            .map(|i| inputs.iter().map(|v| v[i].to_f32()).sum())
            .collect();
        let out = run_allreduce(inputs, Algo::DbTree { chunks: 2 }, &InMemProvider, None);
        for (i, v) in out[0].iter().enumerate() {
            let tol = wide[i].abs().max(1.0) * 0.01 * (n as f32).log2().ceil();
            assert!(
                (v.to_f32() - wide[i]).abs() <= tol,
                "elem {i}: tree {} vs wide {}",
                v.to_f32(),
                wide[i]
            );
        }
    }
}

/// All ranks end with bit-identical buffers (consistency), regardless
/// of dtype rounding.
#[test]
fn all_ranks_agree_bf16() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA805);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..8);
        let len = rng.gen_range(1usize..64);
        let seed = rng.gen_range(0u32..100);
        let inputs: Vec<Vec<Bf16>> = (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| Bf16::from_f32(((seed + r as u32 * 17 + i as u32) % 97) as f32 / 7.0))
                    .collect()
            })
            .collect();
        let out = run_allreduce(inputs, Algo::DbTree { chunks: 3 }, &InMemProvider, None);
        for buf in &out[1..] {
            assert_eq!(buf, &out[0]);
        }
    }
}
