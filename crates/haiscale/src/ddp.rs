//! Data-parallel step-time model: HaiScale DDP (HFReduce backend) versus
//! PyTorch DDP (NCCL backend) — Figure 8a.
//!
//! The two backends differ in three hardware-grounded ways:
//!
//! 1. **Allreduce bandwidth** — HFReduce sustains ~8.6–9.5 GB/s on this
//!    node (Figure 7a); NCCL's ring is Rome-P2P-bound and declines with
//!    scale (§IV-B, §IV-D2).
//! 2. **Overlap** — HFReduce is CPU-asynchronous, so gradient buckets
//!    stream out as backward produces them and nearly the whole backward
//!    pass hides communication. NCCL must interleave its own GPU kernels,
//!    limiting the usable overlap window.
//! 3. **SM contention** — NCCL's copy/reduce kernels steal SMs from
//!    backward compute (§IV-B2); HFReduce uses only the copy engine.

use crate::models::TrainModel;
use crate::StepBreakdown;
use ff_hw::GpuForm;
use ff_reduce::model::hfreduce_analytic_bw;
use ff_reduce::ring::ring_analytic_bw;

/// Which gradient-allreduce backend drives data parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdpBackend {
    /// HaiScale DDP on HFReduce.
    HaiScale,
    /// PyTorch DDP on NCCL.
    TorchNccl,
}

impl DdpBackend {
    /// Fraction of the backward pass usable to hide allreduce traffic.
    fn overlap_fraction(self) -> f64 {
        match self {
            DdpBackend::HaiScale => 0.95,
            DdpBackend::TorchNccl => 0.50,
        }
    }

    /// Compute-time inflation from communication kernels occupying SMs.
    fn sm_contention(self) -> f64 {
        match self {
            DdpBackend::HaiScale => 1.0,
            DdpBackend::TorchNccl => 1.10,
        }
    }

    /// Allreduce algorithm bandwidth at `gpus` for `bytes` of gradients.
    pub fn allreduce_bw(self, gpus: usize, bytes: f64) -> f64 {
        match self {
            DdpBackend::HaiScale => hfreduce_analytic_bw(gpus),
            DdpBackend::TorchNccl => ring_analytic_bw(gpus.max(2), bytes),
        }
    }
}

/// Per-step straggler allowance: grows logarithmically with the process
/// count (more ranks, deeper synchronization trees, fatter tails).
fn jitter_s(gpus: usize) -> f64 {
    1.5e-3 * (gpus as f64).log2().max(0.0)
}

/// One DDP training step (weak scaling: `batch_per_gpu` fixed).
pub fn ddp_step(
    model: &TrainModel,
    gpus: usize,
    batch_per_gpu: usize,
    backend: DdpBackend,
) -> StepBreakdown {
    assert!(gpus >= 1);
    // VGG16 trains in TF32; transformers in fp16/bf16.
    let peak = if model.dtype_bytes == 4 {
        GpuForm::PcieA100.tf32_flops()
    } else {
        GpuForm::PcieA100.fp16_flops()
    };
    let sustained = model.sustained_flops(peak);
    let compute =
        model.step_flops_per_token() * batch_per_gpu as f64 / sustained * backend.sm_contention();
    let backward = compute * 2.0 / 3.0;
    let comm = if gpus > 1 {
        model.grad_bytes() / backend.allreduce_bw(gpus, model.grad_bytes())
    } else {
        0.0
    };
    let exposed = (comm - backward * backend.overlap_fraction()).max(0.0);
    StepBreakdown {
        compute_s: compute,
        exposed_comm_s: exposed,
        bubble_s: 0.0,
        jitter_s: jitter_s(gpus),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weak_scaling_efficiency;

    const BATCH: usize = 32;

    #[test]
    fn haiscale_halves_vgg16_step_time() {
        // Figure 8a: "training VGG16 with HFReduce takes only half the
        // time compared to Torch DDP's NCCL backend".
        let m = TrainModel::vgg16();
        for gpus in [32usize, 64, 128, 256, 512] {
            let hai = ddp_step(&m, gpus, BATCH, DdpBackend::HaiScale).total_s();
            let torch = ddp_step(&m, gpus, BATCH, DdpBackend::TorchNccl).total_s();
            let ratio = torch / hai;
            assert!(
                (1.5..4.0).contains(&ratio),
                "{gpus} GPUs: torch {torch:.3}s / hai {hai:.3}s = {ratio:.2}"
            );
        }
    }

    #[test]
    fn haiscale_weak_scaling_is_about_88pct() {
        // "achieving nearly 88% parallel scalability when scale from 32
        // GPUs to 512".
        let m = TrainModel::vgg16();
        let t32 = ddp_step(&m, 32, BATCH, DdpBackend::HaiScale).total_s();
        let t512 = ddp_step(&m, 512, BATCH, DdpBackend::HaiScale).total_s();
        let eff = weak_scaling_efficiency(t32, t512);
        assert!((0.84..=0.96).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn torch_ddp_degrades_faster_with_scale() {
        let m = TrainModel::vgg16();
        let t32 = ddp_step(&m, 32, BATCH, DdpBackend::TorchNccl).total_s();
        let t512 = ddp_step(&m, 512, BATCH, DdpBackend::TorchNccl).total_s();
        let eff_torch = weak_scaling_efficiency(t32, t512);
        let hai32 = ddp_step(&m, 32, BATCH, DdpBackend::HaiScale).total_s();
        let hai512 = ddp_step(&m, 512, BATCH, DdpBackend::HaiScale).total_s();
        let eff_hai = weak_scaling_efficiency(hai32, hai512);
        assert!(eff_torch < eff_hai, "torch {eff_torch} vs hai {eff_hai}");
    }

    #[test]
    fn vgg16_is_communication_bound() {
        // 553 MB of fp32 gradients vs ~40 ms of compute: DDP on this model
        // is dominated by the allreduce — the reason backend choice is a
        // 2× swing.
        let m = TrainModel::vgg16();
        let s = ddp_step(&m, 512, BATCH, DdpBackend::TorchNccl);
        assert!(s.exposed_comm_s > s.compute_s);
    }

    #[test]
    fn single_gpu_has_no_comm() {
        let m = TrainModel::vgg16();
        let s = ddp_step(&m, 1, BATCH, DdpBackend::HaiScale);
        assert_eq!(s.exposed_comm_s, 0.0);
        assert!(s.compute_s > 0.0);
    }
}
