//! Executable expert parallelism: the all2all dispatch/combine of MoE
//! training (§II-B1: "the gate model selects tokens for allocation during
//! input, with corresponding tokens sent to experts model via all2all
//! communication"), run for real over threads and channels.
//!
//! Each rank hosts one expert and a shard of the tokens. A step is:
//! gate (here: any deterministic assignment) → **all2all dispatch** (each
//! token's vector travels to its expert's rank) → expert computation →
//! **all2all combine** (results return to the token's home rank, in
//! order). The tests verify the end-to-end permutation is the identity
//! composed with the expert transforms — the property a correct all2all
//! pair must have.
//!
//! A peer dying mid-exchange surfaces as a typed
//! [`CommError`](ff_reduce::CommError) — the same error surface as the
//! fault-tolerant allreduce — never a panic: the caller decides whether
//! to retry, reroute around the dead expert, or abort the step.

use ff_reduce::CommError;
use ff_util::channel::{unbounded, Receiver, Sender};

/// A routed token: its home rank and index there, plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Routed<T> {
    /// Rank that owns the token.
    pub home: usize,
    /// Index within the home rank's batch.
    pub index: usize,
    /// The token vector.
    pub data: T,
}

/// Generic all2all: `sends[src][dst]` is delivered so the result at
/// `out[dst][src]` equals it — every rank exchanges with every rank
/// concurrently (one thread per rank). A dead peer yields
/// [`CommError::Disconnected`] on every survivor.
pub fn all2all<T: Send + Clone>(sends: Vec<Vec<Vec<T>>>) -> Result<Vec<Vec<Vec<T>>>, CommError> {
    all2all_with_dead(sends, &[])
}

/// [`all2all`] with fault injection: ranks listed in `dead` drop their
/// endpoints without sending or receiving, exactly like a process that
/// died before the exchange. Survivors observe the missing traffic as a
/// typed [`CommError::Disconnected`] naming the dead peer.
pub fn all2all_with_dead<T: Send + Clone>(
    sends: Vec<Vec<Vec<T>>>,
    dead: &[usize],
) -> Result<Vec<Vec<Vec<T>>>, CommError> {
    let n = sends.len();
    for row in &sends {
        assert_eq!(row.len(), n, "all2all needs an n×n send matrix");
    }
    type Endpoint<T> = (usize, Vec<T>);
    type Channels<T> = (Vec<Sender<Endpoint<T>>>, Vec<Receiver<Endpoint<T>>>);
    let (txs, rxs): Channels<T> = (0..n).map(|_| unbounded()).unzip();
    let results: Vec<Result<Vec<Vec<T>>, CommError>> = std::thread::scope(|s| {
        let handles: Vec<_> = sends
            .into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(me, (row, rx))| {
                let txs = txs.clone();
                let is_dead = dead.contains(&me);
                s.spawn(move || -> Result<Vec<Vec<T>>, CommError> {
                    if is_dead {
                        // The dead rank's endpoints close unused; its own
                        // "result" is its death.
                        drop(txs);
                        drop(rx);
                        return Err(CommError::Disconnected { peer: me });
                    }
                    for (dst, payload) in row.into_iter().enumerate() {
                        if txs[dst].send((me, payload)).is_err() {
                            // The destination hung up; keep sending to
                            // the survivors — they still need our data.
                            continue;
                        }
                    }
                    drop(txs); // close our senders so receivers can drain
                    let mut inbox: Vec<Option<Vec<T>>> = (0..n).map(|_| None).collect();
                    for _ in 0..n {
                        match rx.recv() {
                            Ok((src, payload)) => {
                                assert!(
                                    inbox[src].replace(payload).is_none(),
                                    "duplicate from {src}"
                                );
                            }
                            Err(_) => {
                                // Channel drained with messages missing:
                                // name the first silent peer.
                                let peer = inbox
                                    .iter()
                                    .position(|p| p.is_none())
                                    .expect("a missing message implies a missing peer");
                                return Err(CommError::Disconnected { peer });
                            }
                        }
                    }
                    Ok(inbox
                        .into_iter()
                        .map(|p| p.expect("all received"))
                        .collect::<Vec<_>>())
                })
            })
            .collect();
        // Every thread owns its clone now; dropping the originals lets
        // receivers observe closure when a peer never sends.
        drop(txs);
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// One MoE layer step over `ep` expert-parallel ranks:
/// `tokens[rank]` are the rank's token vectors, `gate` maps a token to its
/// expert rank, `expert(rank, x)` is the expert computation. Returns the
/// combined outputs in each token's original position, or the
/// [`CommError`] a dying peer inflicted on either all2all.
pub fn moe_layer_step<T, G, F>(
    tokens: Vec<Vec<T>>,
    gate: G,
    expert: F,
) -> Result<Vec<Vec<T>>, CommError>
where
    T: Send + Clone,
    G: Fn(usize, usize, &T) -> usize, // (home rank, index, token) -> expert rank
    F: Fn(usize, &T) -> T + Sync,
{
    let n = tokens.len();
    // Dispatch: bucket each token to its expert's rank.
    let mut sends: Vec<Vec<Vec<Routed<T>>>> = (0..n)
        .map(|_| (0..n).map(|_| Vec::new()).collect())
        .collect();
    for (home, batch) in tokens.iter().enumerate() {
        for (index, tok) in batch.iter().enumerate() {
            let dst = gate(home, index, tok);
            assert!(dst < n, "gate routed to unknown expert rank {dst}");
            sends[home][dst].push(Routed {
                home,
                index,
                data: tok.clone(),
            });
        }
    }
    let received = all2all(sends)?;
    // Expert computation on each rank (parallel via the same scope).
    let processed: Vec<Vec<Vec<Routed<T>>>> = std::thread::scope(|s| {
        let handles: Vec<_> = received
            .into_iter()
            .enumerate()
            .map(|(rank, from_all)| {
                let expert = &expert;
                s.spawn(move || {
                    from_all
                        .into_iter()
                        .map(|batch| {
                            batch
                                .into_iter()
                                .map(|r| Routed {
                                    data: expert(rank, &r.data),
                                    ..r
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("expert panicked"))
            .collect()
    });
    // Combine: send results back to the home ranks...
    let returned = all2all(processed)?;
    // ...and scatter them into original positions.
    let mut out: Vec<Vec<Option<T>>> = tokens
        .iter()
        .map(|b| b.iter().map(|_| None).collect())
        .collect();
    for per_rank in returned {
        for batch in per_rank {
            for r in batch {
                assert!(
                    out[r.home][r.index].replace(r.data).is_none(),
                    "token delivered twice"
                );
            }
        }
    }
    Ok(out
        .into_iter()
        .map(|b| {
            b.into_iter()
                .map(|t| t.expect("every token returned"))
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)] // (src, dst) indices are the point
    fn all2all_is_the_transpose() {
        let n = 4;
        let sends: Vec<Vec<Vec<(usize, usize)>>> = (0..n)
            .map(|src| (0..n).map(|dst| vec![(src, dst)]).collect())
            .collect();
        let out = all2all(sends).unwrap();
        for dst in 0..n {
            for src in 0..n {
                assert_eq!(out[dst][src], vec![(src, dst)]);
            }
        }
    }

    #[test]
    fn all2all_handles_empty_and_uneven_payloads() {
        let sends = vec![vec![vec![1, 2, 3], vec![]], vec![vec![9], vec![7, 7]]];
        let out = all2all(sends).unwrap();
        assert_eq!(out[0][0], vec![1, 2, 3]);
        assert_eq!(out[0][1], vec![9]);
        assert_eq!(out[1][0], Vec::<i32>::new());
        assert_eq!(out[1][1], vec![7, 7]);
    }

    #[test]
    fn dead_peer_is_a_typed_error_not_a_panic() {
        let n = 4;
        let sends: Vec<Vec<Vec<u32>>> = (0..n)
            .map(|src| (0..n).map(|dst| vec![(src * n + dst) as u32]).collect())
            .collect();
        let err = all2all_with_dead(sends, &[2]).unwrap_err();
        assert_eq!(err, CommError::Disconnected { peer: 2 });
    }

    #[test]
    fn moe_step_propagates_a_mid_dispatch_death() {
        // Route everything through the doomed exchange: moe_layer_step
        // itself only sees the error surface, so drive the faulty
        // all2all the way it would — dispatch matrix, one dead rank.
        let n = 3;
        let sends: Vec<Vec<Vec<Routed<i64>>>> = (0..n)
            .map(|home| {
                (0..n)
                    .map(|dst| {
                        vec![Routed {
                            home,
                            index: dst,
                            data: 7,
                        }]
                    })
                    .collect()
            })
            .collect();
        match all2all_with_dead(sends, &[0]) {
            Err(CommError::Disconnected { peer: 0 }) => {}
            other => panic!("expected rank-0 disconnect, got {other:?}"),
        }
    }

    #[test]
    fn moe_step_routes_and_returns_in_order() {
        // 3 ranks × 5 tokens; token value v goes to expert v % 3, which
        // multiplies by 10 and adds its rank.
        let tokens: Vec<Vec<i64>> = (0..3)
            .map(|r| (0..5).map(|i| (r * 5 + i) as i64).collect())
            .collect();
        let out = moe_layer_step(
            tokens.clone(),
            |_, _, &tok| (tok % 3) as usize,
            |rank, &x| x * 10 + rank as i64,
        )
        .unwrap();
        for (r, batch) in out.iter().enumerate() {
            for (i, &v) in batch.iter().enumerate() {
                let orig = tokens[r][i];
                let expert = orig % 3;
                assert_eq!(v, orig * 10 + expert, "token ({r},{i})");
            }
        }
    }

    #[test]
    fn skewed_routing_all_tokens_to_one_expert() {
        // The worst-case gate (every token to expert 0) still round-trips
        // — the load-imbalance case MoE systems must survive.
        let tokens: Vec<Vec<i64>> = (0..4).map(|r| vec![r as i64; 8]).collect();
        let out = moe_layer_step(tokens.clone(), |_, _, _| 0, |_, &x| -x).unwrap();
        for (r, batch) in out.iter().enumerate() {
            assert_eq!(batch, &vec![-(r as i64); 8]);
        }
    }

    #[test]
    fn single_rank_degenerates_to_local_compute() {
        let out = moe_layer_step(vec![vec![1.0f64, 2.0]], |_, _, _| 0, |_, &x| x + 0.5).unwrap();
        assert_eq!(out, vec![vec![1.5, 2.5]]);
    }

    #[test]
    fn top_k_style_duplicated_tokens() {
        // Top-2 routing modeled as two layer passes whose results the
        // caller combines (weighted sum) — verify two passes with
        // different gates agree with direct evaluation.
        let tokens: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let pass1 = moe_layer_step(tokens.clone(), |_, _, _| 0, |_, &x| x * 2.0).unwrap();
        let pass2 = moe_layer_step(tokens.clone(), |_, _, _| 1, |_, &x| x + 100.0).unwrap();
        for r in 0..2 {
            for i in 0..2 {
                let combined = 0.5 * pass1[r][i] + 0.5 * pass2[r][i];
                let want = 0.5 * (tokens[r][i] * 2.0) + 0.5 * (tokens[r][i] + 100.0);
                assert_eq!(combined, want);
            }
        }
    }
}
