//! Executable expert parallelism: the all2all dispatch/combine of MoE
//! training (§II-B1: "the gate model selects tokens for allocation during
//! input, with corresponding tokens sent to experts model via all2all
//! communication"), run for real over the pluggable
//! [`Fabric`](ff_reduce::Fabric) transport — in-memory channels by
//! default, real localhost TCP with
//! [`TcpProvider`](ff_reduce::TcpProvider).
//!
//! Each rank hosts one expert and a shard of the tokens, and drives a
//! [`Communicator`] of its own. A step is: gate (here: any deterministic
//! assignment) → **all2all dispatch** (each token's vector travels to its
//! expert's rank) → expert computation → **all2all combine** (results
//! return to the token's home rank, in order). The tests verify the
//! end-to-end permutation is the identity composed with the expert
//! transforms — the property a correct all2all pair must have.
//!
//! A peer dying mid-exchange surfaces as a typed
//! [`CommError`](ff_reduce::CommError) — the same error surface as the
//! fault-tolerant allreduce — never a panic: the caller decides whether
//! to retry, reroute around the dead expert, or abort the step.

use ff_reduce::fabric::FabricProvider;
use ff_reduce::{CommError, Communicator, InMemProvider, Wire, WireCursor};

/// A routed token: its home rank and index there, plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Routed<T> {
    /// Rank that owns the token.
    pub home: usize,
    /// Index within the home rank's batch.
    pub index: usize,
    /// The token vector.
    pub data: T,
}

impl<T: Wire> Wire for Routed<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.home.wire_write(out);
        self.index.wire_write(out);
        self.data.wire_write(out);
    }
    fn wire_read(cur: &mut WireCursor<'_>) -> Option<Self> {
        Some(Routed {
            home: usize::wire_read(cur)?,
            index: usize::wire_read(cur)?,
            data: T::wire_read(cur)?,
        })
    }
}

/// Generic all2all over `provider`'s fabric: `sends[src][dst]` is
/// delivered so the result at `out[dst][src]` equals it — every rank
/// exchanges with every rank concurrently (one thread per rank). A dead
/// peer yields [`CommError::Disconnected`] on every survivor.
pub fn run_all2all<T, P>(
    sends: Vec<Vec<Vec<T>>>,
    provider: &P,
) -> Result<Vec<Vec<Vec<T>>>, CommError>
where
    T: Wire + Send,
    P: FabricProvider,
{
    run_all2all_with_dead(sends, &[], provider)
}

/// [`run_all2all`] with fault injection: ranks listed in `dead` tear
/// their endpoints down without sending or receiving, exactly like a
/// process that died before the exchange. Survivors observe the missing
/// traffic as a typed [`CommError::Disconnected`] naming the dead peer.
pub fn run_all2all_with_dead<T, P>(
    sends: Vec<Vec<Vec<T>>>,
    dead: &[usize],
    provider: &P,
) -> Result<Vec<Vec<Vec<T>>>, CommError>
where
    T: Wire + Send,
    P: FabricProvider,
{
    let n = sends.len();
    for row in &sends {
        assert_eq!(row.len(), n, "all2all needs an n×n send matrix");
    }
    let fabrics = provider.world(n).expect("fabric world construction");
    let results: Vec<Result<Vec<Vec<T>>, CommError>> = std::thread::scope(|s| {
        let handles: Vec<_> = sends
            .into_iter()
            .zip(fabrics)
            .enumerate()
            .map(|(me, (row, fab))| {
                let is_dead = dead.contains(&me);
                s.spawn(move || -> Result<Vec<Vec<T>>, CommError> {
                    let comm = Communicator::new(fab);
                    if is_dead {
                        // A crashed process tears its endpoint down
                        // loudly (hangup frame / TCP FIN); its own
                        // "result" is its death.
                        drop(comm);
                        return Err(CommError::Disconnected { peer: me });
                    }
                    let mut comm = comm;
                    comm.all2all(row, 0)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// One MoE layer step over `ep` expert-parallel ranks, on `provider`'s
/// fabric: `tokens[rank]` are the rank's token vectors, `gate` maps a
/// token to its expert rank, `expert(rank, x)` is the expert computation.
/// Each rank runs dispatch-all2all → expert → combine-all2all on one
/// [`Communicator`] — the two exchanges share the same world, as a real
/// networked MoE layer would. Returns the combined outputs in each
/// token's original position, or the [`CommError`] a dying peer inflicted
/// on either all2all.
pub fn run_moe_layer_step<T, G, F, P>(
    tokens: Vec<Vec<T>>,
    gate: G,
    expert: F,
    provider: &P,
) -> Result<Vec<Vec<T>>, CommError>
where
    T: Wire + Send + Clone,
    G: Fn(usize, usize, &T) -> usize, // (home rank, index, token) -> expert rank
    F: Fn(usize, &T) -> T + Sync,
    P: FabricProvider,
{
    let n = tokens.len();
    // Dispatch routing: bucket each token to its expert's rank.
    let mut sends: Vec<Vec<Vec<Routed<T>>>> = (0..n)
        .map(|_| (0..n).map(|_| Vec::new()).collect())
        .collect();
    for (home, batch) in tokens.iter().enumerate() {
        for (index, tok) in batch.iter().enumerate() {
            let dst = gate(home, index, tok);
            assert!(dst < n, "gate routed to unknown expert rank {dst}");
            sends[home][dst].push(Routed {
                home,
                index,
                data: tok.clone(),
            });
        }
    }
    let fabrics = provider.world(n).expect("fabric world construction");
    let results: Vec<Result<Vec<Vec<Routed<T>>>, CommError>> = std::thread::scope(|s| {
        let handles: Vec<_> = sends
            .into_iter()
            .zip(fabrics)
            .enumerate()
            .map(|(rank, (row, fab))| {
                let expert = &expert;
                s.spawn(move || -> Result<Vec<Vec<Routed<T>>>, CommError> {
                    let mut comm = Communicator::new(fab);
                    // Dispatch: tokens travel to their experts (seq 0).
                    let received = comm.all2all(row, 0)?;
                    // Expert computation on this rank.
                    let processed: Vec<Vec<Routed<T>>> = received
                        .into_iter()
                        .map(|batch| {
                            batch
                                .into_iter()
                                .map(|r| Routed {
                                    data: expert(rank, &r.data),
                                    ..r
                                })
                                .collect()
                        })
                        .collect();
                    // Combine: results return to their home ranks (seq 1).
                    comm.all2all(processed, 1)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });
    let returned: Vec<Vec<Vec<Routed<T>>>> = results.into_iter().collect::<Result<_, _>>()?;
    // Scatter results into original positions.
    let mut out: Vec<Vec<Option<T>>> = tokens
        .iter()
        .map(|b| b.iter().map(|_| None).collect())
        .collect();
    for per_rank in returned {
        for batch in per_rank {
            for r in batch {
                assert!(
                    out[r.home][r.index].replace(r.data).is_none(),
                    "token delivered twice"
                );
            }
        }
    }
    Ok(out
        .into_iter()
        .map(|b| {
            b.into_iter()
                .map(|t| t.expect("every token returned"))
                .collect()
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Deprecated free-function shims (one release of grace)
// ---------------------------------------------------------------------------

/// All2all over the default in-memory fabric.
#[deprecated(note = "use `run_all2all(.., &InMemProvider)` or `Communicator::all2all`")]
pub fn all2all<T: Wire + Send>(sends: Vec<Vec<Vec<T>>>) -> Result<Vec<Vec<Vec<T>>>, CommError> {
    run_all2all(sends, &InMemProvider)
}

/// Fault-injected all2all over the default in-memory fabric.
#[deprecated(note = "use `run_all2all_with_dead(.., &InMemProvider)`")]
pub fn all2all_with_dead<T: Wire + Send>(
    sends: Vec<Vec<Vec<T>>>,
    dead: &[usize],
) -> Result<Vec<Vec<Vec<T>>>, CommError> {
    run_all2all_with_dead(sends, dead, &InMemProvider)
}

/// MoE layer step over the default in-memory fabric.
#[deprecated(note = "use `run_moe_layer_step(.., &InMemProvider)`")]
pub fn moe_layer_step<T, G, F>(
    tokens: Vec<Vec<T>>,
    gate: G,
    expert: F,
) -> Result<Vec<Vec<T>>, CommError>
where
    T: Wire + Send + Clone,
    G: Fn(usize, usize, &T) -> usize,
    F: Fn(usize, &T) -> T + Sync,
{
    run_moe_layer_step(tokens, gate, expert, &InMemProvider)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_reduce::TcpProvider;

    #[test]
    #[allow(clippy::needless_range_loop)] // (src, dst) indices are the point
    fn all2all_is_the_transpose() {
        let n = 4;
        let sends: Vec<Vec<Vec<(usize, usize)>>> = (0..n)
            .map(|src| (0..n).map(|dst| vec![(src, dst)]).collect())
            .collect();
        let out = run_all2all(sends, &InMemProvider).unwrap();
        for dst in 0..n {
            for src in 0..n {
                assert_eq!(out[dst][src], vec![(src, dst)]);
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all2all_over_tcp_is_the_transpose() {
        let n = 3;
        let sends: Vec<Vec<Vec<(usize, usize)>>> = (0..n)
            .map(|src| (0..n).map(|dst| vec![(src, dst)]).collect())
            .collect();
        let out = run_all2all(sends, &TcpProvider).unwrap();
        for dst in 0..n {
            for src in 0..n {
                assert_eq!(out[dst][src], vec![(src, dst)]);
            }
        }
    }

    #[test]
    fn all2all_handles_empty_and_uneven_payloads() {
        let sends = vec![vec![vec![1, 2, 3], vec![]], vec![vec![9], vec![7, 7]]];
        let out = run_all2all(sends, &InMemProvider).unwrap();
        assert_eq!(out[0][0], vec![1, 2, 3]);
        assert_eq!(out[0][1], vec![9]);
        assert_eq!(out[1][0], Vec::<i32>::new());
        assert_eq!(out[1][1], vec![7, 7]);
    }

    #[test]
    fn dead_peer_is_a_typed_error_not_a_panic() {
        let n = 4;
        let sends: Vec<Vec<Vec<u32>>> = (0..n)
            .map(|src| (0..n).map(|dst| vec![(src * n + dst) as u32]).collect())
            .collect();
        let err = run_all2all_with_dead(sends, &[2], &InMemProvider).unwrap_err();
        assert_eq!(err, CommError::Disconnected { peer: 2 });
    }

    #[test]
    fn dead_peer_over_tcp_is_the_same_typed_error() {
        let n = 4;
        let sends: Vec<Vec<Vec<u32>>> = (0..n)
            .map(|src| (0..n).map(|dst| vec![(src * n + dst) as u32]).collect())
            .collect();
        let err = run_all2all_with_dead(sends, &[2], &TcpProvider).unwrap_err();
        assert_eq!(err, CommError::Disconnected { peer: 2 });
    }

    #[test]
    fn moe_step_propagates_a_mid_dispatch_death() {
        // Route everything through the doomed exchange: the MoE step
        // itself only sees the error surface, so drive the faulty
        // all2all the way it would — dispatch matrix, one dead rank.
        let n = 3;
        let sends: Vec<Vec<Vec<Routed<i64>>>> = (0..n)
            .map(|home| {
                (0..n)
                    .map(|dst| {
                        vec![Routed {
                            home,
                            index: dst,
                            data: 7,
                        }]
                    })
                    .collect()
            })
            .collect();
        match run_all2all_with_dead(sends, &[0], &InMemProvider) {
            Err(CommError::Disconnected { peer: 0 }) => {}
            other => panic!("expected rank-0 disconnect, got {other:?}"),
        }
    }

    #[test]
    fn moe_step_routes_and_returns_in_order() {
        // 3 ranks × 5 tokens; token value v goes to expert v % 3, which
        // multiplies by 10 and adds its rank.
        let tokens: Vec<Vec<i64>> = (0..3)
            .map(|r| (0..5).map(|i| (r * 5 + i) as i64).collect())
            .collect();
        let out = run_moe_layer_step(
            tokens.clone(),
            |_, _, &tok| (tok % 3) as usize,
            |rank, &x| x * 10 + rank as i64,
            &InMemProvider,
        )
        .unwrap();
        for (r, batch) in out.iter().enumerate() {
            for (i, &v) in batch.iter().enumerate() {
                let orig = tokens[r][i];
                let expert = orig % 3;
                assert_eq!(v, orig * 10 + expert, "token ({r},{i})");
            }
        }
    }

    #[test]
    fn moe_step_over_tcp_matches_inmem() {
        let tokens: Vec<Vec<i64>> = (0..3)
            .map(|r| (0..4).map(|i| (r * 4 + i) as i64).collect())
            .collect();
        let gate = |_: usize, _: usize, tok: &i64| (*tok % 3) as usize;
        let expert = |rank: usize, x: &i64| x * 10 + rank as i64;
        let a = run_moe_layer_step(tokens.clone(), gate, expert, &InMemProvider).unwrap();
        let b = run_moe_layer_step(tokens, gate, expert, &TcpProvider).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_routing_all_tokens_to_one_expert() {
        // The worst-case gate (every token to expert 0) still round-trips
        // — the load-imbalance case MoE systems must survive.
        let tokens: Vec<Vec<i64>> = (0..4).map(|r| vec![r as i64; 8]).collect();
        let out =
            run_moe_layer_step(tokens.clone(), |_, _, _| 0, |_, &x| -x, &InMemProvider).unwrap();
        for (r, batch) in out.iter().enumerate() {
            assert_eq!(batch, &vec![-(r as i64); 8]);
        }
    }

    #[test]
    fn single_rank_degenerates_to_local_compute() {
        let out = run_moe_layer_step(
            vec![vec![1.0f64, 2.0]],
            |_, _, _| 0,
            |_, &x| x + 0.5,
            &InMemProvider,
        )
        .unwrap();
        assert_eq!(out, vec![vec![1.5, 2.5]]);
    }

    #[test]
    fn top_k_style_duplicated_tokens() {
        // Top-2 routing modeled as two layer passes whose results the
        // caller combines (weighted sum) — verify two passes with
        // different gates agree with direct evaluation.
        let tokens: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let pass1 =
            run_moe_layer_step(tokens.clone(), |_, _, _| 0, |_, &x| x * 2.0, &InMemProvider)
                .unwrap();
        let pass2 = run_moe_layer_step(
            tokens.clone(),
            |_, _, _| 1,
            |_, &x| x + 100.0,
            &InMemProvider,
        )
        .unwrap();
        for r in 0..2 {
            for i in 0..2 {
                let combined = 0.5 * pass1[r][i] + 0.5 * pass2[r][i];
                let want = 0.5 * (tokens[r][i] * 2.0) + 0.5 * (tokens[r][i] + 100.0);
                assert_eq!(combined, want);
            }
        }
    }

    #[test]
    fn routed_tokens_roundtrip_the_wire() {
        let r = Routed {
            home: 3,
            index: 41,
            data: vec![1.5f64, -2.5],
        };
        let mut b = Vec::new();
        r.wire_write(&mut b);
        let mut cur = WireCursor::new(&b);
        assert_eq!(Routed::<Vec<f64>>::wire_read(&mut cur), Some(r));
        assert!(cur.is_done());
    }
}
