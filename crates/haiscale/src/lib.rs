//! # ff-haiscale — training parallelism on the PCIe architecture (§V)
//!
//! HaiScale is the paper's training framework: Megatron/DeepSpeed-style
//! parallelism re-engineered around one NIC per 8 PCIe GPUs and HFReduce
//! as the data-parallel backend. This crate models each strategy's step
//! time on the `ff-hw`/`ff-reduce` cluster and reproduces the evaluation:
//!
//! * [`ddp`] — HaiScale DDP vs PyTorch DDP on VGG16 (Figure 8a): HFReduce
//!   overlaps the whole backward pass and steals no SMs, roughly halving
//!   step time.
//! * [`fsdp`] — HaiScale FSDP vs PyTorch FSDP on GPT2-medium (Figure 8b):
//!   ZeRO-3 allgather/reduce-scatter scheduling with overlap.
//! * [`pipeline`] — 1F1B pipeline parallelism with the DP-rank staggering
//!   trick for the shared NIC; LLaMa-13B strong scaling (Figure 9a).
//! * [`moe`] — expert parallelism with all2all dispatch; DeepSeekMoE-16B
//!   strong scaling (Figure 9b).
//! * [`tensor`] — tensor parallelism enabled by the NVLink bridge (§V-B1).
//! * [`models`] — the model zoo (VGG16, GPT2-medium, LLaMa-13B,
//!   DeepSeekMoE-16B) with parameter/FLOP accounting.
//!
//! The models are analytic (component terms for compute, exposed
//! communication, pipeline bubble and straggler jitter) with constants
//! calibrated once against the paper's absolute step times; all scaling
//! *shapes* then follow from the hardware model, not from per-point fits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ddp;
pub mod expert_exec;
pub mod fsdp;
pub mod memory;
pub mod models;
pub mod moe;
pub mod pipeline;
pub mod tensor;

pub use ddp::{ddp_step, DdpBackend};
#[allow(deprecated)]
pub use expert_exec::{all2all, all2all_with_dead, moe_layer_step};
pub use expert_exec::{run_all2all, run_all2all_with_dead, run_moe_layer_step, Routed};
pub use fsdp::{fsdp_step, FsdpImpl};
pub use memory::{memory_per_gpu, MemoryEstimate, ShardingStrategy};
pub use models::TrainModel;
pub use moe::{moe_step, MoeConfig};
pub use pipeline::{pipeline_step, PipelineConfig};

/// A step-time decomposition, seconds.
#[derive(Debug, Clone, Default)]
pub struct StepBreakdown {
    /// Pure compute (forward + backward + optimizer).
    pub compute_s: f64,
    /// Communication *not* hidden behind compute.
    pub exposed_comm_s: f64,
    /// Pipeline bubble cost.
    pub bubble_s: f64,
    /// Straggler / jitter allowance.
    pub jitter_s: f64,
}

impl StepBreakdown {
    /// Total step time.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.exposed_comm_s + self.bubble_s + self.jitter_s
    }
}

/// Parallel efficiency of scaling from `(gpus_a, time_a)` to
/// `(gpus_b, time_b)` at fixed global work (strong scaling):
/// `(t_a × n_a) / (t_b × n_b)`.
pub fn strong_scaling_efficiency(gpus_a: usize, time_a: f64, gpus_b: usize, time_b: f64) -> f64 {
    (time_a * gpus_a as f64) / (time_b * gpus_b as f64)
}

/// Weak-scaling efficiency: per-GPU work fixed, so ideal step time is
/// constant: `t_a / t_b` for `n_b > n_a`.
pub fn weak_scaling_efficiency(time_small: f64, time_large: f64) -> f64 {
    time_small / time_large
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_formulas() {
        // Perfect strong scaling: 8× GPUs, 1/8 time.
        assert!((strong_scaling_efficiency(64, 8.0, 512, 1.0) - 1.0).abs() < 1e-12);
        // Paper Figure 9a numbers: 91%... computed over the quoted points.
        let eff = strong_scaling_efficiency(64, 64.118, 512, 9.717);
        assert!((0.80..=0.95).contains(&eff), "{eff}");
        assert!((weak_scaling_efficiency(1.0, 1.25) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn breakdown_totals() {
        let b = StepBreakdown {
            compute_s: 1.0,
            exposed_comm_s: 0.5,
            bubble_s: 0.25,
            jitter_s: 0.25,
        };
        assert_eq!(b.total_s(), 2.0);
    }
}
