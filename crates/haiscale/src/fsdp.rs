//! Fully-sharded data parallelism (ZeRO-3) step-time model: HaiScale FSDP
//! versus PyTorch FSDP — Figure 8b.
//!
//! Per step, ZeRO-3 moves ≈3× the parameter bytes per GPU: an allgather of
//! parameters before forward, another before backward, and a
//! reduce-scatter of gradients after it (§II-B1). On a node with one NIC
//! for 8 GPUs the decisive difference is *how much of that traffic
//! crosses the NIC*:
//!
//! * **HaiScale FSDP** stages shards in host memory, so each remote shard
//!   enters the node **once** and fans out to the 8 GPUs over PCIe; it
//!   also overlaps allgather/reduce-scatter with compute and splits the
//!   optimizer step into backward (§V-B3).
//! * **PyTorch FSDP** runs NCCL allgathers per GPU: every GPU pulls the
//!   full parameters through the shared NIC independently — 8× the wire
//!   bytes — with a smaller overlap window.

use crate::models::TrainModel;
use crate::StepBreakdown;
use ff_hw::spec::{GPUS_PER_NODE, NIC_200G_BPS};
use ff_hw::GpuForm;

/// Which ZeRO-3 implementation runs the step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsdpImpl {
    /// HaiScale FSDP.
    HaiScale,
    /// PyTorch FSDP.
    Torch,
}

impl FsdpImpl {
    /// Copies of the parameter stream that cross each node's NIC.
    fn nic_amplification(self) -> f64 {
        match self {
            FsdpImpl::HaiScale => 1.0,
            FsdpImpl::Torch => GPUS_PER_NODE as f64,
        }
    }

    /// Fraction of compute usable to hide the collective traffic.
    fn overlap_fraction(self) -> f64 {
        match self {
            FsdpImpl::HaiScale => 0.90,
            FsdpImpl::Torch => 0.45,
        }
    }

    /// Compute inflation: memory fragmentation + cache effects PyTorch's
    /// flat-parameter rebuilds incur (§V-B3's "optimizing memory
    /// management to reduce fragmentation").
    fn compute_inflation(self) -> f64 {
        match self {
            FsdpImpl::HaiScale => 1.0,
            FsdpImpl::Torch => 1.08,
        }
    }
}

/// One FSDP training step, weak scaling with `tokens_per_gpu` fixed.
pub fn fsdp_step(
    model: &TrainModel,
    gpus: usize,
    tokens_per_gpu: usize,
    imp: FsdpImpl,
) -> StepBreakdown {
    assert!(gpus >= 1);
    let sustained = model.sustained_flops(GpuForm::PcieA100.fp16_flops());
    let compute =
        model.step_flops_per_token() * tokens_per_gpu as f64 / sustained * imp.compute_inflation();
    let nodes = gpus.div_ceil(GPUS_PER_NODE).max(1);
    let comm = if nodes > 1 {
        // Three parameter-sized collectives; only the remote share crosses
        // the NIC, amplified per implementation.
        let wire = 3.0 * model.grad_bytes() * (nodes as f64 - 1.0) / nodes as f64;
        wire * imp.nic_amplification() / NIC_200G_BPS
    } else {
        // Intra-node sharding: PCIe-speed collectives, effectively hidden.
        0.0
    };
    let exposed = (comm - compute * imp.overlap_fraction()).max(0.0);
    StepBreakdown {
        compute_s: compute,
        exposed_comm_s: exposed,
        bubble_s: 0.0,
        jitter_s: 1.5e-3 * (gpus as f64).log2().max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weak_scaling_efficiency;

    /// GPT2-medium at seq 1024, 16 sequences per GPU.
    const TOKENS: usize = 16 * 1024;

    #[test]
    fn haiscale_fsdp_nearly_halves_gpt2_step() {
        // Figure 8b: "compared to PyTorch's FSDP, HaiScale's FSDP reduces
        // training time by nearly half".
        let m = TrainModel::gpt2_medium();
        for gpus in [16usize, 32, 64, 128] {
            let hai = fsdp_step(&m, gpus, TOKENS, FsdpImpl::HaiScale).total_s();
            let torch = fsdp_step(&m, gpus, TOKENS, FsdpImpl::Torch).total_s();
            let ratio = torch / hai;
            // At 16 GPUs only half the shards are remote, so the gap is
            // smaller; it widens toward 2× and beyond with scale.
            assert!(
                (1.4..3.5).contains(&ratio),
                "{gpus} GPUs: torch {torch:.3} / hai {hai:.3} = {ratio:.2}"
            );
        }
    }

    #[test]
    fn haiscale_fsdp_scales_at_95pct() {
        // "we achieve 95% parallel scalability when scaling from 16 to
        // 128 GPUs".
        let m = TrainModel::gpt2_medium();
        let t16 = fsdp_step(&m, 16, TOKENS, FsdpImpl::HaiScale).total_s();
        let t128 = fsdp_step(&m, 128, TOKENS, FsdpImpl::HaiScale).total_s();
        let eff = weak_scaling_efficiency(t16, t128);
        assert!((0.90..=1.0).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn torch_fsdp_is_wire_bound() {
        let m = TrainModel::gpt2_medium();
        let s = fsdp_step(&m, 128, TOKENS, FsdpImpl::Torch);
        assert!(s.exposed_comm_s > 0.0, "expected exposed communication");
    }

    #[test]
    fn single_node_fsdp_has_no_nic_traffic() {
        let m = TrainModel::gpt2_medium();
        let s = fsdp_step(&m, 8, TOKENS, FsdpImpl::Torch);
        assert_eq!(s.exposed_comm_s, 0.0);
    }

    #[test]
    fn nic_amplification_is_the_dominant_difference() {
        // With amplification equalized, the two implementations would be
        // within ~25% — the 8× wire volume is the real story.
        let m = TrainModel::gpt2_medium();
        let hai = fsdp_step(&m, 64, TOKENS, FsdpImpl::HaiScale);
        let torch = fsdp_step(&m, 64, TOKENS, FsdpImpl::Torch);
        assert!(torch.exposed_comm_s > hai.exposed_comm_s * 4.0);
    }
}
