//! GPU memory accounting per parallelism strategy — the reason ZeRO/FSDP
//! and pipeline parallelism exist (§II-B1, Figure 3).
//!
//! Mixed-precision training keeps, per parameter: fp16/bf16 weights (2 B)
//! and gradients (2 B) plus fp32 master weights and two Adam moments
//! (12 B) — 16 bytes/parameter before activations. The strategies differ
//! in who holds which share:
//!
//! * **DDP** — everything replicated (the Figure 3 story: fine below ~1B
//!   parameters, hopeless for LLMs).
//! * **ZeRO-1/2/3 (FSDP = stage 3)** — optimizer state / +gradients /
//!   +parameters sharded over the DP group; each GPU retains `1/n`.
//! * **PP / TP** — parameters divided across stages / tensor shards.
//! * **Activation recomputation** (§II-B1) trades ~⅓ more compute for an
//!   ~8× smaller activation footprint.

use crate::models::TrainModel;

/// Bytes per parameter of fp32 master weights + Adam moments.
pub const OPTIMIZER_BYTES_PER_PARAM: f64 = 12.0;
/// A100-40GB usable HBM (after CUDA context etc.).
pub const A100_USABLE_BYTES: f64 = 38.0 * 1024.0 * 1024.0 * 1024.0;
/// Activation bytes per token per hidden unit per layer, no recompute
/// (attention + MLP intermediates, fp16).
pub const ACT_FACTOR_FULL: f64 = 16.0;
/// Same with full activation recomputation: only layer boundaries kept.
pub const ACT_FACTOR_RECOMPUTE: f64 = 2.0;

/// How the model's state is partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardingStrategy {
    /// Plain data parallelism: full replica per GPU.
    Ddp,
    /// ZeRO stage 1: optimizer state sharded over `dp`.
    Zero1,
    /// ZeRO stage 2: optimizer + gradients sharded.
    Zero2,
    /// ZeRO stage 3 / FSDP: optimizer + gradients + parameters sharded.
    Zero3,
}

/// Per-GPU memory estimate, bytes.
#[derive(Debug, Clone, Copy)]
pub struct MemoryEstimate {
    /// Parameter storage (fp16/bf16 working copy).
    pub params: f64,
    /// Gradient storage.
    pub grads: f64,
    /// Optimizer state (fp32 master + moments).
    pub optimizer: f64,
    /// Activations for one microbatch set in flight.
    pub activations: f64,
}

impl MemoryEstimate {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.params + self.grads + self.optimizer + self.activations
    }

    /// Does this fit on an A100-40GB?
    pub fn fits_a100(&self) -> bool {
        self.total() <= A100_USABLE_BYTES
    }
}

/// Estimate per-GPU memory for `model` under the given partitioning.
///
/// * `dp` — data-parallel group size (the ZeRO sharding denominator).
/// * `pp` / `tp` — pipeline stages and tensor shards (divide parameters).
/// * `tokens_in_flight` — microbatch tokens resident per GPU.
/// * `recompute` — activation recomputation on/off.
pub fn memory_per_gpu(
    model: &TrainModel,
    strategy: ShardingStrategy,
    dp: usize,
    pp: usize,
    tp: usize,
    tokens_in_flight: usize,
    recompute: bool,
) -> MemoryEstimate {
    assert!(dp >= 1 && pp >= 1 && tp >= 1);
    let dtype = model.dtype_bytes as f64;
    let local_params = model.params as f64 / (pp * tp) as f64;
    let n = dp as f64;
    let (p_div, g_div, o_div) = match strategy {
        ShardingStrategy::Ddp => (1.0, 1.0, 1.0),
        ShardingStrategy::Zero1 => (1.0, 1.0, n),
        ShardingStrategy::Zero2 => (1.0, n, n),
        ShardingStrategy::Zero3 => (n, n, n),
    };
    let act_factor = if recompute {
        ACT_FACTOR_RECOMPUTE
    } else {
        ACT_FACTOR_FULL
    };
    let layers_local = (model.layers as f64 / pp as f64).max(1.0);
    MemoryEstimate {
        params: local_params * dtype / p_div,
        grads: local_params * dtype / g_div,
        optimizer: local_params * OPTIMIZER_BYTES_PER_PARAM / o_div,
        activations: tokens_in_flight as f64 * model.hidden as f64 / tp as f64
            * layers_local
            * act_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn small_models_fit_with_plain_ddp() {
        // Figure 3's point: ResNet/BERT-class models need no sharding.
        let m = TrainModel::vgg16();
        let est = memory_per_gpu(&m, ShardingStrategy::Ddp, 8, 1, 1, 0, false);
        assert!(est.fits_a100(), "{:.1} GiB", est.total() / GIB);
        let g = TrainModel::gpt2_medium();
        let est = memory_per_gpu(&g, ShardingStrategy::Ddp, 8, 1, 1, 8 * 1024, false);
        assert!(est.fits_a100(), "{:.1} GiB", est.total() / GIB);
    }

    #[test]
    fn llama13b_cannot_train_with_plain_ddp() {
        // 13B × 16 B/param ≈ 208 GB of state per GPU.
        let m = TrainModel::llama_13b();
        let est = memory_per_gpu(&m, ShardingStrategy::Ddp, 128, 1, 1, 2048, false);
        assert!(
            !est.fits_a100(),
            "{:.1} GiB should not fit",
            est.total() / GIB
        );
        assert!(est.total() > 200.0 * GIB);
    }

    #[test]
    fn paper_llama_config_fits_with_pp_and_zero1() {
        // Figure 9a's layout: pp=4, dp=128, ZeRO-1, recompute off, one
        // 2048-token microbatch in flight per stage.
        let m = TrainModel::llama_13b();
        let est = memory_per_gpu(&m, ShardingStrategy::Zero1, 128, 4, 1, 2048, false);
        assert!(est.fits_a100(), "{:.1} GiB", est.total() / GIB);
    }

    #[test]
    fn zero_stages_monotonically_reduce_memory() {
        let m = TrainModel::llama_13b();
        let stages = [
            ShardingStrategy::Ddp,
            ShardingStrategy::Zero1,
            ShardingStrategy::Zero2,
            ShardingStrategy::Zero3,
        ];
        let mut prev = f64::INFINITY;
        for s in stages {
            let t = memory_per_gpu(&m, s, 64, 1, 1, 1024, false).total();
            assert!(t < prev, "{s:?}: {t}");
            prev = t;
        }
    }

    #[test]
    fn fsdp_each_gpu_keeps_one_nth() {
        // §II-B1: "each GPU retaining only 1/n of the total".
        let m = TrainModel::gpt2_medium();
        let one = memory_per_gpu(&m, ShardingStrategy::Zero3, 1, 1, 1, 0, false);
        let sharded = memory_per_gpu(&m, ShardingStrategy::Zero3, 16, 1, 1, 0, false);
        assert!((one.total() / sharded.total() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn recomputation_slashes_activation_memory() {
        let m = TrainModel::llama_13b();
        let full = memory_per_gpu(&m, ShardingStrategy::Zero1, 32, 4, 1, 8192, false);
        let rec = memory_per_gpu(&m, ShardingStrategy::Zero1, 32, 4, 1, 8192, true);
        assert!((full.activations / rec.activations - 8.0).abs() < 1e-9);
        assert_eq!(full.params, rec.params);
    }

    #[test]
    fn tensor_parallel_divides_params_and_activations() {
        let m = TrainModel::llama_13b();
        let tp1 = memory_per_gpu(&m, ShardingStrategy::Ddp, 1, 1, 1, 4096, false);
        let tp2 = memory_per_gpu(&m, ShardingStrategy::Ddp, 1, 1, 2, 4096, false);
        assert!((tp1.params / tp2.params - 2.0).abs() < 1e-9);
        assert!((tp1.activations / tp2.activations - 2.0).abs() < 1e-9);
    }
}
