//! Mixture-of-Experts training with expert parallelism — Figure 9b.
//!
//! Adds to the pipeline model the all2all dispatch/combine traffic of MoE
//! layers (§II-B1, §V-B): each token's hidden vector travels to its top-k
//! experts and back, twice per layer pass (forward and backward), with the
//! cross-node share going through the per-node NIC. A higher DP sync
//! constant reflects the extra synchronization of expert routing.

use crate::models::TrainModel;
use crate::pipeline::{PipelineConfig, Schedule};
use crate::StepBreakdown;
use ff_hw::spec::{GPUS_PER_NODE, NIC_200G_BPS};
use ff_hw::GpuForm;

/// Expert-parallel configuration on top of a pipeline config.
#[derive(Debug, Clone)]
pub struct MoeConfig {
    /// The underlying pipeline setup.
    pub pipeline: PipelineConfig,
    /// Experts each token is routed to (top-k).
    pub top_k: usize,
    /// GPUs per expert-parallel group (all2all scope).
    pub ep_group: usize,
    /// Fraction of MoE layers among all layers.
    pub moe_layer_frac: f64,
    /// Fraction of all2all traffic hidden behind expert compute.
    pub a2a_overlap: f64,
}

impl MoeConfig {
    /// Figure 9b's configuration: DeepSeekMoE-16B, seq 4096, batch 4608,
    /// pp 10, top-6 routing.
    pub fn deepseek_moe_16b_paper() -> Self {
        MoeConfig {
            pipeline: PipelineConfig {
                pp: 10,
                seq_len: 4096,
                global_batch_seqs: 4608,
                micro_batch_seqs: 1,
                schedule: Schedule::OneFOneB,
                stagger_dp_ranks: true,
            },
            top_k: 6,
            ep_group: 16,
            moe_layer_frac: 27.0 / 28.0,
            a2a_overlap: 0.80,
        }
    }
}

/// Per-DP-rank synchronization overhead for MoE steps (routing adds
/// barriers beyond the dense pipeline's 7 ms).
pub const MOE_DP_SYNC_PER_RANK_S: f64 = 14e-3;

/// One MoE training step at `gpus` total GPUs.
pub fn moe_step(model: &TrainModel, cfg: &MoeConfig, gpus: usize) -> StepBreakdown {
    let p = &cfg.pipeline;
    assert!(gpus.is_multiple_of(p.pp), "GPUs must divide into pipelines");
    let dp = gpus / p.pp;
    assert!(
        p.global_batch_seqs.is_multiple_of(dp),
        "batch must divide DP ways"
    );
    let per_rank_seqs = p.global_batch_seqs / dp;
    let m = (per_rank_seqs / p.micro_batch_seqs).max(1);
    let tokens = (p.global_batch_seqs * p.seq_len) as f64;
    let sustained = model.sustained_flops(GpuForm::PcieA100.fp16_flops());
    let compute = tokens * model.step_flops_per_token() / (gpus as f64 * sustained);
    let bubble = compute * (p.pp - 1) as f64 / m as f64;

    // all2all: per token, per MoE layer *held by this stage*, top-k hidden
    // vectors out (dispatch) and back (combine), forward and backward.
    let tokens_per_gpu = tokens / gpus as f64;
    let layers_per_stage = model.layers as f64 * cfg.moe_layer_frac / p.pp as f64;
    let bytes_per_token_layer = cfg.top_k as f64 * model.boundary_bytes_per_token() * 4.0; // disp+comb × fwd+bwd
    let a2a_volume = tokens_per_gpu * layers_per_stage * bytes_per_token_layer;
    // Cross-node share of the EP group, squeezed through the shared NIC.
    let ep_nodes = (cfg.ep_group as f64 / GPUS_PER_NODE as f64).max(1.0);
    let cross = (ep_nodes - 1.0) / ep_nodes;
    let nic_per_gpu = NIC_200G_BPS / GPUS_PER_NODE as f64;
    let a2a_time = a2a_volume * cross / nic_per_gpu;
    let exposed = a2a_time * (1.0 - cfg.a2a_overlap);

    StepBreakdown {
        compute_s: compute,
        exposed_comm_s: exposed,
        bubble_s: bubble,
        jitter_s: MOE_DP_SYNC_PER_RANK_S * dp as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strong_scaling_efficiency;

    fn paper_step(gpus: usize) -> StepBreakdown {
        moe_step(
            &TrainModel::deepseek_moe_16b(),
            &MoeConfig::deepseek_moe_16b_paper(),
            gpus,
        )
    }

    #[test]
    fn figure9b_step_times_within_12pct() {
        // Paper: 40 GPUs → 79.615 s, 320 → 10.71 s, 640 → 6.535 s.
        let t40 = paper_step(40).total_s();
        let t320 = paper_step(320).total_s();
        let t640 = paper_step(640).total_s();
        assert!((t40 - 79.615).abs() / 79.615 < 0.12, "t40 = {t40}");
        assert!((t320 - 10.71).abs() / 10.71 < 0.12, "t320 = {t320}");
        assert!((t640 - 6.535).abs() / 6.535 < 0.12, "t640 = {t640}");
    }

    #[test]
    fn figure9b_efficiency_cliff() {
        // 92.92% at 320 GPUs, 76.14% at 640: efficiency falls noticeably
        // in the last doubling as the bubble and DP sync grow.
        let t40 = paper_step(40).total_s();
        let t320 = paper_step(320).total_s();
        let t640 = paper_step(640).total_s();
        let e320 = strong_scaling_efficiency(40, t40, 320, t320);
        let e640 = strong_scaling_efficiency(40, t40, 640, t640);
        assert!((0.85..=1.0).contains(&e320), "e320 = {e320}");
        assert!((0.70..=0.85).contains(&e640), "e640 = {e640}");
        assert!(e320 - e640 > 0.08, "expected a cliff: {e320} → {e640}");
    }

    #[test]
    fn all2all_traffic_scales_with_topk() {
        let m = TrainModel::deepseek_moe_16b();
        let mut cfg = MoeConfig::deepseek_moe_16b_paper();
        let base = moe_step(&m, &cfg, 320).exposed_comm_s;
        cfg.top_k = 12;
        let doubled = moe_step(&m, &cfg, 320).exposed_comm_s;
        assert!((doubled / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn intra_node_ep_group_avoids_nic() {
        let m = TrainModel::deepseek_moe_16b();
        let mut cfg = MoeConfig::deepseek_moe_16b_paper();
        cfg.ep_group = 8; // one node
        let s = moe_step(&m, &cfg, 320);
        assert_eq!(s.exposed_comm_s, 0.0);
    }

    #[test]
    fn moe_efficiency_monotonically_declines() {
        let t40 = paper_step(40).total_s();
        let mut prev_eff = 1.0;
        for gpus in [80usize, 160, 320, 640] {
            let t = paper_step(gpus).total_s();
            let eff = strong_scaling_efficiency(40, t40, gpus, t);
            assert!(eff <= prev_eff + 0.02, "{gpus}: {eff} > {prev_eff}");
            prev_eff = eff;
        }
    }
}
