//! Tensor parallelism over the NVLink bridge (§V-B1).
//!
//! Before the NVLink retrofit, TP between PCIe GPUs would run its per-layer
//! allreduce over PCIe P2P (≈27 GB/s shared with everything else); the
//! bridge gives each pair 600 GB/s, making TP=2 practical. This module
//! quantifies that: per-layer communication time under each interconnect.

use crate::models::TrainModel;
use ff_hw::spec::{NVLINK_DIR_BPS, PCIE4_X16_BPS};

/// Interconnect available between the tensor-parallel pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpLink {
    /// PCIe peer-to-peer (pre-retrofit).
    Pcie,
    /// NVLink bridge (600 GB/s per pair).
    NvLinkBridge,
}

impl TpLink {
    /// Usable bandwidth per direction.
    pub fn bandwidth(self) -> f64 {
        match self {
            TpLink::Pcie => PCIE4_X16_BPS,
            TpLink::NvLinkBridge => NVLINK_DIR_BPS,
        }
    }
}

/// Communication time of one Megatron-style transformer layer under TP=2:
/// two allreduces of the activation tensor per layer per direction
/// (forward + backward ⇒ 4 allreduces), each moving `2(n−1)/n ≈ 1` times
/// the activations across the pair link.
pub fn tp_layer_comm_time(model: &TrainModel, tokens: usize, link: TpLink) -> f64 {
    let act_bytes = tokens as f64 * model.boundary_bytes_per_token();
    let allreduces = 4.0;
    allreduces * act_bytes / link.bandwidth()
}

/// The TP=2 speedup bound for one layer: compute halves; communication is
/// the overhead. Returns estimated layer time (seconds) given the layer's
/// single-GPU compute time.
pub fn tp2_layer_time(layer_compute_s: f64, comm_s: f64) -> f64 {
    layer_compute_s / 2.0 + comm_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_is_an_order_of_magnitude_faster() {
        let m = TrainModel::llama_13b();
        let pcie = tp_layer_comm_time(&m, 4096, TpLink::Pcie);
        let nvl = tp_layer_comm_time(&m, 4096, TpLink::NvLinkBridge);
        assert!((pcie / nvl - 300.0 / 27.0).abs() < 1e-9);
    }

    #[test]
    fn tp2_pays_off_only_with_nvlink() {
        // A LLaMa-13B layer at 4096 tokens: compute ≈ 2 × 6 × params/layers
        // FLOPs... concretely ~25 ms on one GPU at 71% MFU.
        let m = TrainModel::llama_13b();
        let tokens = 4096usize;
        let layer_flops = m.step_flops_per_token() * tokens as f64 / m.layers as f64;
        let layer_compute = layer_flops / m.sustained_flops(220e12);
        let pcie = tp2_layer_time(layer_compute, tp_layer_comm_time(&m, tokens, TpLink::Pcie));
        let nvl = tp2_layer_time(
            layer_compute,
            tp_layer_comm_time(&m, tokens, TpLink::NvLinkBridge),
        );
        assert!(nvl < layer_compute, "NVLink TP=2 must beat one GPU");
        // Standalone PCIe P2P adds ~20% per layer — and in practice that
        // path is shared with D2H/H2D and NIC traffic, which NVLink avoids
        // entirely.
        assert!(pcie > nvl * 1.15, "PCIe TP=2 should be clearly worse");
        assert!(
            tp_layer_comm_time(&m, tokens, TpLink::Pcie)
                > 10.0 * tp_layer_comm_time(&m, tokens, TpLink::NvLinkBridge)
        );
    }

    #[test]
    fn comm_scales_linearly_with_tokens() {
        let m = TrainModel::llama_13b();
        let a = tp_layer_comm_time(&m, 1000, TpLink::NvLinkBridge);
        let b = tp_layer_comm_time(&m, 2000, TpLink::NvLinkBridge);
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
