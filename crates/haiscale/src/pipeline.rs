//! Pipeline-parallel step-time model (1F1B / GPipe) — Figure 9a.
//!
//! On this architecture pipeline parallelism has a twist: one NIC serves 8
//! GPUs, so the paper assigns the 8 GPUs of a node to *different DP ranks*
//! ("staggers the timing of PP for each DP rank", §V-B2) to avoid
//! synchronized activation bursts on the shared NIC.
//!
//! Step time decomposes into
//! `compute + bubble + exposed PP comm + DP sync`:
//!
//! * `compute` — global tokens × FLOPs/token over the aggregate sustained
//!   throughput (strong scaling: shrinks 1/n).
//! * `bubble` — `(pp−1)/m` of the per-rank compute for 1F1B/GPipe, zero
//!   for Zero-Bubble scheduling; `m` is microbatches per DP rank, so the
//!   bubble grows when scaling out shrinks per-rank batches — the paper's
//!   efficiency decline from 91% (512 GPUs) toward 76% (Figure 9b regime).
//! * `DP sync` — per-step synchronization cost growing with DP width
//!   (gradient-allreduce launch, flush barrier, stragglers), calibrated at
//!   ~7 ms per DP rank against the paper's absolute step times.

use crate::models::TrainModel;
use crate::StepBreakdown;
use ff_hw::spec::{GPUS_PER_NODE, NIC_200G_BPS};
use ff_hw::GpuForm;

/// Pipeline schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// GPipe: all-forward then all-backward; bubble `(pp−1)/m`.
    GPipe,
    /// PipeDream 1F1B: same bubble, far lower activation memory.
    OneFOneB,
    /// Zero-bubble pipeline parallelism (ZBPP): bubble eliminated.
    ZeroBubble,
}

/// A pipeline-parallel training configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Pipeline stages.
    pub pp: usize,
    /// Sequence length (tokens).
    pub seq_len: usize,
    /// Global batch, in sequences.
    pub global_batch_seqs: usize,
    /// Micro-batch size, in sequences.
    pub micro_batch_seqs: usize,
    /// Schedule.
    pub schedule: Schedule,
    /// Stagger DP ranks across each node's 8 GPUs (the paper's trick).
    pub stagger_dp_ranks: bool,
}

impl PipelineConfig {
    /// Figure 9a's configuration: LLaMa-13B, seq 2048, batch 4096, pp 4.
    pub fn llama_13b_paper() -> Self {
        PipelineConfig {
            pp: 4,
            seq_len: 2048,
            global_batch_seqs: 4096,
            micro_batch_seqs: 1,
            schedule: Schedule::OneFOneB,
            stagger_dp_ranks: true,
        }
    }
}

/// Per-DP-rank synchronization overhead, seconds (calibration constant).
pub const DP_SYNC_PER_RANK_S: f64 = 7e-3;

/// Microbatches of activations resident per stage under each schedule —
/// the memory distinction that makes 1F1B preferable to GPipe (§II-B1):
/// GPipe holds all `m` microbatches through the forward sweep; 1F1B
/// drains each as soon as its backward runs, capping residency at the
/// stage's pipeline depth; ZBPP matches 1F1B.
pub fn resident_microbatches(schedule: Schedule, m: usize, pp: usize) -> usize {
    match schedule {
        Schedule::GPipe => m,
        Schedule::OneFOneB | Schedule::ZeroBubble => pp.min(m),
    }
}

/// One pipeline-parallel training step at `gpus` total GPUs.
pub fn pipeline_step(model: &TrainModel, cfg: &PipelineConfig, gpus: usize) -> StepBreakdown {
    assert!(
        gpus.is_multiple_of(cfg.pp),
        "GPUs must divide into pipelines"
    );
    let dp = gpus / cfg.pp;
    assert!(
        cfg.global_batch_seqs.is_multiple_of(dp),
        "global batch must divide DP ways"
    );
    let per_rank_seqs = cfg.global_batch_seqs / dp;
    let m = (per_rank_seqs / cfg.micro_batch_seqs).max(1); // microbatches
    let tokens = (cfg.global_batch_seqs * cfg.seq_len) as f64;
    let sustained = model.sustained_flops(GpuForm::PcieA100.fp16_flops());
    let compute = tokens * model.step_flops_per_token() / (gpus as f64 * sustained);

    let bubble_frac = match cfg.schedule {
        Schedule::GPipe | Schedule::OneFOneB => (cfg.pp - 1) as f64 / m as f64,
        Schedule::ZeroBubble => 0.0,
    };
    let bubble = compute * bubble_frac;

    // Activation traffic between stages: micro-batch boundary tensors both
    // directions, through the shared NIC. Staggering lets the 8 DP ranks
    // of a node interleave; without it they collide 8-wide.
    let pp_comm = if cfg.pp > 1 {
        let per_micro =
            cfg.micro_batch_seqs as f64 * cfg.seq_len as f64 * model.boundary_bytes_per_token();
        let transfers = 2.0 * m as f64; // fwd + bwd per microbatch
        let contention = if cfg.stagger_dp_ranks {
            1.0
        } else {
            GPUS_PER_NODE as f64
        };
        let wire = per_micro * transfers * contention / NIC_200G_BPS;
        // Mostly hidden behind the other microbatches' compute.
        (wire - compute * 0.5).max(wire * 0.1)
    } else {
        0.0
    };

    StepBreakdown {
        compute_s: compute,
        exposed_comm_s: pp_comm,
        bubble_s: bubble,
        jitter_s: DP_SYNC_PER_RANK_S * dp as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strong_scaling_efficiency;

    #[test]
    fn figure9a_step_times_within_10pct() {
        // Paper: 64 GPUs → 64.118 s, 512 GPUs → 9.717 s.
        let m = TrainModel::llama_13b();
        let cfg = PipelineConfig::llama_13b_paper();
        let t64 = pipeline_step(&m, &cfg, 64).total_s();
        let t512 = pipeline_step(&m, &cfg, 512).total_s();
        assert!((t64 - 64.118).abs() / 64.118 < 0.10, "t64 = {t64}");
        assert!((t512 - 9.717).abs() / 9.717 < 0.10, "t512 = {t512}");
    }

    #[test]
    fn figure9a_efficiency_band() {
        // "achieving a parallel efficiency of 91%" (the paper quotes the
        // efficiency against its own baseline; the measured step times
        // give 64.118×64 / (9.717×512) ≈ 0.82 — we accept the band).
        let m = TrainModel::llama_13b();
        let cfg = PipelineConfig::llama_13b_paper();
        let t64 = pipeline_step(&m, &cfg, 64).total_s();
        let t512 = pipeline_step(&m, &cfg, 512).total_s();
        let eff = strong_scaling_efficiency(64, t64, 512, t512);
        assert!((0.75..=0.95).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn step_time_decreases_monotonically() {
        let m = TrainModel::llama_13b();
        let cfg = PipelineConfig::llama_13b_paper();
        let mut prev = f64::INFINITY;
        for gpus in [64usize, 128, 256, 512] {
            let t = pipeline_step(&m, &cfg, gpus).total_s();
            assert!(t < prev, "{gpus} GPUs: {t} ≥ {prev}");
            prev = t;
        }
    }

    #[test]
    fn bubble_grows_as_dp_widens() {
        let m = TrainModel::llama_13b();
        let cfg = PipelineConfig::llama_13b_paper();
        let b64 = pipeline_step(&m, &cfg, 64);
        let b512 = pipeline_step(&m, &cfg, 512);
        // Absolute bubble is ~constant; relative share grows.
        let rel64 = b64.bubble_s / b64.total_s();
        let rel512 = b512.bubble_s / b512.total_s();
        assert!(rel512 > rel64 * 3.0, "{rel64} vs {rel512}");
    }

    #[test]
    fn zero_bubble_removes_the_bubble() {
        let m = TrainModel::llama_13b();
        let mut cfg = PipelineConfig::llama_13b_paper();
        cfg.schedule = Schedule::ZeroBubble;
        let s = pipeline_step(&m, &cfg, 512);
        assert_eq!(s.bubble_s, 0.0);
        let base = pipeline_step(&m, &PipelineConfig::llama_13b_paper(), 512);
        assert!(s.total_s() < base.total_s());
    }

    #[test]
    fn stagger_trick_reduces_exposed_pp_comm() {
        // §V-B2: without DP-rank staggering the 8 GPUs of a node contend
        // for the single NIC during pipeline sends.
        let m = TrainModel::llama_13b();
        let mut cfg = PipelineConfig::llama_13b_paper();
        let with = pipeline_step(&m, &cfg, 512).exposed_comm_s;
        cfg.stagger_dp_ranks = false;
        let without = pipeline_step(&m, &cfg, 512).exposed_comm_s;
        assert!(
            without > with * 2.0,
            "unstaggered {without} vs staggered {with}"
        );
    }

    #[test]
    fn one_f_one_b_caps_activation_residency() {
        // The paper's 1F1B choice: at m=256 microbatches and pp=4, GPipe
        // would hold 64× the activations.
        assert_eq!(resident_microbatches(Schedule::GPipe, 256, 4), 256);
        assert_eq!(resident_microbatches(Schedule::OneFOneB, 256, 4), 4);
        assert_eq!(resident_microbatches(Schedule::ZeroBubble, 256, 4), 4);
        // Tiny batches: residency never exceeds m.
        assert_eq!(resident_microbatches(Schedule::OneFOneB, 2, 4), 2);
        // Combined with the memory model: LLaMa-13B under GPipe at the
        // paper's batch would blow past 40 GB on activations alone.
        use crate::memory::{memory_per_gpu, ShardingStrategy};
        let m = TrainModel::llama_13b();
        let tokens_1f1b = resident_microbatches(Schedule::OneFOneB, 256, 4) * 2048;
        let tokens_gpipe = resident_microbatches(Schedule::GPipe, 256, 4) * 2048;
        let fits = memory_per_gpu(&m, ShardingStrategy::Zero1, 128, 4, 1, tokens_1f1b, false);
        let blows = memory_per_gpu(&m, ShardingStrategy::Zero1, 128, 4, 1, tokens_gpipe, false);
        assert!(fits.fits_a100());
        assert!(!blows.fits_a100());
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn invalid_gpu_count_rejected() {
        let m = TrainModel::llama_13b();
        pipeline_step(&m, &PipelineConfig::llama_13b_paper(), 66);
    }
}
