//! The model zoo: parameter and FLOP accounting for the four workloads the
//! paper evaluates.

/// A trainable model's cost profile.
#[derive(Debug, Clone)]
pub struct TrainModel {
    /// Human name.
    pub name: &'static str,
    /// Total parameters.
    pub params: u64,
    /// Parameters active per token (≠ `params` for MoE).
    pub active_params: u64,
    /// Transformer layers (or conv "stages" for CNNs) — the pipeline axis.
    pub layers: usize,
    /// Hidden dimension (activation width between pipeline stages).
    pub hidden: usize,
    /// Bytes per parameter/gradient element (2 = fp16/bf16, 4 = fp32).
    pub dtype_bytes: u64,
    /// Forward FLOPs per token (or per sample for CNNs).
    pub fwd_flops_per_token: f64,
    /// Fraction of peak GEMM throughput a well-tuned training step
    /// sustains on this workload (calibrated once per model family from
    /// the paper's absolute step times; see each constructor).
    pub gpu_efficiency: f64,
}

impl TrainModel {
    /// Forward+backward FLOPs per token (backward ≈ 2× forward).
    pub fn step_flops_per_token(&self) -> f64 {
        3.0 * self.fwd_flops_per_token
    }

    /// Gradient bytes to allreduce per replica.
    pub fn grad_bytes(&self) -> f64 {
        (self.params * self.dtype_bytes) as f64
    }

    /// Activation bytes crossing a pipeline-stage boundary per token.
    pub fn boundary_bytes_per_token(&self) -> f64 {
        (self.hidden as u64 * self.dtype_bytes) as f64
    }

    /// VGG16 (Figure 8a): 138M fp32 parameters, ~15.5 GFLOP forward per
    /// 224×224 image. Conv workloads sustain a modest fraction of TF32
    /// tensor-core peak.
    pub fn vgg16() -> Self {
        TrainModel {
            name: "VGG16",
            params: 138_357_544,
            active_params: 138_357_544,
            layers: 16,
            hidden: 4096,
            dtype_bytes: 4,
            fwd_flops_per_token: 15.5e9, // per image
            gpu_efficiency: 0.35,
        }
    }

    /// GPT2-medium (Figure 8b): 355M parameters, hidden 1024, 24 layers.
    pub fn gpt2_medium() -> Self {
        TrainModel {
            name: "GPT2-medium",
            params: 355_000_000,
            active_params: 355_000_000,
            layers: 24,
            hidden: 1024,
            dtype_bytes: 2,
            fwd_flops_per_token: 2.0 * 355e6,
            gpu_efficiency: 0.45,
        }
    }

    /// LLaMa-13B (Figure 9a): 13B parameters, hidden 5120, 40 layers.
    /// `gpu_efficiency` 0.71 reproduces the paper's 64.118 s step at 64
    /// GPUs (sequence 2048, global batch 4096 sequences, pp=4).
    pub fn llama_13b() -> Self {
        TrainModel {
            name: "LLaMa-13B",
            params: 13_015_864_320,
            active_params: 13_015_864_320,
            layers: 40,
            hidden: 5120,
            dtype_bytes: 2,
            fwd_flops_per_token: 2.0 * 13.0e9,
            gpu_efficiency: 0.71,
        }
    }

    /// DeepSeekMoE-16B (Figure 9b): 16.4B total parameters, ~2.8B active
    /// per token (top-6 of 64 routed experts + 2 shared), hidden 2048, 28
    /// layers. `gpu_efficiency` 0.47 reproduces the 79.615 s step at 40
    /// GPUs (sequence 4096, global batch 4608, pp=10) — MoE kernels and
    /// routing overhead keep MFU below dense models.
    pub fn deepseek_moe_16b() -> Self {
        TrainModel {
            name: "DeepSeekMoE-16B",
            params: 16_400_000_000,
            active_params: 2_800_000_000,
            layers: 28,
            hidden: 2048,
            dtype_bytes: 2,
            fwd_flops_per_token: 2.0 * 2.8e9,
            gpu_efficiency: 0.47,
        }
    }

    /// Sustained per-GPU training throughput, FLOP/s, on an A100 of the
    /// given peak.
    pub fn sustained_flops(&self, peak_flops: f64) -> f64 {
        peak_flops * self.gpu_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_parameter_counts() {
        assert_eq!(TrainModel::vgg16().params, 138_357_544);
        assert!(TrainModel::llama_13b().params > 13_000_000_000);
        let moe = TrainModel::deepseek_moe_16b();
        assert!(moe.active_params < moe.params / 5);
    }

    #[test]
    fn grad_bytes_match_dtype() {
        // VGG16 trains fp32: ~553 MB of gradients.
        let v = TrainModel::vgg16();
        assert!((v.grad_bytes() - 553.43e6).abs() < 1e6);
        // LLaMa-13B bf16: ~26 GB.
        let l = TrainModel::llama_13b();
        assert!((l.grad_bytes() - 26.03e9).abs() < 0.1e9);
    }

    #[test]
    fn step_flops_are_3x_forward() {
        let m = TrainModel::gpt2_medium();
        assert_eq!(m.step_flops_per_token(), 3.0 * m.fwd_flops_per_token);
    }

    #[test]
    fn dense_flops_rule_of_thumb() {
        // 6 × params per token for forward+backward.
        let l = TrainModel::llama_13b();
        assert!((l.step_flops_per_token() - 6.0 * 13.0e9).abs() < 1e9);
    }
}
