//! Property-based tests: the step-time and memory models behave sanely
//! over their whole input space, not just the paper's points.

use ff_haiscale::ddp::{ddp_step, DdpBackend};
use ff_haiscale::fsdp::{fsdp_step, FsdpImpl};
use ff_haiscale::memory::{memory_per_gpu, ShardingStrategy};
use ff_haiscale::models::TrainModel;
use ff_haiscale::moe::{moe_step, MoeConfig};
use ff_haiscale::pipeline::{pipeline_step, PipelineConfig};
use proptest::prelude::*;

fn models() -> impl Strategy<Value = TrainModel> {
    prop::sample::select(vec![
        TrainModel::vgg16(),
        TrainModel::gpt2_medium(),
        TrainModel::llama_13b(),
        TrainModel::deepseek_moe_16b(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All step components are finite and non-negative for any model and
    /// GPU count; at multi-node scale (≥16 GPUs, the paper's regime)
    /// HaiScale never loses to the Torch baseline. (Intra-node, NCCL's
    /// PCIe P2P ring legitimately beats the CPU-staged path — the paper
    /// compares multi-node configurations.)
    #[test]
    fn ddp_components_sane(m in models(), gpus_exp in 4u32..10, batch in 1usize..128) {
        let gpus = 1usize << gpus_exp;
        for backend in [DdpBackend::HaiScale, DdpBackend::TorchNccl] {
            let s = ddp_step(&m, gpus, batch, backend);
            prop_assert!(s.compute_s.is_finite() && s.compute_s > 0.0);
            prop_assert!(s.exposed_comm_s >= 0.0);
            prop_assert!(s.total_s() > 0.0);
        }
        let hai = ddp_step(&m, gpus, batch, DdpBackend::HaiScale).total_s();
        let torch = ddp_step(&m, gpus, batch, DdpBackend::TorchNccl).total_s();
        prop_assert!(hai <= torch * 1.0001, "hai {hai} vs torch {torch}");
    }

    /// FSDP weak scaling between multi-node points: going 16 → 128 GPUs
    /// can at most double the step (the remote-shard fraction grows from
    /// 1/2 toward 1), never worse — for any model, even ones whose compute
    /// cannot hide the traffic.
    #[test]
    fn fsdp_weak_scaling_bounded(m in models(), tokens in 512usize..32768) {
        let t16 = fsdp_step(&m, 16, tokens, FsdpImpl::HaiScale).total_s();
        let t128 = fsdp_step(&m, 128, tokens, FsdpImpl::HaiScale).total_s();
        prop_assert!(t128 < t16 * 2.0, "weak scaling collapsed: {t16} -> {t128}");
        prop_assert!(t128 >= t16 * 0.999, "more nodes cannot shrink a weak-scaled step");
    }

    /// Pipeline step time is monotone decreasing in GPU count (strong
    /// scaling) for any pipeline depth that divides.
    #[test]
    fn pipeline_strong_scaling_monotone(pp in prop::sample::select(vec![2usize, 4, 8])) {
        let m = TrainModel::llama_13b();
        let cfg = PipelineConfig { pp, ..PipelineConfig::llama_13b_paper() };
        let mut prev = f64::INFINITY;
        for mult in [8usize, 16, 32, 64] {
            let gpus = pp * mult;
            if !cfg.global_batch_seqs.is_multiple_of(gpus / pp) {
                continue;
            }
            let t = pipeline_step(&m, &cfg, gpus).total_s();
            prop_assert!(t < prev, "pp={pp}, {gpus} GPUs: {t} >= {prev}");
            prev = t;
        }
    }

    /// MoE efficiency is in (0, 1] and never increases with scale.
    #[test]
    fn moe_efficiency_well_formed(scale in prop::sample::select(vec![2usize, 4, 8, 16])) {
        let m = TrainModel::deepseek_moe_16b();
        let cfg = MoeConfig::deepseek_moe_16b_paper();
        let t40 = moe_step(&m, &cfg, 40).total_s();
        let gpus = 40 * scale;
        let t = moe_step(&m, &cfg, gpus).total_s();
        let eff = (t40 * 40.0) / (t * gpus as f64);
        prop_assert!(eff > 0.0 && eff <= 1.01, "eff {eff}");
    }

    /// Memory: total is additive in its components, monotone in tokens,
    /// and antitone in every sharding denominator.
    #[test]
    fn memory_model_monotonicity(m in models(),
                                 dp in 1usize..256,
                                 pp in 1usize..8,
                                 tokens in 0usize..65536) {
        let base = memory_per_gpu(&m, ShardingStrategy::Zero3, dp, pp, 1, tokens, false);
        let total = base.params + base.grads + base.optimizer + base.activations;
        prop_assert!((base.total() - total).abs() < 1.0);
        let more_tokens = memory_per_gpu(&m, ShardingStrategy::Zero3, dp, pp, 1, tokens + 1024, false);
        prop_assert!(more_tokens.total() >= base.total());
        let more_dp = memory_per_gpu(&m, ShardingStrategy::Zero3, dp * 2, pp, 1, tokens, false);
        prop_assert!(more_dp.total() <= base.total());
        let more_pp = memory_per_gpu(&m, ShardingStrategy::Zero3, dp, pp * 2, 1, tokens, false);
        prop_assert!(more_pp.params <= base.params);
        // Recompute never increases activation memory.
        let rec = memory_per_gpu(&m, ShardingStrategy::Zero3, dp, pp, 1, tokens, true);
        prop_assert!(rec.activations <= base.activations);
    }
}
