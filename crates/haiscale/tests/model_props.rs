//! Randomized property tests: the step-time and memory models behave
//! sanely over their whole input space, not just the paper's points
//! (seeded, reproducible).

use ff_haiscale::ddp::{ddp_step, DdpBackend};
use ff_haiscale::fsdp::{fsdp_step, FsdpImpl};
use ff_haiscale::memory::{memory_per_gpu, ShardingStrategy};
use ff_haiscale::models::TrainModel;
use ff_haiscale::moe::{moe_step, MoeConfig};
use ff_haiscale::pipeline::{pipeline_step, PipelineConfig};
use ff_util::rng::ChaCha8Rng;

const CASES: usize = 64;

fn models() -> Vec<TrainModel> {
    vec![
        TrainModel::vgg16(),
        TrainModel::gpt2_medium(),
        TrainModel::llama_13b(),
        TrainModel::deepseek_moe_16b(),
    ]
}

/// All step components are finite and non-negative for any model and
/// GPU count; at multi-node scale (≥16 GPUs, the paper's regime)
/// HaiScale never loses to the Torch baseline. (Intra-node, NCCL's
/// PCIe P2P ring legitimately beats the CPU-staged path — the paper
/// compares multi-node configurations.)
#[test]
fn ddp_components_sane() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4801);
    let models = models();
    for _ in 0..CASES {
        let m = rng.choose(&models).expect("non-empty");
        let gpus = 1usize << rng.gen_range(4u32..10);
        let batch = rng.gen_range(1usize..128);
        for backend in [DdpBackend::HaiScale, DdpBackend::TorchNccl] {
            let s = ddp_step(m, gpus, batch, backend);
            assert!(s.compute_s.is_finite() && s.compute_s > 0.0);
            assert!(s.exposed_comm_s >= 0.0);
            assert!(s.total_s() > 0.0);
        }
        let hai = ddp_step(m, gpus, batch, DdpBackend::HaiScale).total_s();
        let torch = ddp_step(m, gpus, batch, DdpBackend::TorchNccl).total_s();
        assert!(hai <= torch * 1.0001, "hai {hai} vs torch {torch}");
    }
}

/// FSDP weak scaling between multi-node points: going 16 → 128 GPUs
/// can at most double the step (the remote-shard fraction grows from
/// 1/2 toward 1), never worse — for any model, even ones whose compute
/// cannot hide the traffic.
#[test]
fn fsdp_weak_scaling_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4802);
    let models = models();
    for _ in 0..CASES {
        let m = rng.choose(&models).expect("non-empty");
        let tokens = rng.gen_range(512usize..32768);
        let t16 = fsdp_step(m, 16, tokens, FsdpImpl::HaiScale).total_s();
        let t128 = fsdp_step(m, 128, tokens, FsdpImpl::HaiScale).total_s();
        assert!(t128 < t16 * 2.0, "weak scaling collapsed: {t16} -> {t128}");
        assert!(
            t128 >= t16 * 0.999,
            "more nodes cannot shrink a weak-scaled step"
        );
    }
}

/// Pipeline step time is monotone decreasing in GPU count (strong
/// scaling) for any pipeline depth that divides.
#[test]
fn pipeline_strong_scaling_monotone() {
    for pp in [2usize, 4, 8] {
        let m = TrainModel::llama_13b();
        let cfg = PipelineConfig {
            pp,
            ..PipelineConfig::llama_13b_paper()
        };
        let mut prev = f64::INFINITY;
        for mult in [8usize, 16, 32, 64] {
            let gpus = pp * mult;
            if !cfg.global_batch_seqs.is_multiple_of(gpus / pp) {
                continue;
            }
            let t = pipeline_step(&m, &cfg, gpus).total_s();
            assert!(t < prev, "pp={pp}, {gpus} GPUs: {t} >= {prev}");
            prev = t;
        }
    }
}

/// MoE efficiency is in (0, 1] and never increases with scale.
#[test]
fn moe_efficiency_well_formed() {
    for scale in [2usize, 4, 8, 16] {
        let m = TrainModel::deepseek_moe_16b();
        let cfg = MoeConfig::deepseek_moe_16b_paper();
        let t40 = moe_step(&m, &cfg, 40).total_s();
        let gpus = 40 * scale;
        let t = moe_step(&m, &cfg, gpus).total_s();
        let eff = (t40 * 40.0) / (t * gpus as f64);
        assert!(eff > 0.0 && eff <= 1.01, "eff {eff}");
    }
}

/// Memory: total is additive in its components, monotone in tokens,
/// and antitone in every sharding denominator.
#[test]
fn memory_model_monotonicity() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4803);
    let models = models();
    for _ in 0..CASES {
        let m = rng.choose(&models).expect("non-empty");
        let dp = rng.gen_range(1usize..256);
        let pp = rng.gen_range(1usize..8);
        let tokens = rng.gen_range(0usize..65536);
        let base = memory_per_gpu(m, ShardingStrategy::Zero3, dp, pp, 1, tokens, false);
        let total = base.params + base.grads + base.optimizer + base.activations;
        assert!((base.total() - total).abs() < 1.0);
        let more_tokens =
            memory_per_gpu(m, ShardingStrategy::Zero3, dp, pp, 1, tokens + 1024, false);
        assert!(more_tokens.total() >= base.total());
        let more_dp = memory_per_gpu(m, ShardingStrategy::Zero3, dp * 2, pp, 1, tokens, false);
        assert!(more_dp.total() <= base.total());
        let more_pp = memory_per_gpu(m, ShardingStrategy::Zero3, dp, pp * 2, 1, tokens, false);
        assert!(more_pp.params <= base.params);
        // Recompute never increases activation memory.
        let rec = memory_per_gpu(m, ShardingStrategy::Zero3, dp, pp, 1, tokens, true);
        assert!(rec.activations <= base.activations);
    }
}
