//! Compatibility tests for the deprecated expert-parallel free
//! functions: they must keep delegating to the `run_*` drivers over the
//! default in-memory fabric. The only in-tree caller of the old names.

#![allow(deprecated)]

use ff_haiscale::{all2all, all2all_with_dead, moe_layer_step};
use ff_reduce::CommError;

#[test]
fn all2all_shim_still_transposes() {
    let sends = vec![vec![vec![1u32], vec![2]], vec![vec![3], vec![4]]];
    let out = all2all(sends).unwrap();
    assert_eq!(out, vec![vec![vec![1], vec![3]], vec![vec![2], vec![4]]]);
}

#[test]
fn dead_peer_shim_keeps_the_typed_error() {
    let err = all2all_with_dead(
        vec![vec![vec![1u32], vec![2]], vec![vec![3], vec![4]]],
        &[1],
    )
    .unwrap_err();
    assert_eq!(err, CommError::Disconnected { peer: 1 });
}

#[test]
fn moe_step_shim_still_routes() {
    let out = moe_layer_step(
        vec![vec![1i64, 2], vec![3, 4]],
        |_, _, &t| (t % 2) as usize,
        |_, &x| x * 10,
    )
    .unwrap();
    assert_eq!(out, vec![vec![10, 20], vec![30, 40]]);
}
