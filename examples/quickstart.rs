//! Quickstart: the Fire-Flyer stack in five minutes.
//!
//! Builds a small Fire-Flyer-2-style cluster, runs an HFReduce allreduce
//! two ways — the *performance model* (discrete-event simulation of the
//! PCIe/NIC/memory data path) and the *executable algorithm* (real threads
//! really reducing real numbers) — and compares with the NCCL-style ring
//! baseline, reproducing the paper's headline in miniature.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fireflyer::reduce::kernels::reference_sum;
use fireflyer::reduce::model::{hfreduce_steady, HfReduceOptions};
use fireflyer::reduce::ring::ring_analytic_bw;
use fireflyer::reduce::{run_hfreduce, ClusterConfig, InMemProvider};
use fireflyer::FireFlyer2;

fn main() {
    // --- The deployment, by the numbers (§III) ---
    let ff2 = FireFlyer2::paper();
    println!(
        "Fire-Flyer 2: {} GPUs over {} nodes",
        ff2.total_gpus(),
        ff2.compute_nodes
    );
    println!(
        "network: {} switches (a 10,000-GPU DGX build needs 1,320); power {:.1} MW",
        ff2.network_cost().switches,
        ff2.power().total_watts() / 1e6
    );

    // --- Performance: HFReduce vs NCCL on 64 GPUs (Figure 7a) ---
    let bytes = 186.0 * 1024.0 * 1024.0;
    let hf = hfreduce_steady(
        &ClusterConfig::fire_flyer(8),
        bytes,
        &HfReduceOptions::default(),
    );
    let nccl = ring_analytic_bw(64, bytes);
    println!(
        "\nallreduce of 186 MiB on 64 GPUs: HFReduce {:.2} GB/s vs NCCL {:.2} GB/s ({:.1}x)",
        hf.algbw_bps / 1e9,
        nccl / 1e9,
        hf.algbw_bps / nccl
    );

    // --- Correctness: the real algorithm on real data ---
    // 4 nodes × 8 "GPUs", each holding a gradient buffer; HFReduce's full
    // path (intra-node reduce → double-binary-tree allreduce → broadcast)
    // executed by one thread per node.
    let inputs: Vec<Vec<Vec<f32>>> = (0..4)
        .map(|node| {
            (0..8)
                .map(|gpu| {
                    (0..1024)
                        .map(|i| ((node * 8 + gpu + i) % 21) as f32)
                        .collect()
                })
                .collect()
        })
        .collect();
    let reference = reference_sum(&inputs.iter().flatten().cloned().collect::<Vec<_>>());
    let out = run_hfreduce(inputs, 4, &InMemProvider, None);
    assert!(out.iter().all(|node| node.iter().all(|b| b == &reference)));
    println!(
        "executable HFReduce: 32 buffers of 1,024 gradients reduced bit-exactly on every GPU ✓"
    );

    println!("\nNext: examples/train_llama.rs, examples/storage_cluster.rs, examples/cluster_operations.rs");
}
