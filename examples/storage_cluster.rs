//! Standing up a 3FS storage cluster and using it like the paper does
//! (§VI-B): CRAQ-replicated chains, KV-backed metadata, striped files,
//! batch I/O, 3FS-KV data models, and a replica failure mid-workload.
//!
//! ```text
//! cargo run --release --example storage_cluster
//! ```

use ff_util::bytes::Bytes;
use fireflyer::fs3::chain::{Chain, ChainTable};
use fireflyer::fs3::client::Fs3Client;
use fireflyer::fs3::kv3fs::{KvOnFs, ObjectStoreOnFs, QueueOnFs};
use fireflyer::fs3::kvstore::KvStore;
use fireflyer::fs3::manager::{ClusterManager, ServiceRole};
use fireflyer::fs3::meta::{MetaService, ROOT};
use fireflyer::fs3::target::{Disk, StorageTarget};
use std::sync::Arc;

fn main() {
    // --- Assemble the roles of §VI-B3 ---
    // 8 "SSDs" across 4 storage services; 12 chains of 3 replicas, each
    // SSD serving targets from several chains (the paper's spread).
    let disks: Vec<_> = (0..8).map(|_| Disk::new(1 << 30)).collect();
    let chains: Vec<Arc<Chain>> = (0..12)
        .map(|c| {
            let replicas = (0..3)
                .map(|r| {
                    StorageTarget::new(format!("chain{c}/r{r}"), disks[(c + 3 * r) % 8].clone())
                })
                .collect();
            Chain::new(c, replicas)
        })
        .collect();
    let chain0 = chains[0].clone(); // keep a handle for the failure demo
    let table = Arc::new(ChainTable::new(chains));
    let meta = MetaService::new(KvStore::new(16, 3), table.len());
    let client = Fs3Client::new(meta, table, 16);

    let manager = ClusterManager::new(10_000, 30_000);
    manager.register("meta0", ServiceRole::Meta);
    manager.register("meta1", ServiceRole::Meta);
    for i in 0..4 {
        manager.register(format!("storage{i}"), ServiceRole::Storage);
    }
    assert_eq!(manager.campaign("mgr0"), Some(1));
    println!(
        "cluster up: primary manager {:?}, {} services alive",
        manager.primary().unwrap(),
        manager.poll_config().alive.len()
    );

    // --- Files: directories, striping, batch I/O ---
    let dir = client.meta().mkdir(ROOT, "datasets").unwrap();
    let file = client
        .meta()
        .create(dir.ino, "tokens.bin", 64 << 10, 4)
        .unwrap();
    let shards: Vec<(u64, Bytes)> = (0..16u64)
        .map(|i| (i * (64 << 10), Bytes::from(vec![i as u8; 64 << 10])))
        .collect();
    let written = client.batch_write(&file, shards).unwrap();
    println!(
        "wrote {} KiB striped over 4 chains; file size {} KiB",
        written >> 10,
        client.meta().stat(file.ino).unwrap().size >> 10
    );
    let reads = client
        .batch_read(
            &file,
            (0..16u64).map(|i| (i * (64 << 10), 64 << 10)).collect(),
        )
        .unwrap();
    assert!(reads
        .iter()
        .enumerate()
        .all(|(i, r)| r.iter().all(|&b| b == i as u8)));
    println!("batch read verified all 16 shards");

    // --- Survive a replica failure (manager-driven reconfiguration) ---
    println!(
        "chain 0 replicas before failure: {:?}",
        chain0.target_names()
    );
    chain0.remove_replica(0); // the head "dies"; manager drops it
    let reads = client
        .batch_read(
            &file,
            (0..16u64).map(|i| (i * (64 << 10), 64 << 10)).collect(),
        )
        .unwrap();
    assert!(reads
        .iter()
        .enumerate()
        .all(|(i, r)| r.iter().all(|&b| b == i as u8)));
    println!(
        "chain 0 lost its head replica — every shard still reads correctly from the survivors"
    );

    // --- 3FS-KV: the three data models of §VI-B4 ---
    let kv = KvOnFs::create(client.clone(), "kvcache.log").unwrap();
    kv.put(b"conversation/42", b"kv-cache-page-0").unwrap();
    println!(
        "3FS-KV: {:?}",
        String::from_utf8(kv.get(b"conversation/42").unwrap().unwrap()).unwrap()
    );

    let mq = QueueOnFs::create(client.clone(), "events.log").unwrap();
    for i in 0..3 {
        mq.publish(format!("step {i} done").as_bytes()).unwrap();
    }
    println!(
        "message queue holds {} messages; seq 1 = {:?}",
        mq.len(),
        String::from_utf8(mq.fetch(1).unwrap().unwrap()).unwrap()
    );

    let os = ObjectStoreOnFs::create(client.clone(), "models").unwrap();
    os.put("llama13b.cfg", b"{layers:40,hidden:5120}").unwrap();
    println!("object store lists: {:?}", os.list().unwrap());
}
