//! Data-parallel training, for real: linear regression by SGD where every
//! gradient step is aggregated with the executable HFReduce — the same
//! intra-node reduce → double-binary-tree allreduce → broadcast path the
//! cluster runs, here converging an actual model.
//!
//! 4 nodes × 8 "GPUs" each hold a shard of a synthetic dataset generated
//! from known true weights; after a few dozen steps the learned weights
//! match the truth, and (the DDP invariant) every replica holds
//! bit-identical parameters throughout.
//!
//! ```text
//! cargo run --release --example data_parallel_sgd
//! ```

use fireflyer::reduce::{run_hfreduce, InMemProvider};

const NODES: usize = 4;
const GPUS: usize = 8;
const DIM: usize = 8;
const SAMPLES_PER_GPU: usize = 64;
const STEPS: usize = 80;
const LR: f32 = 0.6;

/// Deterministic pseudo-random f32 in [-1, 1).
fn prand(seed: u64) -> f32 {
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^= x >> 33;
    (x as f64 / u64::MAX as f64 * 2.0 - 1.0) as f32
}

fn main() {
    // The ground truth the cluster should learn.
    let truth: Vec<f32> = (0..DIM).map(|i| (i as f32 - 3.5) / 2.0).collect();

    // Every GPU's private data shard: x ~ U[-1,1)^DIM, y = truth·x.
    let shards: Vec<Vec<(Vec<f32>, f32)>> = (0..NODES * GPUS)
        .map(|g| {
            (0..SAMPLES_PER_GPU)
                .map(|s| {
                    let x: Vec<f32> = (0..DIM)
                        .map(|d| prand((g * 1000 + s * 10 + d) as u64))
                        .collect();
                    let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
                    (x, y)
                })
                .collect()
        })
        .collect();

    // Replicated parameters (the DDP invariant: all equal, always).
    let mut weights = vec![0.0f32; DIM];
    let n_total = (NODES * GPUS * SAMPLES_PER_GPU) as f32;

    for step in 0..STEPS {
        // Each GPU computes the gradient of its shard: ∂/∂w ½(w·x − y)².
        let grads: Vec<Vec<Vec<f32>>> = (0..NODES)
            .map(|node| {
                (0..GPUS)
                    .map(|gpu| {
                        let shard = &shards[node * GPUS + gpu];
                        let mut g = vec![0.0f32; DIM];
                        for (x, y) in shard {
                            let err: f32 =
                                weights.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>() - y;
                            for d in 0..DIM {
                                g[d] += err * x[d];
                            }
                        }
                        g
                    })
                    .collect()
            })
            .collect();

        // The cluster's allreduce: HFReduce over 32 gradient buffers.
        let reduced = run_hfreduce(grads, 4, &InMemProvider, None);
        // Every replica received the identical global gradient.
        let global = &reduced[0][0];
        for node in &reduced {
            for gpu in node {
                assert_eq!(gpu, global, "replicas diverged");
            }
        }
        // SGD step on the (replicated) parameters.
        for d in 0..DIM {
            weights[d] -= LR * global[d] / n_total;
        }
        if step % 20 == 0 {
            let loss: f32 = shards
                .iter()
                .flatten()
                .map(|(x, y)| {
                    let p: f32 = weights.iter().zip(x).map(|(w, xi)| w * xi).sum();
                    (p - y) * (p - y)
                })
                .sum::<f32>()
                / n_total;
            println!("step {step:3}: mse = {loss:.6}");
        }
    }

    let err: f32 = weights
        .iter()
        .zip(&truth)
        .map(|(w, t)| (w - t).abs())
        .fold(0.0, f32::max);
    println!("\nlearned weights : {weights:?}");
    println!("true weights    : {truth:?}");
    println!("max |error|     : {err:.4}");
    assert!(err < 0.02, "training failed to converge");
    println!("\n32 replicas trained in lock-step through HFReduce — converged ✓");
}
