//! Planning an LLM training run on the PCIe architecture (§V).
//!
//! Uses HaiScale's step-time models to answer the questions a user of the
//! platform actually asks: which parallelism layout, how many GPUs, what
//! schedule, and what does the NVLink bridge buy — then sizes the
//! checkpoint cadence against the failure model.
//!
//! ```text
//! cargo run --release --example train_llama
//! ```

use fireflyer::haiscale::models::TrainModel;
use fireflyer::haiscale::pipeline::{pipeline_step, PipelineConfig, Schedule};
use fireflyer::haiscale::strong_scaling_efficiency;
use fireflyer::haiscale::tensor::{tp_layer_comm_time, TpLink};
use fireflyer::ops::OpsSimulation;

fn main() {
    let model = TrainModel::llama_13b();
    println!(
        "planning {} ({:.1}B params, {:.1} GiB of bf16 gradients)\n",
        model.name,
        model.params as f64 / 1e9,
        model.grad_bytes() / (1u64 << 30) as f64
    );

    // 1. Pipeline-depth sweep at 512 GPUs.
    println!("pipeline depth at 512 GPUs (seq 2048, batch 4096):");
    for pp in [2usize, 4, 8, 16] {
        let cfg = PipelineConfig {
            pp,
            ..PipelineConfig::llama_13b_paper()
        };
        let s = pipeline_step(&model, &cfg, 512);
        println!(
            "  pp={pp:2}: step {:6.3}s  (compute {:.3}s, bubble {:.3}s, comm+sync {:.3}s)",
            s.total_s(),
            s.compute_s,
            s.bubble_s,
            s.exposed_comm_s + s.jitter_s
        );
    }

    // 2. Scaling the paper's configuration (Figure 9a).
    println!("\nstrong scaling at the paper's config (pp=4):");
    let cfg = PipelineConfig::llama_13b_paper();
    let t64 = pipeline_step(&model, &cfg, 64).total_s();
    for gpus in [64usize, 128, 256, 512] {
        let t = pipeline_step(&model, &cfg, gpus).total_s();
        println!(
            "  {gpus:4} GPUs: {t:7.3}s/step  efficiency {:.0}%",
            strong_scaling_efficiency(64, t64, gpus, t) * 100.0
        );
    }

    // 3. What Zero-Bubble scheduling would add (§II-B1's ZBPP).
    let zb = pipeline_step(
        &model,
        &PipelineConfig {
            schedule: Schedule::ZeroBubble,
            ..cfg.clone()
        },
        512,
    );
    let base = pipeline_step(&model, &cfg, 512);
    println!(
        "\nZero-Bubble pipeline at 512 GPUs: {:.3}s vs 1F1B {:.3}s ({:.1}% faster)",
        zb.total_s(),
        base.total_s(),
        (base.total_s() / zb.total_s() - 1.0) * 100.0
    );

    // 4. Why the NVLink bridge made TP viable (§V-B1).
    let pcie = tp_layer_comm_time(&model, 4096, TpLink::Pcie);
    let nvl = tp_layer_comm_time(&model, 4096, TpLink::NvLinkBridge);
    println!(
        "\nTP=2 per-layer comm at 4,096 tokens: PCIe {:.2} ms vs NVLink bridge {:.3} ms ({:.0}x)",
        pcie * 1e3,
        nvl * 1e3,
        pcie / nvl
    );

    // 5. Checkpoint cadence under the measured failure rates (§VII-A).
    let report = OpsSimulation {
        days: 14,
        ..Default::default()
    }
    .run();
    println!(
        "\n14 days at the paper's failure rates: {} node failures, {:.4}% of work lost \
         (5-minute checkpoints), utilization {:.1}%",
        report.node_failures,
        report.loss_fraction() * 100.0,
        report.utilization * 100.0
    );
}
