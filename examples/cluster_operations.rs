//! A week in the life of the HAI Platform (§VI-C, §VII): time-sharing
//! scheduling, priority preemption with checkpoint/resume, the weekly
//! hardware validator, a node failure with bounded lost work, and real
//! checkpoints saved to and restored from 3FS.
//!
//! ```text
//! cargo run --release --example cluster_operations
//! ```

use fireflyer::fs3::chain::{Chain, ChainTable};
use fireflyer::fs3::client::Fs3Client;
use fireflyer::fs3::kvstore::KvStore;
use fireflyer::fs3::meta::MetaService;
use fireflyer::fs3::target::{Disk, StorageTarget};
use fireflyer::platform::validator::{node_passes, run_all_checks, NodeUnderTest};
use fireflyer::platform::{CheckpointManager, JobSpec, PlatformConfig, TaskState};
use std::sync::Arc;

fn main() {
    // --- Time-sharing scheduling (§VI-C) ---
    let mut platform = PlatformConfig::new()
        .zones([8, 8])
        .ckpt_interval(300)
        .build()
        .expect("cluster has nodes");
    let research = platform
        .submit(JobSpec::new("resnet-sweep", 4, 6 * 3600))
        .unwrap();
    let dev = platform
        .submit(JobSpec::new("notebook", 1, 24 * 3600))
        .unwrap();
    println!(
        "submitted: {:?} on {:?} nodes, {:?} on {:?}",
        platform.name(research),
        platform.assignment(research),
        platform.name(dev),
        platform.assignment(dev)
    );

    platform.tick(3600);
    let llm = platform
        .submit(JobSpec::new("llama13b-pretrain", 16, 3 * 86_400).priority(10))
        .unwrap();
    println!(
        "high-priority 16-node LLM job arrives: research is now {:?}, LLM {:?} (cross-zone)",
        platform.state(research),
        platform.state(llm)
    );

    // --- A node fails mid-run (§VII-A) ---
    platform.tick(2 * 3600);
    let victim = platform.assignment(llm).expect("llm is placed")[0];
    platform.fail_node(victim);
    println!(
        "node {victim} failed: LLM rolled back to its checkpoint (progress {}s, lost ≤ 300s of work), state {:?}",
        platform.progress(llm).unwrap(),
        platform.state(llm)
    );
    platform.heal_node(victim);
    platform.tick(60);
    println!(
        "node repaired and revalidated: LLM {:?} again; total lost work {} node-seconds",
        platform.state(llm),
        platform.lost_work_s()
    );
    assert_eq!(platform.state(llm), Some(TaskState::Running));

    // --- The weekly validator (§VII-B) ---
    let mut healthy = NodeUnderTest::healthy();
    let mut broken = NodeUnderTest::healthy();
    broken.gpu_memory[3][77] = 0xBD; // a stuck byte in GPU 3's memory
    broken.gemm_fault_gpu = Some(5); // and silent math corruption on GPU 5
    let ok = run_all_checks(&mut healthy);
    let bad = run_all_checks(&mut broken);
    println!(
        "\nvalidator: healthy node passes {}/{} checks; defective node fails:",
        ok.iter().filter(|o| o.passed).count(),
        ok.len()
    );
    for o in bad.iter().filter(|o| !o.passed) {
        println!("  ✗ {}: {}", o.name, o.detail);
    }
    assert!(node_passes(&ok) && !node_passes(&bad));

    // --- Checkpoints on real 3FS (§VII-A) ---
    let chains: Vec<_> = (0..8)
        .map(|c| {
            Chain::new(
                c,
                vec![
                    StorageTarget::new(format!("c{c}a"), Disk::new(256 << 20)),
                    StorageTarget::new(format!("c{c}b"), Disk::new(256 << 20)),
                ],
            )
        })
        .collect();
    let table = Arc::new(ChainTable::new(chains));
    let meta = MetaService::new(KvStore::new(8, 2), table.len());
    let client = Fs3Client::new(meta, table, 16);
    let mgr = CheckpointManager::new(client, "llama13b", 4 << 20).unwrap();

    let state: Vec<(String, Vec<u8>)> = (0..8)
        .map(|i| (format!("layer{i}"), vec![i as u8; 8 << 20]))
        .collect();
    mgr.save_async(1200, state.clone()); // training continues...
    mgr.wait_saves().unwrap(); // any background failure surfaces here
    println!(
        "\nasync checkpoint at step {}: {} tensors indexed",
        1200,
        state.len()
    );
    let restored = mgr.load(mgr.latest_step().unwrap().unwrap()).unwrap();
    assert_eq!(restored, state);
    println!("restored and checksum-verified — ready to resume from step 1200");
}
