//! Cross-crate integration: a training job's full life on the stack —
//! cluster model, collectives, storage, checkpoints, scheduling, failures.

use ff_util::bytes::Bytes;
use fireflyer::fs3::chain::{Chain, ChainTable};
use fireflyer::fs3::client::Fs3Client;
use fireflyer::fs3::kvstore::KvStore;
use fireflyer::fs3::meta::{MetaService, ROOT};
use fireflyer::fs3::target::{Disk, StorageTarget};
use fireflyer::platform::{CheckpointManager, JobSpec, PlatformConfig, TaskState};
use fireflyer::reduce::kernels::reference_sum;
use fireflyer::reduce::model::{hfreduce_steady, HfReduceOptions};
use fireflyer::reduce::{run_hfreduce, ClusterConfig, InMemProvider};
use std::sync::Arc;

fn storage_stack() -> Arc<Fs3Client> {
    let disks: Vec<_> = (0..4).map(|_| Disk::new(512 << 20)).collect();
    let chains: Vec<_> = (0..8)
        .map(|c| {
            let reps = (0..2)
                .map(|r| StorageTarget::new(format!("c{c}r{r}"), disks[(c + r) % 4].clone()))
                .collect();
            Chain::new(c, reps)
        })
        .collect();
    let table = Arc::new(ChainTable::new(chains));
    let meta = MetaService::new(KvStore::new(8, 2), table.len());
    Fs3Client::new(meta, table, 16)
}

/// The full training loop shape: compute gradients (synthetically),
/// allreduce them with the real HFReduce, checkpoint the "model" to 3FS,
/// crash, restore, verify bit-exact state.
#[test]
fn train_checkpoint_crash_restore() {
    let nodes = 3usize;
    let gpus = 4usize;
    let len = 2048usize;
    // Step 1: gradients on every GPU.
    let grads: Vec<Vec<Vec<f32>>> = (0..nodes)
        .map(|v| {
            (0..gpus)
                .map(|g| {
                    (0..len)
                        .map(|i| ((v * 7 + g * 3 + i) % 13) as f32)
                        .collect()
                })
                .collect()
        })
        .collect();
    let expect = reference_sum(&grads.iter().flatten().cloned().collect::<Vec<_>>());
    let reduced = run_hfreduce(grads, 4, &InMemProvider, None);
    assert_eq!(reduced[0][0], expect);

    // Step 2: apply the "update" and checkpoint to 3FS.
    let weights: Vec<u8> = reduced[0][0].iter().flat_map(|x| x.to_le_bytes()).collect();
    let client = storage_stack();
    let mgr = CheckpointManager::new(client, "run1", 64 << 10).unwrap();
    mgr.save(1, &[("weights".into(), weights.clone())]).unwrap();

    // Step 3: "crash" — a brand-new manager over the same storage finds
    // and restores the state.
    let latest = mgr.latest_step().unwrap().unwrap();
    let restored = mgr.load(latest).unwrap();
    assert_eq!(restored[0].1, weights);
    let back: Vec<f32> = restored[0]
        .1
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
        .collect();
    assert_eq!(back, expect);
}

/// The scheduler + storage combination: a preempted task's state survives
/// in 3FS and the job finishes after resumption.
#[test]
fn preemption_with_real_checkpoints() {
    let client = storage_stack();
    let mgr = CheckpointManager::new(client, "preempt", 64 << 10).unwrap();
    let mut p = PlatformConfig::new()
        .zones([4, 0])
        .ckpt_interval(300)
        .build()
        .unwrap();
    let low = p.submit(JobSpec::new("exp", 4, 7200)).unwrap();
    p.tick(3600);
    // The platform interrupts; the task saves its state (the protocol of
    // §VI-C) — here, for real.
    let state = vec![("progress".to_string(), 3600u64.to_le_bytes().to_vec())];
    mgr.save(3600, &state).unwrap();
    let high = p
        .submit(JobSpec::new("urgent", 4, 600).priority(9))
        .unwrap();
    assert_eq!(p.state(low), Some(TaskState::Interrupted));
    p.tick(600);
    assert_eq!(p.state(high), Some(TaskState::Succeeded));
    assert_eq!(p.state(low), Some(TaskState::Running));
    // Recover the saved position.
    let restored = mgr.load(mgr.latest_step().unwrap().unwrap()).unwrap();
    let pos = u64::from_le_bytes(restored[0].1[..8].try_into().unwrap());
    assert_eq!(pos, 3600);
    assert_eq!(
        p.progress(low),
        Some(3600),
        "no work lost on graceful preemption"
    );
    p.tick(3600);
    assert_eq!(p.state(low), Some(TaskState::Succeeded));
}

/// The §VI-B dataset pipeline: many writers fill a striped dataset file,
/// a training job batch-reads it back through the RTS-limited client.
#[test]
fn dataset_write_read_pipeline() {
    let client = storage_stack();
    let dir = client.meta().mkdir(ROOT, "data").unwrap();
    let file = client
        .meta()
        .create(dir.ino, "shard.bin", 32 << 10, 4)
        .unwrap();
    let parts: Vec<(u64, Bytes)> = (0..32u64)
        .map(|i| (i * (32 << 10), Bytes::from(vec![(i * 3) as u8; 32 << 10])))
        .collect();
    client.batch_write(&file, parts).unwrap();
    let got = client
        .batch_read(
            &file,
            (0..32u64).map(|i| (i * (32 << 10), 32 << 10)).collect(),
        )
        .unwrap();
    for (i, blob) in got.iter().enumerate() {
        assert!(blob.iter().all(|&b| b == (i * 3) as u8), "shard {i}");
    }
    // The metadata survives a second, independent meta service handle
    // (stateless over the same KV — §VI-B3).
    let size = client.meta().resolve("/data/shard.bin").unwrap().size;
    assert_eq!(size, 32 * (32 << 10));
}

/// The simulation substrate and the executable algorithms tell one story:
/// the sim's HFReduce bandwidth beats its NCCL baseline exactly where the
/// real implementations agree on results.
#[test]
fn model_and_execution_agree() {
    let bytes = 32.0 * 1024.0 * 1024.0;
    let hf = hfreduce_steady(
        &ClusterConfig::fire_flyer(2),
        bytes,
        &HfReduceOptions::default(),
    );
    let nccl = fireflyer::reduce::ring::ring_analytic_bw(16, bytes);
    assert!(hf.algbw_bps > nccl, "sim: HFReduce must beat NCCL");
    // Executable cross-check at the same shape (2 nodes × 8 GPUs).
    let inputs: Vec<Vec<f32>> = (0..16)
        .map(|r| (0..512).map(|i| ((r + i) % 9) as f32).collect())
        .collect();
    use fireflyer::reduce::Algo;
    let tree = fireflyer::reduce::run_allreduce(
        inputs.clone(),
        Algo::DbTree { chunks: 4 },
        &InMemProvider,
        None,
    );
    let ring = fireflyer::reduce::run_allreduce(inputs, Algo::Ring, &InMemProvider, None);
    assert_eq!(tree[0], ring[0], "both algorithms compute the same sum");
}
