//! Deterministic-replay harness: the ff-obs trace of a run is a pure
//! function of its seed. Same seed → byte-identical canonical trace and
//! digest, even when the traced code is genuinely multi-threaded
//! (crossbeam ranks racing over channels) or fault-injected (ranks dying
//! mid-collective, checkpoints corrupted). Different seeds → different
//! digests.

use ff_util::rng::ChaCha8Rng;
use fireflyer::obs::{chrome::export_chrome_json, Recorder};
use fireflyer::platform::recovery::{train_with_recovery_traced, JobFaults, TrainerConfig};
use fireflyer::reduce::{
    allreduce_dbtree_ft_traced, allreduce_dbtree_traced, hfreduce_exec_traced, ExecFaultPlan,
    ObsCtx,
};
use std::time::Duration;

/// Seeded rank buffers for the threaded collectives.
fn seeded_inputs(seed: u64, ranks: usize, len: usize) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..ranks)
        .map(|_| (0..len).map(|_| (rng.next_u32() % 97) as f32).collect())
        .collect()
}

/// Seeded fault script for the recovery loop, within the default
/// 6-rank / 40-step / ckpt-every-8 job.
fn seeded_faults(seed: u64) -> JobFaults {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    JobFaults {
        kills: vec![(rng.gen_range(10..35u64), rng.gen_range(1..6usize))],
        corrupt_ckpts: vec![8 * rng.gen_range(1..4u64)],
        degrades: vec![(rng.gen_range(2..9u64), rng.gen_range(0..6usize))],
    }
}

/// Run the full recovery loop under `seed`'s fault script and return the
/// canonical trace text + digest.
fn recovery_trace(seed: u64) -> (String, String) {
    let cfg = TrainerConfig::default();
    let faults = seeded_faults(seed);
    let rec = Recorder::new();
    let out = train_with_recovery_traced(&cfg, &faults, Some(&rec)).expect("recovery run");
    assert_eq!(out.steps, cfg.steps, "job must run to completion");
    assert!(rec.event_count() > 0, "trace must not be empty");
    (rec.canonical(), rec.digest())
}

#[test]
fn threaded_allreduce_same_seed_is_byte_identical() {
    let run = |seed: u64, len: usize| {
        let rec = Recorder::new();
        let obs = ObsCtx::new(&rec, "reduce", 0);
        let out = allreduce_dbtree_traced(seeded_inputs(seed, 8, len), 4, &obs);
        (out, rec.canonical(), rec.digest())
    };
    let (out_a, canon_a, dig_a) = run(7, 512);
    let (out_b, canon_b, dig_b) = run(7, 512);
    assert_eq!(out_a, out_b, "allreduce result must be deterministic");
    assert_eq!(canon_a, canon_b, "canonical trace must be byte-identical");
    assert_eq!(dig_a, dig_b);
    // The trace captures the communication *schedule* — payload values
    // don't appear in it, so a different seed at the same shape replays
    // to the same digest, while a different message size must not.
    let (_, _, dig_same_shape) = run(8, 512);
    assert_eq!(
        dig_a, dig_same_shape,
        "schedule is shape-, not data-dependent"
    );
    let (_, _, dig_c) = run(7, 640);
    assert_ne!(
        dig_a, dig_c,
        "a different message size must change the digest"
    );
}

#[test]
fn fault_tolerant_allreduce_replay_is_stable() {
    // A rank dies mid-collective; survivor detection involves real
    // timeouts, so only the clean shrunk attempt and the ctl-track facts
    // land in the trace — and those must replay byte-for-byte.
    let run = || {
        let rec = Recorder::new();
        let obs = ObsCtx::new(&rec, "reduce", 0);
        let plan = ExecFaultPlan {
            deaths: vec![(2, 3)],
            recv_timeout: Duration::from_millis(50),
        };
        let rep = allreduce_dbtree_ft_traced(seeded_inputs(3, 6, 256), 4, &plan, &obs);
        assert_eq!(rep.dead, vec![2]);
        (rec.canonical(), rec.digest())
    };
    let (canon_a, dig_a) = run();
    let (canon_b, dig_b) = run();
    assert_eq!(canon_a, canon_b);
    assert_eq!(dig_a, dig_b);
}

#[test]
fn hfreduce_replay_is_stable() {
    let run = || {
        let rec = Recorder::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let bufs: Vec<Vec<Vec<f32>>> = (0..3)
            .map(|_| {
                (0..4)
                    .map(|_| (0..256).map(|_| (rng.next_u32() % 31) as f32).collect())
                    .collect()
            })
            .collect();
        hfreduce_exec_traced(bufs, 2, &ObsCtx::new(&rec, "reduce", 0));
        (rec.canonical(), rec.digest())
    };
    assert_eq!(run(), run());
}

#[test]
fn recovery_run_same_seed_same_digest() {
    let (canon_a, dig_a) = recovery_trace(42);
    let (canon_b, dig_b) = recovery_trace(42);
    assert_eq!(
        canon_a, canon_b,
        "same fault script must produce a byte-identical trace"
    );
    assert_eq!(dig_a, dig_b);
}

#[test]
fn recovery_run_different_seeds_differ() {
    // Pinned seeds whose fault scripts differ (kill step / rank, corrupt
    // checkpoint, degrade site all drawn from the seed).
    let (_, dig_a) = recovery_trace(1);
    let (_, dig_b) = recovery_trace(2);
    let (_, dig_c) = recovery_trace(3);
    assert_ne!(dig_a, dig_b);
    assert_ne!(dig_b, dig_c);
    assert_ne!(dig_a, dig_c);
}

#[test]
fn recovery_trace_covers_the_whole_stack() {
    let cfg = TrainerConfig::default();
    let faults = seeded_faults(42);
    let rec = Recorder::new();
    train_with_recovery_traced(&cfg, &faults, Some(&rec)).expect("recovery run");
    let json = export_chrome_json(&rec);
    let tracks = rec.snapshot().tracks;
    // Every layer of the stack must appear as a named track in the
    // Chrome trace: the desim fluid model, the collective, the file
    // system, and the platform loop.
    for prefix in ["desim", "reduce", "fs3", "platform"] {
        let track = tracks
            .iter()
            .find(|t| t.starts_with(prefix))
            .unwrap_or_else(|| panic!("trace must contain a {prefix} track"));
        assert!(
            json.contains(&format!(r#""args":{{"name":"{track}"}}"#)),
            "chrome export must name the {track} track"
        );
    }
    assert!(json.starts_with("{\"traceEvents\":["));
}
