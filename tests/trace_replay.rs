//! Deterministic-replay harness: the ff-obs trace of a run is a pure
//! function of its seed. Same seed → byte-identical canonical trace and
//! digest, even when the traced code is genuinely multi-threaded
//! (crossbeam ranks racing over channels) or fault-injected (ranks dying
//! mid-collective, checkpoints corrupted). Different seeds → different
//! digests.

use ff_util::rng::ChaCha8Rng;
use ff_util::scengen::{ArrivalConfig, ArrivalTrace};
use fireflyer::desim::{FlowId, FluidSim, ResourceId, Route, SimDuration, SimTime};
use fireflyer::obs::{chrome::export_chrome_json, Recorder};
use fireflyer::platform::recovery::{train_with_recovery_traced, JobFaults, TrainerConfig};
use fireflyer::platform::{JobSpec, PlatformConfig, ServingSpec};
use fireflyer::reduce::{
    allreduce_ft, run_allreduce, run_hfreduce, Algo, ExecFaultPlan, FabricProvider, InMemProvider,
    ObsCtx, TcpProvider,
};
use fireflyer::reduce::{ClusterConfig, ClusterModel};
use std::time::Duration;

/// Seeded rank buffers for the threaded collectives.
fn seeded_inputs(seed: u64, ranks: usize, len: usize) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..ranks)
        .map(|_| (0..len).map(|_| (rng.next_u32() % 97) as f32).collect())
        .collect()
}

/// Seeded fault script for the recovery loop, within the default
/// 6-rank / 40-step / ckpt-every-8 job.
fn seeded_faults(seed: u64) -> JobFaults {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    JobFaults {
        kills: vec![(rng.gen_range(10..35u64), rng.gen_range(1..6usize))],
        corrupt_ckpts: vec![8 * rng.gen_range(1..4u64)],
        degrades: vec![(rng.gen_range(2..9u64), rng.gen_range(0..6usize))],
        ..JobFaults::default()
    }
}

/// Run the full recovery loop under `seed`'s fault script and return the
/// canonical trace text + digest.
fn recovery_trace(seed: u64) -> (String, String) {
    let cfg = TrainerConfig::default();
    let faults = seeded_faults(seed);
    let rec = Recorder::new();
    let out = train_with_recovery_traced(&cfg, &faults, Some(&rec)).expect("recovery run");
    assert_eq!(out.steps, cfg.steps, "job must run to completion");
    assert!(rec.event_count() > 0, "trace must not be empty");
    (rec.canonical(), rec.digest())
}

#[test]
fn threaded_allreduce_same_seed_is_byte_identical() {
    let run = |seed: u64, len: usize| {
        let rec = Recorder::new();
        let obs = ObsCtx::new(&rec, "reduce", 0);
        let out = run_allreduce(
            seeded_inputs(seed, 8, len),
            Algo::DbTree { chunks: 4 },
            &InMemProvider,
            Some(&obs),
        );
        (out, rec.canonical(), rec.digest())
    };
    let (out_a, canon_a, dig_a) = run(7, 512);
    let (out_b, canon_b, dig_b) = run(7, 512);
    assert_eq!(out_a, out_b, "allreduce result must be deterministic");
    assert_eq!(canon_a, canon_b, "canonical trace must be byte-identical");
    assert_eq!(dig_a, dig_b);
    // The trace captures the communication *schedule* — payload values
    // don't appear in it, so a different seed at the same shape replays
    // to the same digest, while a different message size must not.
    let (_, _, dig_same_shape) = run(8, 512);
    assert_eq!(
        dig_a, dig_same_shape,
        "schedule is shape-, not data-dependent"
    );
    let (_, _, dig_c) = run(7, 640);
    assert_ne!(
        dig_a, dig_c,
        "a different message size must change the digest"
    );
}

#[test]
fn fault_tolerant_allreduce_replay_is_stable() {
    // A rank dies mid-collective; survivor detection involves real
    // timeouts, so only the clean shrunk attempt and the ctl-track facts
    // land in the trace — and those must replay byte-for-byte.
    let run = || {
        let rec = Recorder::new();
        let obs = ObsCtx::new(&rec, "reduce", 0);
        let plan = ExecFaultPlan {
            deaths: vec![(2, 3)],
            recv_timeout: Duration::from_millis(50),
        };
        let rep = allreduce_ft(
            seeded_inputs(3, 6, 256),
            4,
            &plan,
            &InMemProvider,
            Some(&obs),
        );
        assert_eq!(rep.dead, vec![2]);
        (rec.canonical(), rec.digest())
    };
    let (canon_a, dig_a) = run();
    let (canon_b, dig_b) = run();
    assert_eq!(canon_a, canon_b);
    assert_eq!(dig_a, dig_b);
}

#[test]
fn hfreduce_replay_is_stable() {
    let run = || {
        let rec = Recorder::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let bufs: Vec<Vec<Vec<f32>>> = (0..3)
            .map(|_| {
                (0..4)
                    .map(|_| (0..256).map(|_| (rng.next_u32() % 31) as f32).collect())
                    .collect()
            })
            .collect();
        run_hfreduce(
            bufs,
            2,
            &InMemProvider,
            Some(&ObsCtx::new(&rec, "reduce", 0)),
        );
        (rec.canonical(), rec.digest())
    };
    assert_eq!(run(), run());
}

/// One traced dbtree allreduce + one traced HFReduce over the given
/// fabric backend; the schedule the trace captures must not depend on
/// the transport.
fn fabric_trace<P: FabricProvider>(provider: &P) -> (String, String) {
    let rec = Recorder::new();
    let obs = ObsCtx::new(&rec, "reduce", 0);
    run_allreduce(
        seeded_inputs(7, 6, 192),
        Algo::DbTree { chunks: 3 },
        provider,
        Some(&obs),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let bufs: Vec<Vec<Vec<f32>>> = (0..3)
        .map(|_| {
            (0..2)
                .map(|_| (0..96).map(|_| (rng.next_u32() % 29) as f32).collect())
                .collect()
        })
        .collect();
    run_hfreduce(
        bufs,
        2,
        provider,
        Some(&ObsCtx::new(&rec, "hfreduce", 1_000_000_000)),
    );
    (rec.canonical(), rec.digest())
}

/// Digest of [`fabric_trace`] captured over the in-memory fabric. Real
/// TCP sockets must replay the identical communication schedule: the
/// trace is a property of the algorithm, not of the wires under it.
const FABRIC_GOLDEN_DIGEST: &str = "6df5492226edd2c8";

#[test]
fn collective_trace_is_transport_invariant() {
    let (canon_mem, dig_mem) = fabric_trace(&InMemProvider);
    let (canon_tcp, dig_tcp) = fabric_trace(&TcpProvider);
    assert_eq!(
        canon_mem, canon_tcp,
        "in-mem and TCP fabrics must trace byte-identically"
    );
    assert_eq!(
        dig_mem, FABRIC_GOLDEN_DIGEST,
        "schedule drifted from golden"
    );
    assert_eq!(dig_tcp, FABRIC_GOLDEN_DIGEST);
}

#[test]
fn recovery_run_same_seed_same_digest() {
    let (canon_a, dig_a) = recovery_trace(42);
    let (canon_b, dig_b) = recovery_trace(42);
    assert_eq!(
        canon_a, canon_b,
        "same fault script must produce a byte-identical trace"
    );
    assert_eq!(dig_a, dig_b);
}

#[test]
fn recovery_run_different_seeds_differ() {
    // Pinned seeds whose fault scripts differ (kill step / rank, corrupt
    // checkpoint, degrade site all drawn from the seed).
    let (_, dig_a) = recovery_trace(1);
    let (_, dig_b) = recovery_trace(2);
    let (_, dig_c) = recovery_trace(3);
    assert_ne!(dig_a, dig_b);
    assert_ne!(dig_b, dig_c);
    assert_ne!(dig_a, dig_c);
}

#[test]
fn recovery_trace_covers_the_whole_stack() {
    let cfg = TrainerConfig::default();
    let faults = seeded_faults(42);
    let rec = Recorder::new();
    train_with_recovery_traced(&cfg, &faults, Some(&rec)).expect("recovery run");
    let json = export_chrome_json(&rec);
    let tracks = rec.snapshot().tracks;
    // Every layer of the stack must appear as a named track in the
    // Chrome trace: the desim fluid model, the collective, the file
    // system, and the platform loop.
    for prefix in ["desim", "reduce", "fs3", "platform"] {
        let track = tracks
            .iter()
            .find(|t| t.starts_with(prefix))
            .unwrap_or_else(|| panic!("trace must contain a {prefix} track"));
        assert!(
            json.contains(&format!(r#""args":{{"name":"{track}"}}"#)),
            "chrome export must name the {track} track"
        );
    }
    assert!(json.starts_with("{\"traceEvents\":["));
}

// ---------------------------------------------------------------------------
// Fluid-solver golden trace: a fixed-seed 64-node run whose ff-obs trace is
// pinned to a hardcoded digest. The max-min solver may be reimplemented (the
// incremental rewrite), but every *observable* event — transfer spans,
// degrade/restore instants — must stay byte-identical. The one exception is
// the `waterfill_rounds` counter: it measures solver effort, which a solver
// swap legitimately changes, so its line is stripped before digesting.
// ---------------------------------------------------------------------------

const NODES: usize = 64;
const NODES_PER_LEAF: usize = 8;

/// Per-node and per-leaf fluid resources of the synthetic 64-node cluster.
struct Cluster64 {
    membus: Vec<ResourceId>,
    nic_up: Vec<ResourceId>,
    nic_down: Vec<ResourceId>,
    leaf_fab: Vec<ResourceId>,
    leaf_up: Vec<ResourceId>,
    leaf_down: Vec<ResourceId>,
}

fn build_cluster64(sim: &mut FluidSim) -> Cluster64 {
    let mut c = Cluster64 {
        membus: Vec::new(),
        nic_up: Vec::new(),
        nic_down: Vec::new(),
        leaf_fab: Vec::new(),
        leaf_up: Vec::new(),
        leaf_down: Vec::new(),
    };
    for n in 0..NODES {
        c.membus.push(sim.add_resource(format!("membus{n}"), 40.0));
        c.nic_up.push(sim.add_resource(format!("nicup{n}"), 25.0));
        c.nic_down.push(sim.add_resource(format!("nicdn{n}"), 25.0));
    }
    for l in 0..NODES / NODES_PER_LEAF {
        c.leaf_fab.push(sim.add_resource(format!("fab{l}"), 400.0));
        c.leaf_up.push(sim.add_resource(format!("up{l}"), 200.0));
        c.leaf_down
            .push(sim.add_resource(format!("down{l}"), 200.0));
    }
    c
}

/// The route of an RDMA-style transfer from `src` to `dst`: host memory and
/// NIC on both ends (memory traffic at 2× the wire bytes), plus the leaf
/// fabric (same leaf) or the spine up/down hops (cross-leaf).
fn route64(c: &Cluster64, src: usize, dst: usize) -> Route {
    let mut r = Route::default();
    r.push(c.membus[src], 2.0);
    r.push(c.nic_up[src], 1.0);
    let (ls, ld) = (src / NODES_PER_LEAF, dst / NODES_PER_LEAF);
    if ls == ld {
        r.push(c.leaf_fab[ls], 1.0);
    } else {
        r.push(c.leaf_up[ls], 1.0);
        r.push(c.leaf_down[ld], 1.0);
    }
    r.push(c.nic_down[dst], 1.0);
    r.push(c.membus[dst], 2.0);
    r
}

/// One scheduled control action of the golden run.
enum Ctl {
    Wave(Vec<(usize, usize, f64)>),
    Degrade(usize, f64),
    Restore(usize),
    CancelSome(usize),
}

/// Drive the fixed-seed 64-node run and return the canonical ff-obs trace
/// with solver-internal counter lines stripped, plus its FNV digest.
fn fluid_cluster_trace(seed: u64) -> (String, String) {
    let rec = Recorder::new();
    let mut sim = FluidSim::new();
    sim.attach_recorder(&rec, "desim/fluid64", 0);
    let c = build_cluster64(&mut sim);

    // Pre-draw the whole control schedule (wave membership, fault sites)
    // from one stream; cancels draw from a second stream at apply time
    // because the victim set depends on simulation state.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cancel_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
    let mut controls: Vec<(SimTime, Ctl)> = Vec::new();
    for wave in 0..6u64 {
        let t0 = SimTime::from_secs(2 * wave);
        let flows: Vec<(usize, usize, f64)> = (0..60)
            .map(|_| {
                let src = rng.gen_range(0..NODES);
                let mut dst = rng.gen_range(0..NODES);
                if dst == src {
                    dst = (dst + 1) % NODES;
                }
                (src, dst, rng.gen_range(5.0f64..50.0))
            })
            .collect();
        controls.push((t0, Ctl::Wave(flows)));
        let victim = rng.gen_range(0..NODES);
        controls.push((
            t0 + SimDuration::from_millis(500),
            Ctl::Degrade(victim, rng.gen_range(0.25f64..0.75)),
        ));
        controls.push((t0 + SimDuration::from_millis(1000), Ctl::Restore(victim)));
        controls.push((t0 + SimDuration::from_millis(1500), Ctl::CancelSome(3)));
    }

    let mut active: Vec<FlowId> = Vec::new();
    let drain_until = |sim: &mut FluidSim, active: &mut Vec<FlowId>, t: SimTime| {
        while let Some(tc) = sim.next_completion_time() {
            if tc > t {
                break;
            }
            let (_, done) = sim.advance_to_next_completion().expect("flows active");
            active.retain(|id| !done.contains(id));
        }
        sim.advance_to(t);
    };
    for (t, ctl) in controls {
        drain_until(&mut sim, &mut active, t);
        match ctl {
            Ctl::Wave(flows) => {
                for (src, dst, work) in flows {
                    active.push(sim.start_flow(work, &route64(&c, src, dst)));
                }
            }
            Ctl::Degrade(n, factor) => sim.degrade(c.nic_up[n], factor).expect("valid degrade"),
            Ctl::Restore(n) => sim.restore(c.nic_up[n]).expect("valid restore"),
            Ctl::CancelSome(k) => {
                for _ in 0..k {
                    if active.is_empty() {
                        break;
                    }
                    let i = cancel_rng.gen_range(0..active.len());
                    sim.cancel_flow(active.swap_remove(i));
                }
            }
        }
    }
    while let Some((_, done)) = sim.advance_to_next_completion() {
        active.retain(|id| !done.contains(id));
    }
    assert!(active.is_empty(), "all flows completed or cancelled");

    let filtered: String = rec
        .canonical()
        .lines()
        .filter(|l| !(l.starts_with("counter ") && l.contains("/waterfill_rounds ")))
        .map(|l| format!("{l}\n"))
        .collect();
    let digest = format!("{:016x}", fnv1a(filtered.as_bytes()));
    (filtered, digest)
}

/// FNV-1a with a length fold — the same shape `ff-obs` uses for its trace
/// digest, reimplemented here so the golden constant is self-contained.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ (data.len() as u64)
}

// ---------------------------------------------------------------------------
// Mixed serve+train golden trace: a fluid-mode platform co-scheduling a
// serving job with preemptible training under scripted failures. The ff-obs
// trace (scheduler spans/instants, serving latency histogram + SLO gauges,
// checkpoint chains, fluid transfers) is pinned to one digest and must be
// byte-identical at 1, 2 and 4 solver threads — parallelism may change wall
// time, never the simulated timeline.
// ---------------------------------------------------------------------------

/// One fixed mixed serving+training run at the given solver thread count.
fn mixed_serve_train_trace(threads: usize) -> (String, String) {
    let rec = Recorder::new();
    let mut p = PlatformConfig::new()
        .cluster(ClusterModel::build(&ClusterConfig::fire_flyer(16)))
        .solver_threads(threads)
        .ckpt_interval(60)
        .recorder(rec.clone())
        .build()
        .expect("16-node fluid platform builds");
    let trace = ArrivalTrace::generate(
        0x5E11,
        &ArrivalConfig {
            duration_s: 120.0,
            base_qps: 1.5,
            ..ArrivalConfig::default()
        },
    );
    p.submit_serving(ServingSpec::new("serve-gold", 2, 2, trace))
        .expect("serving fits");
    for i in 0..3 {
        p.submit(
            JobSpec::new(format!("train-gold{i}"), 4 + i, 200)
                .priority(i as i32)
                .step_bytes(4.0 * (1u64 << 30) as f64)
                .ckpt_bytes(8.0 * (1u64 << 30) as f64),
        )
        .expect("training fits");
    }
    // Scripted churn: a failure into each workload's window plus a heal.
    p.tick(30);
    p.fail_node(1);
    p.tick(40);
    p.fail_node(9);
    p.tick(50);
    p.heal_node(1);
    p.heal_node(9);
    p.tick(600);
    let filtered: String = rec
        .canonical()
        .lines()
        .filter(|l| !(l.starts_with("counter ") && l.contains("/waterfill_rounds ")))
        .map(|l| format!("{l}\n"))
        .collect();
    let digest = format!("{:016x}", fnv1a(filtered.as_bytes()));
    (filtered, digest)
}

/// Digest captured at 1 solver thread; the simulated timeline of the mixed
/// serve+train run may never depend on solver parallelism.
const MIXED_GOLDEN_DIGEST: &str = "8ac29686d5e05481";

#[test]
fn mixed_serve_train_digest_is_thread_invariant() {
    for threads in [1usize, 2, 4] {
        let (canon, digest) = mixed_serve_train_trace(threads);
        if std::env::var_os("MIXED_DUMP").is_some() {
            std::fs::write(format!("/tmp/mixed{threads}.trace"), &canon).expect("dump trace");
        }
        // Sanity: the run exercised both workloads and the fault path.
        assert!(
            canon.lines().any(|l| l.contains("platform/serve")),
            "trace must carry the serving track"
        );
        assert!(
            canon.lines().any(|l| l.contains("serve/latency_us")),
            "trace must carry serving latency observations"
        );
        assert!(canon.lines().any(|l| l.contains("node-fail")));
        assert_eq!(
            digest, MIXED_GOLDEN_DIGEST,
            "mixed serve+train timeline changed at {threads} solver threads"
        );
    }
}

/// Digest captured from the pre-rewrite global-recompute solver. The
/// incremental solver must reproduce the same observable timeline to the
/// nanosecond: every transfer span (start, duration, route, work) and every
/// degrade/restore instant, byte for byte.
const FLUID64_GOLDEN_DIGEST: &str = "56a289b66c02efd3";

#[test]
fn fluid_solver_golden_trace_64_nodes() {
    let (canon, digest) = fluid_cluster_trace(0xF1F1);
    if std::env::var_os("FLUID64_DUMP").is_some() {
        std::fs::write("/tmp/fluid64.trace", &canon).expect("dump trace");
    }
    // Sanity: the run exercised transfers, faults, and recoveries.
    assert!(canon.lines().filter(|l| l.starts_with("span ")).count() > 300);
    assert!(canon
        .lines()
        .any(|l| l.starts_with("inst ") && l.contains("degrade ")));
    assert!(canon
        .lines()
        .any(|l| l.starts_with("inst ") && l.contains("restore ")));
    assert_eq!(
        digest,
        FLUID64_GOLDEN_DIGEST,
        "observable fluid timeline changed; first 20 lines:\n{}",
        canon.lines().take(20).collect::<Vec<_>>().join("\n")
    );
}
