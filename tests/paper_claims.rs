//! The paper's headline claims, asserted end-to-end against this
//! reproduction (the executable summary of EXPERIMENTS.md).

use fireflyer::haiscale::models::TrainModel;
use fireflyer::haiscale::moe::{moe_step, MoeConfig};
use fireflyer::haiscale::pipeline::{pipeline_step, PipelineConfig};
use fireflyer::haiscale::strong_scaling_efficiency;
use fireflyer::hw::power::ClusterPower;
use fireflyer::hw::NodeSpec;
use fireflyer::reduce::model::{hfreduce_steady, HfReduceOptions, HfReduceVariant};
use fireflyer::reduce::ring::ring_analytic_bw;
use fireflyer::reduce::ClusterConfig;
use fireflyer::topo::cost::{dgx_arch, our_arch};
use fireflyer::FireFlyer2;

const MIB: f64 = 1024.0 * 1024.0;

/// "achieved performance approximating the DGX-A100 while reducing costs
/// by half and energy consumption by 40%" (abstract).
#[test]
fn headline_cost_performance_power() {
    let node = NodeSpec::pcie_a100();
    assert!((node.relative_performance() - 0.83).abs() < 0.01);
    assert!(our_arch().total() < dgx_arch().total() * 0.52);
    let ours = ClusterPower::fire_flyer2().total_watts();
    let dgx = ClusterPower::dgx_equivalent().total_watts();
    assert!(ours < dgx * 0.62, "power: {ours} vs {dgx}");
}

/// Figure 7a: "HFReduce can reach 6.3–8.1 GB/s ... while NCCL's inter-node
/// bandwidth is only 1.6–4.8 GB/s" — and the gap *widens* with scale.
#[test]
fn hfreduce_beats_nccl_with_widening_gap() {
    let bytes = 186.0 * MIB;
    let mut last_ratio = 0.0;
    for nodes in [2usize, 16, 64] {
        let hf = hfreduce_steady(
            &ClusterConfig::fire_flyer(nodes),
            bytes,
            &HfReduceOptions::default(),
        )
        .algbw_bps;
        let nccl = ring_analytic_bw(nodes * 8, bytes);
        let ratio = hf / nccl;
        assert!(ratio > 1.5, "{nodes} nodes: ratio {ratio}");
        assert!(ratio > last_ratio, "gap must widen with scale");
        assert!(hf > 6.3e9, "{nodes} nodes: HFReduce {hf} below the band");
        last_ratio = ratio;
    }
}

/// §IV-C: "HFReduce with NVLink achieves inter-node bandwidths exceeding
/// 10 GB/s."
#[test]
fn nvlink_variant_exceeds_10gbs() {
    let r = hfreduce_steady(
        &ClusterConfig::fire_flyer_nvlink(8),
        186.0 * MIB,
        &HfReduceOptions {
            variant: HfReduceVariant::NvLink,
            ..Default::default()
        },
    );
    assert!(r.algbw_bps > 10e9, "got {}", r.algbw_bps);
}

/// Figure 9a/9b: the training step times and parallel efficiencies.
#[test]
fn llm_training_scaling_matches() {
    let llama = TrainModel::llama_13b();
    let cfg = PipelineConfig::llama_13b_paper();
    let t64 = pipeline_step(&llama, &cfg, 64).total_s();
    let t512 = pipeline_step(&llama, &cfg, 512).total_s();
    assert!((t64 - 64.118).abs() / 64.118 < 0.10);
    assert!((t512 - 9.717).abs() / 9.717 < 0.10);

    let moe = TrainModel::deepseek_moe_16b();
    let mcfg = MoeConfig::deepseek_moe_16b_paper();
    let t40 = moe_step(&moe, &mcfg, 40).total_s();
    let t640 = moe_step(&moe, &mcfg, 640).total_s();
    assert!((t40 - 79.615).abs() / 79.615 < 0.12);
    assert!((t640 - 6.535).abs() / 6.535 < 0.12);
    let e320 = strong_scaling_efficiency(40, t40, 320, moe_step(&moe, &mcfg, 320).total_s());
    assert!(e320 > 0.85, "320-GPU efficiency {e320}");
}

/// §VI-B2: storage aggregate throughput reaches most of the 9 TB/s NIC
/// ceiling (8 TB/s in production).
#[test]
fn storage_efficiency_in_the_paper_regime() {
    let r = fireflyer::fs3::throughput::run(&fireflyer::fs3::throughput::ThroughputConfig {
        storage_nodes: 9,
        clients: 60,
        requests_per_client: 12,
        ..fireflyer::fs3::throughput::ThroughputConfig::scaled()
    });
    assert!(
        r.efficiency > 0.70 && r.efficiency <= 1.0,
        "efficiency {}",
        r.efficiency
    );
}

/// The deployment adds up: 10,000 GPUs, 122 switches, ~3.4 MW.
#[test]
fn deployment_inventory() {
    let ff2 = FireFlyer2::paper();
    assert_eq!(ff2.total_gpus(), 10_000);
    assert_eq!(ff2.network_cost().switches, 122);
    let mw = ff2.power().total_watts() / 1e6;
    assert!(mw > 3.0 && mw < 4.0, "{mw} MW");
    assert!((ff2.storage_egress_bw() - 9e12).abs() < 1e9);
}

/// §VII-C: the failure model reproduces the characterization: Xid-74 at
/// ~42.6%, below the 52.4% NVLink share reported for the other
/// architecture (§VIII-D).
#[test]
fn failure_characterization_reproduced() {
    use fireflyer::failures::generator::{FailureGenerator, YEAR_S};
    use fireflyer::failures::report::xid_table;
    use fireflyer::failures::Xid;
    let events = FailureGenerator::paper_calibrated(123, 1250).generate(YEAR_S);
    let table = xid_table(&events);
    let nv = table.iter().find(|r| r.xid == Xid(74)).unwrap().percentage;
    assert!((nv - 42.57).abs() < 2.0, "Xid74 share {nv}");
    assert!(nv / 100.0 < fireflyer::failures::data::OTHER_ARCH_NVLINK_SHARE);
}

/// The trace is an independent witness for Figure 7's bandwidth numbers:
/// attach a recorder to the cluster's fluid sim, run one HFReduce, and
/// re-derive algorithmic bandwidth purely from the recorded spans. The
/// trace-derived figure must agree with the directly-reported one.
#[test]
fn hfreduce_algbw_rederived_from_trace() {
    use fireflyer::obs::Recorder;
    use fireflyer::reduce::model::hfreduce_time;
    use fireflyer::reduce::ClusterModel;

    let bytes = 16.0 * MIB;
    let mut cluster = ClusterModel::build(&ClusterConfig::fire_flyer(16));
    let rec = Recorder::new();
    cluster.fluid.attach_recorder(&rec, "desim/cluster", 0);
    let report = hfreduce_time(&mut cluster, bytes, &HfReduceOptions::default());
    cluster.fluid.flush_stats();

    // Elapsed time from the trace: the last transfer completion. algbw is
    // gradient bytes over that, exactly the quantity the report computes
    // from the sim clock.
    let elapsed_s = rec.last_ts_ns() as f64 / 1e9;
    assert!(elapsed_s > 0.0, "trace recorded no transfers");
    let algbw_from_trace = report.data_bytes / elapsed_s;
    let rel = (algbw_from_trace - report.algbw_bps).abs() / report.algbw_bps;
    assert!(
        rel < 1e-3,
        "trace-derived algbw {algbw_from_trace:.3e} vs reported {:.3e} (rel {rel:.2e})",
        report.algbw_bps
    );

    // The busy integral (units moved through all resources) must cover at
    // least the gradient itself — the collective cannot move fewer bytes
    // than it reduces — and utilization gauges must be sane fractions.
    let snap = rec.snapshot();
    let served: f64 = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.contains("/served/"))
        .map(|(_, v)| v)
        .sum();
    assert!(
        served >= bytes,
        "total units served {served:.3e} < gradient bytes {bytes:.3e}"
    );
    let utils: Vec<f64> = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.contains("/util/"))
        .map(|(_, &v)| v)
        .collect();
    assert!(!utils.is_empty(), "no utilization gauges flushed");
    assert!(utils.iter().all(|u| (0.0..=1.0 + 1e-9).contains(u)));
    assert!(
        utils.iter().any(|&u| u > 0.05),
        "at least one resource should be meaningfully utilized"
    );
}
