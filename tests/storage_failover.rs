//! End-to-end storage-plane fault tolerance (§VI-B): a 3FS storage
//! target dies under a training job that keeps checkpointing onto the
//! faulted deployment.
//!
//! The full loop under test: a calibrated `FaultPlan` kills a storage
//! target mid-run; its chain drops the dead member (reconciling dirty
//! versions against the surviving tail) and serves degraded while
//! checkpoint writes ride through on the client's typed-error retries;
//! the repaired target is validated by the platform's hardware checks
//! and re-synced back into the chain in bounded background pumps. A rank
//! death *after* the failover then forces a resume from a checkpoint
//! that was written across the degraded window — and the recovered
//! parameters are bit-identical to a fault-free run. Two same-seed
//! traced runs produce identical ff-obs digests.

use ff_failures::generator::FailureEvent;
use ff_failures::plan::FaultPlan;
use ff_failures::{FailureKind, Xid};
use ff_obs::Recorder;
use ff_platform::recovery::{
    train_with_recovery, train_with_recovery_traced, JobFaults, RecoveryEvent, TrainerConfig,
    STORAGE_REJOIN_DELAY_STEPS,
};

/// The scenario every test here replays: a storage target dies at step
/// 10 (rejoining at 10 + the repair delay), then rank 2 dies at step 20
/// — after the rejoin, so the resume must load a checkpoint written
/// while the storage plane was degraded or re-syncing.
fn scenario(cfg: &TrainerConfig) -> JobFaults {
    let events = vec![
        FailureEvent {
            at_s: 10.0,
            node: 3,
            kind: FailureKind::StorageTargetFailure,
        },
        FailureEvent {
            at_s: 20.0,
            node: 2,
            kind: FailureKind::GpuXid(Xid(79)),
        },
    ];
    let faults = JobFaults::from_plan(&FaultPlan::from_events(&events, cfg.ranks), 1.0, cfg);
    assert_eq!(faults.storage_kills, vec![(10, 3)]);
    assert_eq!(
        faults.storage_rejoins,
        vec![(10 + STORAGE_REJOIN_DELAY_STEPS, 3)]
    );
    assert_eq!(faults.kills, vec![(20, 2)]);
    faults
}

#[test]
fn checkpoints_survive_a_storage_target_failover() {
    let cfg = TrainerConfig::default(); // 6 ranks, 40 steps, ckpt every 8
    let faults = scenario(&cfg);

    let faulty = train_with_recovery(&cfg, &faults).unwrap();
    let clean = train_with_recovery(&cfg, &JobFaults::none()).unwrap();

    // Bit-identical parameters: checkpoint 16 was saved onto a degraded
    // (then re-syncing) deployment, loaded after the rank death at 20,
    // and the replayed steps land exactly where the clean run does.
    assert_eq!(faulty.final_params, clean.final_params);
    assert_eq!(faulty.resume_points(), vec![16]);

    // The storage timeline: lost, then validated + re-synced back.
    let lost = faulty
        .events
        .iter()
        .position(|e| matches!(e, RecoveryEvent::StorageTargetLost { .. }))
        .expect("a target died");
    let rejoined = faulty
        .events
        .iter()
        .position(|e| matches!(e, RecoveryEvent::StorageRejoined { .. }))
        .expect("the target rejoined");
    assert!(lost < rejoined);
    match (&faulty.events[lost], &faulty.events[rejoined]) {
        (
            RecoveryEvent::StorageTargetLost {
                step: s1,
                target: t1,
            },
            RecoveryEvent::StorageRejoined {
                step: s2,
                target: t2,
            },
        ) => {
            assert_eq!(t1, t2, "the dead target itself is what rejoins");
            assert_eq!(*s1, 10);
            assert_eq!(*s2, 10 + STORAGE_REJOIN_DELAY_STEPS);
        }
        other => panic!("unexpected events {other:?}"),
    }

    // Checkpoints kept landing throughout the degraded window.
    let ckpts: Vec<u64> = faulty
        .events
        .iter()
        .filter_map(|e| match e {
            RecoveryEvent::Checkpointed { step } => Some(*step),
            _ => None,
        })
        .collect();
    assert!(
        ckpts.contains(&16),
        "ckpt during the faulted window: {ckpts:?}"
    );
}

#[test]
fn same_seed_storage_failover_traces_are_identical() {
    let cfg = TrainerConfig::default();
    let run = || {
        let rec = Recorder::new();
        let faults = scenario(&cfg);
        let report = train_with_recovery_traced(&cfg, &faults, Some(&rec)).unwrap();
        (report, rec.digest())
    };
    let (a, da) = run();
    let (b, db) = run();
    assert_eq!(a.final_params, b.final_params);
    assert_eq!(a.events, b.events);
    assert_eq!(da, db, "storage failover must be deterministic end to end");
}

#[test]
fn failover_spans_and_health_gauges_reach_the_recorder() {
    let cfg = TrainerConfig::default();
    let rec = Recorder::new();
    let faults = scenario(&cfg);
    train_with_recovery_traced(&cfg, &faults, Some(&rec)).unwrap();
    let snap = rec.snapshot();
    assert!(
        snap.tracks.iter().any(|t| t == "fs3/failover"),
        "failover track missing: {:?}",
        snap.tracks
    );
    let event_names: Vec<&str> = snap
        .events
        .iter()
        .filter(|(track, _)| track == "fs3/failover")
        .map(|(_, e)| e.name.as_str())
        .collect();
    for needed in [
        "storage_target_lost",
        "chain_member_removed",
        "chain_member_recruited",
        "storage_target_rejoined",
    ] {
        assert!(
            event_names.contains(&needed),
            "missing {needed}: {event_names:?}"
        );
    }
    // Re-sync progress and per-state health gauges were exported.
    for gauge in [
        "fs3/resync_bytes",
        "fs3/health/healthy",
        "fs3/health/quarantined",
    ] {
        assert!(snap.gauges.contains_key(gauge), "missing gauge {gauge}");
    }
    assert!(snap.counters.get("fs3/failovers").copied().unwrap_or(0.0) >= 1.0);
}

#[test]
fn storage_faults_leave_fault_free_golden_traces_untouched() {
    // The storage plane only exists when storage faults are configured:
    // a fault-free traced run must not grow new tracks (its digest is
    // pinned by the trace-replay golden tests).
    let cfg = TrainerConfig::default();
    let rec = Recorder::new();
    train_with_recovery_traced(&cfg, &JobFaults::none(), Some(&rec)).unwrap();
    let snap = rec.snapshot();
    assert!(snap.tracks.iter().all(|t| t != "fs3/failover"));
    assert!(!snap.gauges.contains_key("fs3/resync_bytes"));
}
