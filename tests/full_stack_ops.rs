//! The whole platform under fire: the HAI scheduler runs a fleet while the
//! calibrated failure generator injects the paper's failure mix; every
//! checkpoint actually round-trips through 3FS; the validator gates
//! repaired nodes back in. The §VII story as one executable scenario.

use fireflyer::failures::generator::FailureGenerator;
use fireflyer::failures::FailureKind;
use fireflyer::fs3::chain::{Chain, ChainTable};
use fireflyer::fs3::client::Fs3Client;
use fireflyer::fs3::kvstore::KvStore;
use fireflyer::fs3::meta::MetaService;
use fireflyer::fs3::target::{Disk, StorageTarget};
use fireflyer::platform::validator::{weekly_validation, NodeUnderTest};
use fireflyer::platform::{CheckpointManager, JobSpec, PlatformConfig, TaskState};
use std::sync::Arc;

fn storage() -> Arc<Fs3Client> {
    let chains: Vec<_> = (0..8)
        .map(|c| {
            Chain::new(
                c,
                vec![
                    StorageTarget::new(format!("c{c}a"), Disk::new(64 << 20)),
                    StorageTarget::new(format!("c{c}b"), Disk::new(64 << 20)),
                ],
            )
        })
        .collect();
    let table = Arc::new(ChainTable::new(chains));
    Fs3Client::new(MetaService::new(KvStore::new(8, 2), table.len()), table, 16)
}

#[test]
fn a_week_of_production() {
    let nodes = 16usize;
    let ckpt_interval = 300u64;
    let mut platform = PlatformConfig::new()
        .zones([nodes / 2, nodes / 2])
        .ckpt_interval(ckpt_interval)
        .build()
        .unwrap();
    let mgr = CheckpointManager::new(storage(), "prod", 256 << 10).unwrap();
    let mut fleet: Vec<NodeUnderTest> = (0..nodes).map(|_| NodeUnderTest::healthy()).collect();

    // One long LLM job over half the cluster + small jobs backfilling.
    let llm = platform
        .submit(JobSpec::new("llm", nodes / 2, 30 * 86_400).priority(10))
        .unwrap();
    for i in 0..6 {
        platform
            .submit(JobSpec::new(format!("dev{i}"), 1, 86_400))
            .unwrap();
    }
    assert_eq!(platform.state(llm), Some(TaskState::Running));

    // A stressed failure trace (~200× rates so a week is eventful).
    let mut gen = FailureGenerator::paper_calibrated(42, nodes);
    gen.scale_rates(200.0 * nodes as f64 / 1250.0);
    let events = gen.generate(7.0 * 86_400.0);
    assert!(!events.is_empty(), "the stress trace must have events");

    let mut ei = 0usize;
    let mut saved_steps = 0u64;
    let mut repairs: Vec<(u64, usize)> = Vec::new();
    let tick = 300u64;
    let mut now = 0u64;
    while now < 7 * 86_400 {
        now += tick;
        platform.tick(tick);
        // Each checkpoint interval the LLM job saves for real to 3FS.
        if platform.state(llm) == Some(TaskState::Running) {
            let step = platform.progress(llm).expect("llm task exists");
            let tensors = vec![("w".to_string(), step.to_le_bytes().to_vec())];
            mgr.save(step, &tensors).unwrap();
            saved_steps += 1;
            // Keep only the recent few, as production would.
            mgr.prune(3).unwrap();
        }
        // Repairs come back through the validator, not directly.
        let due: Vec<usize> = repairs
            .iter()
            .filter(|&&(t, _)| t <= now)
            .map(|&(_, n)| n)
            .collect();
        if !due.is_empty() {
            repairs.retain(|&(t, _)| t > now);
            for &n in &due {
                fleet[n] = NodeUnderTest::healthy(); // hardware replaced
            }
            let failed = weekly_validation(&mut platform, &mut fleet);
            for n in &due {
                assert!(!failed.contains(n), "replaced node {n} must validate clean");
            }
        }
        while ei < events.len() && events[ei].at_s <= now as f64 {
            let e = &events[ei];
            ei += 1;
            let node_action = match e.kind {
                FailureKind::GpuXid(x) => x.needs_node_action(),
                FailureKind::MainMemoryEcc => true,
                FailureKind::NetworkFlashCut => false,
                FailureKind::StorageTargetFailure => false,
            };
            if node_action && !repairs.iter().any(|&(_, n)| n == e.node) {
                // The defect shows up on hardware; validator pulls it.
                fleet[e.node].gemm_fault_gpu = Some(3);
                let failed = weekly_validation(&mut platform, &mut fleet);
                assert!(failed.contains(&e.node));
                repairs.push((now + 2 * 3600, e.node));
            }
        }
    }

    // The job survived a week of injected chaos and kept its state safe.
    assert!(saved_steps > 1000, "saved {saved_steps} checkpoints");
    let latest = mgr.latest_step().unwrap().expect("checkpoints exist");
    let restored = mgr.load(latest).unwrap();
    let step = u64::from_le_bytes(restored[0].1[..8].try_into().unwrap());
    assert_eq!(step, latest);
    // Lost work bounded: every failure loses at most one checkpoint
    // interval across the job's nodes.
    let failures = repairs.len() + fleet.len(); // upper bound bookkeeping only
    let bound = (repairs.len() as u64 + 50) * ckpt_interval * (nodes as u64 / 2);
    assert!(
        platform.lost_work_s() <= bound,
        "lost {} node-s exceeds bound {bound} ({failures} failures)",
        platform.lost_work_s()
    );
    // And the cluster stayed productive.
    assert!(
        platform.utilization() > 0.55,
        "utilization {}",
        platform.utilization()
    );
}
