//! End-to-end fault injection and recovery (§VII-A, §VII-C).
//!
//! The full loop under test: a calibrated failure plan injects a rank
//! death into the real threaded allreduce; survivors detect it as a typed
//! error (no panic), the scheduler requeues the job onto spares, and
//! training resumes from the last good 3FS checkpoint — landing on
//! parameters bit-identical to a fault-free run. A second scenario
//! corrupts the newest checkpoint too, forcing the fall-back to the
//! previous one.

use ff_failures::data::TABLE_VI_XID_COUNTS;
use ff_failures::generator::FailureEvent;
use ff_failures::plan::{action_for, FaultAction, FaultPlan};
use ff_failures::{FailureKind, Xid};
use ff_platform::recovery::{train_with_recovery, JobFaults, RecoveryEvent, TrainerConfig};
use ff_reduce::{allreduce_ft, ExecFaultPlan, InMemProvider};
use ff_util::rng::ChaCha8Rng;
use std::time::Duration;

#[test]
fn killing_a_rank_mid_allreduce_resumes_from_last_checkpoint() {
    let cfg = TrainerConfig::default(); // 6 ranks, 40 steps, ckpt every 8

    // The failure stream: node 14 falls off the bus 19 s in (1 s/step).
    let events = vec![FailureEvent {
        at_s: 19.0,
        node: 14,
        kind: FailureKind::GpuXid(Xid(79)),
    }];
    let plan = FaultPlan::from_events(&events, cfg.ranks);
    assert_eq!(plan.first_kill().unwrap().at_s, 19.0);
    let faults = JobFaults::from_plan(&plan, 1.0, &cfg);
    assert_eq!(faults.kills, vec![(19, 14 % cfg.ranks)]);

    let faulty = train_with_recovery(&cfg, &faults).unwrap();
    let clean = train_with_recovery(&cfg, &JobFaults::none()).unwrap();

    // Bit-identical parameters: the whole point of checkpoint recovery.
    assert_eq!(faulty.final_params, clean.final_params);
    assert_eq!(faulty.deaths(), 1);
    // Killed at 19, cadence 8 ⇒ resume from 16, replay 4 steps.
    assert_eq!(faulty.resume_points(), vec![16]);
    assert_eq!(faulty.replayed_steps(), 4);
    // Detect → requeue → resume, in that order.
    let pos = |pred: fn(&RecoveryEvent) -> bool| {
        faulty.events.iter().position(pred).expect("event present")
    };
    let died = pos(|e| matches!(e, RecoveryEvent::RankDied { .. }));
    let requeued = pos(|e| matches!(e, RecoveryEvent::Requeued { .. }));
    let resumed = pos(|e| matches!(e, RecoveryEvent::ResumedFrom { .. }));
    assert!(
        died < requeued && requeued < resumed,
        "{died} {requeued} {resumed}"
    );
    assert!(
        faulty.lost_work_s > 0,
        "the scheduler accounted the rollback"
    );
}

#[test]
fn corrupt_checkpoint_falls_back_to_the_previous_good_one() {
    let cfg = TrainerConfig::default();
    let faults = JobFaults {
        kills: vec![(27, 1)],
        corrupt_ckpts: vec![24],
        ..JobFaults::none()
    };
    let faulty = train_with_recovery(&cfg, &faults).unwrap();
    let clean = train_with_recovery(&cfg, &JobFaults::none()).unwrap();

    // The checksum caught the silent corruption; recovery skipped the bad
    // checkpoint (24) and restored the previous good one (16).
    assert_eq!(faulty.corrupt_checkpoints(), 1);
    assert!(faulty
        .events
        .contains(&RecoveryEvent::CheckpointCorrupt { step: 24 }));
    assert_eq!(faulty.resume_points(), vec![16]);
    assert_eq!(faulty.replayed_steps(), 27 - 16 + 1);
    assert_eq!(faulty.final_params, clean.final_params);
}

#[test]
fn survivors_shrink_and_finish_without_a_panic() {
    // The collective layer alone: 6 ranks, rank 2 dies after its first
    // send. Survivors must detect, shrink, and produce the survivor-set
    // sum rather than aborting the process.
    let n = 6usize;
    let len = 64usize;
    let inputs: Vec<Vec<f32>> = (0..n)
        .map(|r| (0..len).map(|i| (r * 100 + i) as f32).collect())
        .collect();
    let plan = ExecFaultPlan::kill_rank(2, 1, Duration::from_millis(250));
    let report = allreduce_ft(inputs, 4, &plan, &InMemProvider, None);
    assert_eq!(report.dead, vec![2]);
    assert_eq!(report.survivors, vec![0, 1, 3, 4, 5]);
    assert!(report.attempts >= 2, "at least one retry after the death");
    for (rank, out) in report.outputs.iter().enumerate() {
        match out {
            None => assert_eq!(rank, 2),
            Some(v) => {
                for (i, &x) in v.iter().enumerate() {
                    let expected: f32 =
                        report.survivors.iter().map(|&r| (r * 100 + i) as f32).sum();
                    assert_eq!(x, expected, "rank {rank} element {i}");
                }
            }
        }
    }
}

#[test]
fn seeded_kill_plans_reproduce_shrink_trajectories_exactly() {
    // Property: for seeded kill-rank plans, the FaultyFabric middleware
    // produces the shrink-to-survivors trajectory deterministically —
    // running the same plan twice yields identical FtReports, the dead
    // set is exactly the planned victim, and every survivor lands on the
    // survivor-set sum.
    let mut rng = ChaCha8Rng::seed_from_u64(0xFA57);
    for _ in 0..8 {
        let n = rng.gen_range(3usize..7);
        let len = rng.gen_range(8usize..96);
        let chunks = rng.gen_range(1usize..5);
        let victim = rng.gen_range(0..n);
        let die_after = rng.gen_range(1usize..4);
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..len).map(|i| ((r * 31 + i * 7) % 19) as f32).collect())
            .collect();
        let plan = ExecFaultPlan::kill_rank(victim, die_after, Duration::from_millis(250));
        let run = || allreduce_ft(inputs.clone(), chunks, &plan, &InMemProvider, None);
        let a = run();
        let b = run();
        assert_eq!(a, b, "same plan must replay the same trajectory");
        assert_eq!(a.dead, vec![victim], "n={n} victim={victim}");
        let survivors: Vec<usize> = (0..n).filter(|&r| r != victim).collect();
        assert_eq!(a.survivors, survivors);
        for &r in &survivors {
            let out = a.outputs[r].as_ref().expect("survivor has output");
            for (i, &x) in out.iter().enumerate() {
                let want: f32 = survivors
                    .iter()
                    .map(|&s| ((s * 31 + i * 7) % 19) as f32)
                    .sum();
                assert_eq!(x, want, "rank {r} element {i}");
            }
        }
    }
}

#[test]
fn every_production_xid_maps_to_the_papers_policy() {
    // Table VI ↔ Table V closure: every code observed in the production
    // year classifies, and the injection policy agrees with the
    // node-action column.
    for &(code, count) in TABLE_VI_XID_COUNTS {
        let x = Xid(code);
        assert!(count > 0);
        let cat = x.category();
        assert!(cat.is_some(), "Xid {code} appears in Table VI unclassified");
        let lethal = matches!(
            action_for(FailureKind::GpuXid(x), 0),
            FaultAction::KillRank { .. } | FaultAction::CorruptData { .. }
        );
        assert_eq!(lethal, x.needs_node_action(), "Xid {code}");
    }
    // And the generator's whole output is executable as a plan.
    let plan = FaultPlan::generate(3, 64, 14.0 * 86_400.0, 25.0);
    assert!(!plan.is_empty());
    for f in &plan.faults {
        assert!(f.action.rank() < 64);
    }
}
