#!/usr/bin/env bash
# Full verification gate: release build, tests, lints, formatting.
# Run from the repository root. Pass --offline-only is implicit: the
# workspace has no registry dependencies, so everything works air-gapped.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> storage failover smoke (release, fixed seed)"
cargo test -q --release --offline -p fireflyer --test storage_failover

echo "==> HAI platform full-scale smoke (release, fixed seed)"
cargo test -q --release --offline -p ff-bench --test hai_platform_smoke

echo "==> serving co-schedule smoke (release, fixed seed)"
cargo test -q --release --offline -p ff-bench --test serving_smoke

echo "==> fleet sweep smoke (release, fixed seed, golden digest)"
cargo test -q --release --offline -p ff-bench --test fleet_smoke

echo "==> fleet sweep determinism check (release, vs committed BENCH_fleet.json)"
# Re-runs the small CI grid and compares its digest against the one
# embedded in the committed aggregate. Regenerate with `fleet --write`
# when a PR deliberately moves scenario outcomes.
cargo run -q --release --offline -p ff-bench --bin fleet -- --check

echo "==> gray-failure detector smoke (release, fixed seed, golden digest)"
cargo test -q --release --offline -p ff-bench --test detector_smoke

echo "==> detector sweep determinism check (release, vs committed BENCH_detector.json)"
# Re-runs the sensitivity x slowdown grid and compares its digest against
# the one embedded in the committed aggregate. Regenerate with
# `detector_bench --write` when a PR deliberately moves detection behavior.
cargo run -q --release --offline -p ff-bench --bin detector_bench -- --check

echo "==> fabric transport smoke (release, TCP vs in-mem golden digest)"
cargo test -q --release --offline -p ff-bench --test fabric_smoke

echo "==> fabric transport invariance check (release, vs committed BENCH_fabric.json)"
# Re-proves the small-world trace digest is identical over in-memory
# channels and real localhost TCP, and that the committed artifacts are
# structurally sound. Regenerate with `fabric_bench --write` when a PR
# deliberately changes the collectives' communication schedule.
cargo run -q --release --offline -p ff-bench --bin fabric_bench -- --check

echo "==> fluid solver perf smoke (release, vs committed BENCH_fluid.json)"
# Deterministic solver mix: event count must match the committed baseline
# bit-for-bit, and events/sec must stay within a 20% regression budget.
# Regenerate the artifact with `fluid_bench --write` when a PR moves it.
cargo run -q --release --offline -p ff-bench --bin fluid_bench -- --check

echo "==> cargo clippy -D warnings (ff-platform)"
cargo clippy --offline -p ff-platform --all-targets -- -D warnings

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify.sh: all gates passed"
